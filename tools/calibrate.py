"""Calibration helper for workload-model tuning.

Compares the generated suite against the paper's Table 1 and runs the
headline predictors for a quick look at Figures 6-8.  This is a thin
wrapper over the public APIs (``repro.workloads.calibration_report`` and
the figure builders); run it after touching any workload model.

Usage:  python tools/calibrate.py [scale] [table1|figures|all]
"""

from __future__ import annotations

import sys
import time

from repro.analysis import (
    build_fig6,
    build_fig7,
    build_fig8,
    render_accuracy_figure,
    render_energy_figure,
)
from repro.config import SimulationConfig
from repro.sim import ExperimentRunner
from repro.workloads import build_suite, calibration_report, render_calibration


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    what = sys.argv[2] if len(sys.argv) > 2 else "all"
    started = time.time()
    runner = ExperimentRunner(build_suite(scale=scale), SimulationConfig())
    print(f"[suite generated in {time.time() - started:.1f}s]")
    if what in ("table1", "all"):
        print(render_calibration(calibration_report(runner)))
    if what in ("figures", "all"):
        started = time.time()
        print()
        print(render_accuracy_figure(build_fig6(runner), "Figure 6 (local)"))
        print()
        print(render_accuracy_figure(build_fig7(runner), "Figure 7 (global)"))
        print()
        print(render_energy_figure(build_fig8(runner)))
        print(f"[figures in {time.time() - started:.1f}s]")


if __name__ == "__main__":
    main()
