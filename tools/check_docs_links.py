"""Verify that relative Markdown links in the docs resolve.

Scans ``docs/*.md``, ``README.md``, and the other top-level Markdown
files for inline links (``[text](target)``) and checks that every
relative target exists in the tree (anchors and external URLs are
skipped; a ``#fragment`` suffix is stripped before the existence check).

Run:  python tools/check_docs_links.py [files...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DEFAULT_GLOBS = ("docs/*.md", "*.md")

#: Inline Markdown links, excluding images; target ends at the first
#: unescaped closing parenthesis.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks are stripped before scanning (links in examples
#: are illustrative, not navigation).
_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def iter_docs(args: list[str]) -> list[Path]:
    """The Markdown files to scan."""
    if args:
        return [Path(a) for a in args]
    files: list[Path] = []
    for pattern in DEFAULT_GLOBS:
        files.extend(sorted(Path(".").glob(pattern)))
    return files


def check_file(path: Path) -> list[str]:
    """Return unresolved-link problems for one Markdown file."""
    problems: list[str] = []
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            problems.append(
                f"{path}:~{line}: broken link -> {target}"
            )
    return problems


def main(argv: list[str]) -> int:
    """Check every doc; exit non-zero when any link is broken."""
    problems: list[str] = []
    files = iter_docs(argv)
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"{len(files)} file(s) checked, {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
