"""A minimal offline lint pass approximating the CI ruff rules.

CI runs ``ruff check src tests benchmarks examples`` (rules E4/E7/E9/F/W,
see pyproject.toml); this script covers the high-signal subset —
unused imports (F401), redefinitions (F811), unused local assignments
(F841 for simple cases), ``==``/``!=`` against None/True/False (E711/
E712), bare excepts (E722), and trailing whitespace (W291/W293) — so the
tree can be kept lint-clean on machines without ruff installed.

Run:  python tools/check_lint.py [paths...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def iter_sources(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


class ImportUsage(ast.NodeVisitor):
    """Collect imported names and every name/attribute usage."""

    def __init__(self) -> None:
        self.imports: dict[str, int] = {}
        self.used: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.imports[name] = node.lineno

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            self.imports[alias.asname or alias.name] = node.lineno

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:  # E9
        return [f"{path}:{error.lineno}: E999 {error.msg}"]

    usage = ImportUsage()
    usage.visit(tree)
    exported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        exported = {
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                        }
    is_package_init = path.name == "__init__.py"
    for name, lineno in usage.imports.items():
        if name in usage.used or name in exported:
            continue
        if is_package_init:
            continue  # re-exports are the point of an __init__
        # A bare string use (doctest/typing) keeps this heuristic quiet.
        if f'"{name}"' in text or f"'{name}'" in text:
            continue
        problems.append(f"{path}:{lineno}: F401 '{name}' imported but unused")

    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(comparator, ast.Constant):
                    continue
                if comparator.value is None and isinstance(
                    op, (ast.Eq, ast.NotEq)
                ):
                    problems.append(
                        f"{path}:{node.lineno}: E711 comparison to None"
                    )
                elif (
                    comparator.value is True or comparator.value is False
                ) and isinstance(op, (ast.Eq, ast.NotEq)):
                    problems.append(
                        f"{path}:{node.lineno}: E712 comparison to "
                        f"{comparator.value}"
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            problems.append(f"{path}:{node.lineno}: E722 bare except")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line != line.rstrip():
            problems.append(f"{path}:{lineno}: W291 trailing whitespace")
    return problems


def main(argv: list[str]) -> int:
    files = iter_sources(argv or list(DEFAULT_PATHS))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"{len(files)} files checked, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
