"""Offline docstring lint approximating ruff's pydocstyle D1 rules.

CI enforces D1 (undocumented-public-*) on ``src/repro/traces``,
``src/repro/sim``, ``src/repro/predictors/learned``, and the
PC-aliasing workload module via the per-package ``ruff.toml`` files
(``aliasing.py`` rides the learned package's configuration by being
listed here explicitly); this script
reimplements the same checks with the standard library so the tree can
be kept clean on machines without ruff installed:

* D100 — missing module docstring
* D101 — missing public class docstring
* D102 — missing public method docstring
* D103 — missing public function docstring
* D104 — missing package (``__init__.py``) docstring
* D106 — missing public nested-class docstring

Matching the CI configuration, D105 (magic methods) and D107
(``__init__``) are not enforced.  Names starting with ``_`` are private
and exempt, as are methods decorated with ``@overload`` and bodies that
are a bare ``...`` inside a Protocol definition.

Run:  python tools/check_docstrings.py [paths...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = (
    "src/repro/traces",
    "src/repro/sim",
    "src/repro/predictors/learned",
    "src/repro/workloads/aliasing.py",
)


def iter_sources(paths: list[str]) -> list[Path]:
    """Expand directories into sorted ``*.py`` file lists."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _is_overload(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator
        if isinstance(name, ast.Attribute):
            name = name.attr
        elif isinstance(name, ast.Name):
            name = name.id
        if name == "overload":
            return True
    return False


def _is_stub_body(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """A body that is exactly ``...`` (Protocol member stubs)."""
    body = node.body
    return (
        len(body) == 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def check_file(path: Path) -> list[str]:
    """Return D1 problems for one file."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: E999 {error.msg}"]

    if ast.get_docstring(tree) is None:
        code = "D104" if path.name == "__init__.py" else "D100"
        kind = "package" if code == "D104" else "module"
        problems.append(f"{path}:1: {code} missing {kind} docstring")

    def walk(node: ast.AST, *, in_class: bool, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if not child.name.startswith("_"):
                    if ast.get_docstring(child) is None:
                        code = "D106" if depth else "D101"
                        problems.append(
                            f"{path}:{child.lineno}: {code} missing "
                            f"docstring in public class {child.name}"
                        )
                    walk(child, in_class=True, depth=depth + 1)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                private = name.startswith("_") and not (
                    name.startswith("__") and name.endswith("__")
                )
                magic = name.startswith("__") and name.endswith("__")
                if (
                    not private
                    and not magic  # D105/D107 not enforced
                    and not _is_overload(child)
                    and not _is_stub_body(child)
                    and ast.get_docstring(child) is None
                ):
                    code = "D102" if in_class else "D103"
                    kind = "method" if in_class else "function"
                    problems.append(
                        f"{path}:{child.lineno}: {code} missing docstring "
                        f"in public {kind} {name}"
                    )
                # Nested defs are not public API; do not descend.
            elif isinstance(
                child, (ast.If, ast.Try, ast.With, ast.AsyncWith)
            ):
                walk(child, in_class=in_class, depth=depth)

    walk(tree, in_class=False, depth=0)
    return problems


def main(argv: list[str]) -> int:
    """Check every source under the given (or default) paths."""
    files = iter_sources(argv or list(DEFAULT_PATHS))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"{len(files)} files checked, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
