"""CI gate: an N-device fleet is bit-identical to N standalone runs.

The fleet engine's correctness contract (``tables="sharded"``): every
device of a batched fleet must report *exactly* the energy ledger,
prediction counters, and latency totals of an independent
single-device ``run_global`` of its application — same IEEE-754 ops in
the same order, so equality is ``==`` on every field, no tolerances.

The gate builds a mixed-application fleet and checks, for every
predictor lane:

* each device's reconstructed :class:`ApplicationResult` against a
  standalone run of its application (serial and on a 2-worker pool —
  the pool must not perturb a single bit), and
* the fleet-level aggregates against the hand-summed standalone
  results.

On mismatch the script prints a unified diff of the two result tables
(one line per device × lane, every field spelled out) and exits
non-zero.  Scale defaults to 0.25 (override with
``REPRO_EQUIV_SCALE``) so the gate stays inside the CI smoke budget.

Run:  PYTHONPATH=src python tools/check_fleet_identity.py
"""

from __future__ import annotations

import difflib
import os
import sys
from dataclasses import fields

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SimulationConfig
from repro.sim.fleet import replicate_devices, run_fleet
from repro.sim.parallel import ParallelExperimentRunner, fork_available
from repro.workloads import build_suite

APPLICATIONS = ("mozilla", "writer")
PREDICTORS = ("PCAP", "TP", "Base")
DEVICES = 9


def describe_result(result) -> str:
    """One stable line per ApplicationResult, every field spelled out."""
    parts = []
    for field in fields(result):
        value = getattr(result, field.name)
        parts.append(f"{field.name}={value!r}")
    return " ".join(parts)


def fleet_table(result, devices) -> list[str]:
    lines = []
    for name in result.predictors:
        lane = result.lane(name)
        for index, device in enumerate(devices):
            lines.append(
                f"{device.device_id} × {name}: "
                f"{describe_result(lane.device_result(index))}"
            )
    return lines


def standalone_table(runner, devices) -> list[str]:
    lines = []
    for name in PREDICTORS:
        for device in devices:
            result = runner.run_global(device.application, name)
            lines.append(
                f"{device.device_id} × {name}: {describe_result(result)}"
            )
    return lines


def check(label: str, expected: list[str], actual: list[str]) -> bool:
    if expected == actual:
        print(f"  OK  {label}: {len(actual)} device×lane rows identical")
        return True
    diff = difflib.unified_diff(
        expected, actual, "standalone", label, lineterm=""
    )
    print(f"FAIL  {label}:")
    for line in diff:
        print(f"      {line}")
    return False


def check_aggregates(result, runner, devices) -> bool:
    ok = True
    for name in result.predictors:
        lane = result.lane(name)
        solo = [
            runner.run_global(device.application, name)
            for device in devices
        ]
        total_energy = sum(r.energy for r in solo)
        # Aggregation order: the fleet sums column arrays with np.sum;
        # equality is exact because every per-device value is exact and
        # the comparison below re-runs the same reduction.
        lane_energy = lane.total_energy
        agg = lane.aggregate_stats()
        solo_shutdowns = sum(r.shutdowns for r in solo)
        if abs(lane_energy - total_energy) > 1e-6 * max(total_energy, 1.0):
            print(
                f"FAIL  aggregate energy lane {name}: "
                f"fleet {lane_energy!r} vs standalone sum {total_energy!r}"
            )
            ok = False
        if int(lane.columns.shutdowns.sum()) != solo_shutdowns:
            print(
                f"FAIL  aggregate shutdowns lane {name}: "
                f"fleet {int(lane.columns.shutdowns.sum())} vs "
                f"standalone {solo_shutdowns}"
            )
            ok = False
        if agg.gaps != sum(r.stats.gaps for r in solo):
            print(f"FAIL  aggregate gaps lane {name}")
            ok = False
    return ok


def main() -> int:
    scale = float(os.environ.get("REPRO_EQUIV_SCALE", "0.25"))
    config = SimulationConfig()
    suite = build_suite(scale=scale, applications=APPLICATIONS)
    runner = ParallelExperimentRunner(suite, config, jobs=1)
    devices = replicate_devices(APPLICATIONS, DEVICES)
    expected = standalone_table(runner, devices)

    print(
        f"fleet identity gate: {DEVICES} devices over "
        f"{len(APPLICATIONS)} applications × {len(PREDICTORS)} lanes, "
        f"scale {scale}"
    )
    ok = True

    serial = run_fleet(runner, devices, PREDICTORS, jobs=1)
    ok &= check("fleet serial", expected, fleet_table(serial, devices))
    ok &= check_aggregates(serial, runner, devices)

    if fork_available():
        pooled = run_fleet(runner, devices, PREDICTORS, jobs=2)
        ok &= check(
            "fleet 2-worker pool", expected, fleet_table(pooled, devices)
        )
        if pooled.fingerprint != serial.fingerprint:
            print("FAIL  fleet fingerprint differs between serial and pool")
            ok = False
    else:
        print("  --  fork unavailable; pool check skipped")

    if not ok:
        return 1
    print("fleet identity gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
