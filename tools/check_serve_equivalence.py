"""CI gate: ``repro serve`` decisions are bit-identical under chaos.

Boots a real daemon subprocess (``python -m repro serve``) with a fault
plan armed, drives eight concurrent feed clients through it, and makes
the service earn every robustness claim at once:

* ``serve.conn_drop`` severs one client's connection mid-stream — the
  client must reconnect and resubmit, and worker-journal dedup must
  make the redelivery exact;
* ``serve.frame_truncate`` corrupts one frame in flight — the daemon
  must quarantine the bytes (``state_dir/quarantine/*.corrupt``) and
  the client's resend must land cleanly;
* ``serve.worker_stall`` hangs a shard worker past the supervisor
  deadline — SIGKILL, restart, journal replay, in-flight redelivery;
* on top of the injected faults, the harness SIGKILLs a live shard
  worker from the *outside* once a few decisions have arrived — the
  uncooperative mid-stream crash no fault site can fake.

The run passes only if the daemon then drains cleanly on SIGTERM
(exit 0) and :func:`repro.serve.harness.verify_equivalence` finds the
per-client shutdown decisions, merged prediction counters, summed
energy, and final predictor-table snapshots **bit-identical** to an
offline ``run_global`` replay of the recorded feed — proving the
service machinery (sharding, supervision, restarts, retries, recovery)
added or lost nothing.  The health endpoint must also have reported
the worker restarts and the injected connection drop.

Scale defaults to 0.2 (override with ``REPRO_SERVE_SCALE``) to stay
inside the CI smoke budget.

Run:  PYTHONPATH=src python tools/check_serve_equivalence.py
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.harness import run_scenario, verify_equivalence

CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", "8"))
SCALE = float(os.environ.get("REPRO_SERVE_SCALE", "0.2"))
APPLICATIONS = ("mozilla", "xemacs")

#: One dropped client connection, one truncated frame, one stalled
#: worker — the three ``serve.*`` fault sites, all in a single run.
FAULT_PLAN = (
    "serve.conn_drop,app=client-0,at=3;"
    "serve.frame_truncate,app=client-1,at=2;"
    "serve.worker_stall,app=mozilla,at=2,seconds=8"
)


def main() -> int:
    failures: list[str] = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"{'PASS' if ok else 'FAIL'}  {label}"
              + (f" — {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    with tempfile.TemporaryDirectory(prefix="serve-equiv-") as tmp:
        state_dir = os.path.join(tmp, "state")
        scenario = run_scenario(
            socket_path=os.path.join(tmp, "serve.sock"),
            state_dir=state_dir,
            clients=CLIENTS,
            scale=SCALE,
            applications=APPLICATIONS,
            stall_timeout=5.0,
            fault_plan=FAULT_PLAN,
            kill_worker_after=3,
        )

        check("all clients completed without errors",
              not scenario.client_errors,
              "; ".join(scenario.client_errors))
        check("a live shard worker was SIGKILLed mid-stream",
              scenario.killed_pid is not None)
        check("daemon drained cleanly on SIGTERM (exit 0)",
              scenario.exit_code == 0,
              f"exit code {scenario.exit_code}")

        incidents = scenario.health.get("incidents", [])
        kinds = {incident.get("kind") for incident in incidents}
        check("health endpoint reported the worker restart(s)",
              "worker-restart" in kinds, f"incident kinds: {sorted(kinds)}")
        check("health endpoint reported the injected connection drop",
              "conn-drop" in kinds, f"incident kinds: {sorted(kinds)}")
        check("truncated frame was quarantined as *.corrupt",
              any(name.endswith(".corrupt") for name in
                  os.listdir(os.path.join(state_dir, "quarantine"))))

        mismatches = verify_equivalence(scenario)
        for mismatch in mismatches:
            print(f"      {mismatch}")
        check("decisions and tables bit-identical to the offline replay",
              not mismatches, f"{len(mismatches)} mismatch(es)")

        expected = 0
        for application, executions in scenario.feed.items():
            expected += len(executions)
        check("every submitted execution got a decision",
              len(scenario.decisions) == expected and expected > 0,
              f"{len(scenario.decisions)} decision(s) for "
              f"{expected} submission(s)")

    if failures:
        print(f"\n{len(failures)} serve equivalence check(s) FAILED")
        return 1
    print("\nserve equivalence gate passed "
          f"({CLIENTS} clients, scale {SCALE}, chaos + external SIGKILL)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
