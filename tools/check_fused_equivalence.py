"""CI gate: the fused sweep kernel is bit-identical to the per-cell path.

Runs the paper's two sweep shapes both ways — through the fused
single-pass kernel (``repro.sim.fused``) and through the classic
one-simulation-per-cell decomposition — and fails loudly if any table
differs by even a bit:

* the TP timeout ladder (the Figure-7 parameter sweep), serial and on a
  2-worker pool,
* the PCAP family matrix (PCAP/PCAPh/PCAPf/PCAPfh + Base), serial and
  on a 2-worker pool,
* the full predictor registry (every KNOWN_PREDICTORS name, including
  the learned family QDPM/SKI/PI), serial and on a 2-worker pool,
* the learned-family hyperparameter ladders — the ski-rental λ sweep
  and Q-DPM exploration-seed lanes — whose lanes are stateful generic
  lanes with seeded pseudo-randomness; fused vs classic here proves
  the engine call order (and hence the deterministic draw stream) is
  identical in both paths,
* adversarial duplicate/shadowed lane sets — the same lane twice, and
  distinct lanes hiding behind one label — each fused lane diffed
  against an independent classic run of an equivalent fresh spec, and
* the vectorized lanes themselves: every registry predictor replayed
  over the shared columnar tape with ``vectorized=True`` and
  ``vectorized=False`` (the scalar loop lanes), execution by
  execution.

On mismatch the script prints a unified diff of the two result tables
(one line per application × variant, every result field) and exits
non-zero.  Scale defaults to 0.25 (override with
``REPRO_EQUIV_SCALE``) so the gate stays inside the CI smoke budget.

Run:  PYTHONPATH=src python tools/check_fused_equivalence.py
"""

from __future__ import annotations

import difflib
import os
import sys
from dataclasses import fields

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SimulationConfig
from repro.predictors.registry import (
    KNOWN_PREDICTORS,
    base_spec,
    make_spec,
    pcap_spec,
    qdpm_spec,
    ski_spec,
    tp_spec,
)
from repro.sim.engine import build_replay_tape
from repro.sim.fused import replay_execution, run_fused_cells
from repro.sim.parallel import ParallelExperimentRunner, fork_available
from repro.sim.sweep import sweep
from repro.workloads import build_suite

TIMEOUTS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0)
PCAP_FAMILY = ("PCAP", "PCAPh", "PCAPf", "PCAPfh", "Base")
SKI_LAMBDAS = (0.0, 0.25, 0.5, 1.0)
QDPM_SEEDS = (0, 1, 7)

#: Adversarial lane sets: exact duplicates (same spec twice) and
#: shadowed lanes (different semantics behind one label).  The fused
#: kernel must keep each lane independent — never collapse by name.
ADVERSARIAL_LANES = (
    ("TP(2s)", lambda config: tp_spec(config, timeout=2.0, name="TP(2s)")),
    ("TP(2s)", lambda config: tp_spec(config, timeout=2.0, name="TP(2s)")),
    ("dup", lambda config: tp_spec(config, timeout=5.0, name="dup")),
    ("dup", lambda config: tp_spec(config, timeout=0.5, name="dup")),
    ("Base", lambda config: base_spec()),
    ("Base", lambda config: base_spec()),
    ("PCAP", lambda config: pcap_spec(config)),
    ("PCAP", lambda config: pcap_spec(config)),
)


def describe_result(result) -> str:
    """One stable line per ApplicationResult, every field spelled out."""
    parts = []
    for field in fields(result):
        value = getattr(result, field.name)
        parts.append(f"{field.name}={value!r}")
    return " ".join(parts)


def sweep_table(points) -> list[str]:
    return [f"point {describe_result(point)}" for point in points]


def matrix_table(matrix) -> list[str]:
    lines = []
    for application in sorted(matrix):
        for name in sorted(matrix[application]):
            result = matrix[application][name]
            lines.append(
                f"{application} × {name}: {describe_result(result)}"
            )
    return lines


def check(label: str, fused_lines: list[str], classic_lines: list[str]) -> bool:
    if fused_lines == classic_lines:
        print(f"ok: {label} — {len(fused_lines)} rows bit-identical")
        return True
    print(f"MISMATCH: {label}", file=sys.stderr)
    diff = difflib.unified_diff(
        classic_lines,
        fused_lines,
        fromfile=f"{label} (per-cell)",
        tofile=f"{label} (fused)",
        lineterm="",
    )
    for line in diff:
        print(line, file=sys.stderr)
    return False


def adversarial_pass(runner, config, jobs: int) -> bool:
    """Duplicate/shadowed lane sets, fused vs independent classic runs.

    The fused kernel runs all lanes of :data:`ADVERSARIAL_LANES` in one
    pass per application; the reference runs each lane separately with
    a fresh equivalent spec through the classic per-cell engine.  Lane
    identity (not label identity) must decide the results.
    """
    labels = [label for label, _ in ADVERSARIAL_LANES]
    outcomes, _ = run_fused_cells(
        runner,
        runner.applications,
        labels,
        lambda: [factory(config) for _, factory in ADVERSARIAL_LANES],
        jobs=jobs,
        use_cache=False,
    )
    fused_lines = []
    classic_lines = []
    for application in runner.applications:
        lane_results = outcomes[application].results
        for lane, (label, factory) in enumerate(ADVERSARIAL_LANES):
            fused_lines.append(
                f"{application} lane {lane} ({label}): "
                f"{describe_result(lane_results[lane])}"
            )
            classic = runner.run_global(application, factory(config))
            classic_lines.append(
                f"{application} lane {lane} ({label}): "
                f"{describe_result(classic)}"
            )
    return check(
        f"duplicate/shadowed lanes (jobs={jobs})", fused_lines, classic_lines
    )


def vector_lane_pass(runner, config) -> bool:
    """Vectorized array-program lanes vs the scalar loop lanes.

    Replays every execution's shared tape under every registry
    predictor twice — ``vectorized=True`` and ``vectorized=False`` —
    with independent fresh specs, and byte-diffs the per-execution
    results.  This is the direct DESIGN §10 contract check for the
    constant-intent and omniscient array programs (generic lanes take
    the same loop either way and double as a determinism check).
    """
    vector_lines = []
    loop_lines = []
    for application in runner.applications:
        lanes = [
            (name, make_spec(name, config), make_spec(name, config))
            for name in KNOWN_PREDICTORS
        ]
        for execution, filtered in runner.iter_filtered(application):
            tape = build_replay_tape(execution, filtered, config)
            for name, spec_vector, spec_loop in lanes:
                prefix = (
                    f"{application}[{execution.execution_index}] × {name}: "
                )
                result = replay_execution(
                    tape, spec_vector, config, vectorized=True
                )
                vector_lines.append(prefix + describe_result(result))
                result = replay_execution(
                    tape, spec_loop, config, vectorized=False
                )
                loop_lines.append(prefix + describe_result(result))
            for _, spec_vector, spec_loop in lanes:
                spec_vector.on_execution_end()
                spec_loop.on_execution_end()
    return check(
        "vectorized lanes vs loop lanes (all registry predictors)",
        vector_lines,
        loop_lines,
    )


def main() -> int:
    scale = float(os.environ.get("REPRO_EQUIV_SCALE", "0.25"))
    config = SimulationConfig()
    suite = build_suite(scale=scale)
    runner = ParallelExperimentRunner(suite, config)
    job_counts = [1, 2] if fork_available() else [1]
    if len(job_counts) == 1:
        print("note: fork unavailable, pooled runs skipped", file=sys.stderr)

    ok = vector_lane_pass(runner, config)
    for jobs in job_counts:
        fused_points = sweep(
            runner,
            TIMEOUTS,
            make_spec=lambda value, cfg: tp_spec(
                cfg, timeout=value, name=f"TP({value:g}s)"
            ),
            jobs=jobs,
            fused=True,
        )
        classic_points = sweep(
            runner,
            TIMEOUTS,
            make_spec=lambda value, cfg: tp_spec(
                cfg, timeout=value, name=f"TP({value:g}s)"
            ),
            jobs=jobs,
            fused=False,
        )
        ok &= check(
            f"TP timeout sweep (jobs={jobs})",
            sweep_table(fused_points),
            sweep_table(classic_points),
        )

        fused_matrix = runner.run_matrix(PCAP_FAMILY, jobs=jobs, fused=True)
        classic_matrix = runner.run_matrix(PCAP_FAMILY, jobs=jobs, fused=False)
        ok &= check(
            f"PCAP family matrix (jobs={jobs})",
            matrix_table(fused_matrix),
            matrix_table(classic_matrix),
        )

        fused_registry = runner.run_matrix(
            KNOWN_PREDICTORS, jobs=jobs, fused=True
        )
        classic_registry = runner.run_matrix(
            KNOWN_PREDICTORS, jobs=jobs, fused=False
        )
        ok &= check(
            f"full registry matrix (jobs={jobs})",
            matrix_table(fused_registry),
            matrix_table(classic_registry),
        )

        fused_ski = sweep(
            runner,
            SKI_LAMBDAS,
            make_spec=lambda value, cfg: ski_spec(cfg, lam=value),
            jobs=jobs,
            fused=True,
        )
        classic_ski = sweep(
            runner,
            SKI_LAMBDAS,
            make_spec=lambda value, cfg: ski_spec(cfg, lam=value),
            jobs=jobs,
            fused=False,
        )
        ok &= check(
            f"ski-rental lambda sweep (jobs={jobs})",
            sweep_table(fused_ski),
            sweep_table(classic_ski),
        )

        fused_qdpm = sweep(
            runner,
            QDPM_SEEDS,
            make_spec=lambda value, cfg: qdpm_spec(cfg, seed=value),
            jobs=jobs,
            fused=True,
        )
        classic_qdpm = sweep(
            runner,
            QDPM_SEEDS,
            make_spec=lambda value, cfg: qdpm_spec(cfg, seed=value),
            jobs=jobs,
            fused=False,
        )
        ok &= check(
            f"Q-DPM seed lanes (jobs={jobs})",
            sweep_table(fused_qdpm),
            sweep_table(classic_qdpm),
        )

        ok &= adversarial_pass(runner, config, jobs)

    if not ok:
        print("fused equivalence gate FAILED", file=sys.stderr)
        return 1
    print("fused equivalence gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
