"""CI gate: the fused sweep kernel is bit-identical to the per-cell path.

Runs the paper's two sweep shapes both ways — through the fused
single-pass kernel (``repro.sim.fused``) and through the classic
one-simulation-per-cell decomposition — and fails loudly if any table
differs by even a bit:

* the TP timeout ladder (the Figure-7 parameter sweep), serial and on a
  2-worker pool, and
* the PCAP family matrix (PCAP/PCAPh/PCAPf/PCAPfh + Base), serial and
  on a 2-worker pool.

On mismatch the script prints a unified diff of the two result tables
(one line per application × variant, every ApplicationResult field) and
exits non-zero.  Scale defaults to 0.25 (override with
``REPRO_EQUIV_SCALE``) so the gate stays inside the CI smoke budget.

Run:  PYTHONPATH=src python tools/check_fused_equivalence.py
"""

from __future__ import annotations

import difflib
import os
import sys
from dataclasses import fields

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SimulationConfig
from repro.predictors.registry import tp_spec
from repro.sim.parallel import ParallelExperimentRunner, fork_available
from repro.sim.sweep import sweep
from repro.workloads import build_suite

TIMEOUTS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0)
PCAP_FAMILY = ("PCAP", "PCAPh", "PCAPf", "PCAPfh", "Base")


def describe_result(result) -> str:
    """One stable line per ApplicationResult, every field spelled out."""
    parts = []
    for field in fields(result):
        value = getattr(result, field.name)
        parts.append(f"{field.name}={value!r}")
    return " ".join(parts)


def sweep_table(points) -> list[str]:
    return [f"point {describe_result(point)}" for point in points]


def matrix_table(matrix) -> list[str]:
    lines = []
    for application in sorted(matrix):
        for name in sorted(matrix[application]):
            result = matrix[application][name]
            lines.append(
                f"{application} × {name}: {describe_result(result)}"
            )
    return lines


def check(label: str, fused_lines: list[str], classic_lines: list[str]) -> bool:
    if fused_lines == classic_lines:
        print(f"ok: {label} — {len(fused_lines)} rows bit-identical")
        return True
    print(f"MISMATCH: {label}", file=sys.stderr)
    diff = difflib.unified_diff(
        classic_lines,
        fused_lines,
        fromfile=f"{label} (per-cell)",
        tofile=f"{label} (fused)",
        lineterm="",
    )
    for line in diff:
        print(line, file=sys.stderr)
    return False


def main() -> int:
    scale = float(os.environ.get("REPRO_EQUIV_SCALE", "0.25"))
    config = SimulationConfig()
    suite = build_suite(scale=scale)
    runner = ParallelExperimentRunner(suite, config)
    job_counts = [1, 2] if fork_available() else [1]
    if len(job_counts) == 1:
        print("note: fork unavailable, pooled runs skipped", file=sys.stderr)

    ok = True
    for jobs in job_counts:
        fused_points = sweep(
            runner,
            TIMEOUTS,
            make_spec=lambda value, cfg: tp_spec(
                cfg, timeout=value, name=f"TP({value:g}s)"
            ),
            jobs=jobs,
            fused=True,
        )
        classic_points = sweep(
            runner,
            TIMEOUTS,
            make_spec=lambda value, cfg: tp_spec(
                cfg, timeout=value, name=f"TP({value:g}s)"
            ),
            jobs=jobs,
            fused=False,
        )
        ok &= check(
            f"TP timeout sweep (jobs={jobs})",
            sweep_table(fused_points),
            sweep_table(classic_points),
        )

        fused_matrix = runner.run_matrix(PCAP_FAMILY, jobs=jobs, fused=True)
        classic_matrix = runner.run_matrix(PCAP_FAMILY, jobs=jobs, fused=False)
        ok &= check(
            f"PCAP family matrix (jobs={jobs})",
            matrix_table(fused_matrix),
            matrix_table(classic_matrix),
        )

    if not ok:
        print("fused equivalence gate FAILED", file=sys.stderr)
        return 1
    print("fused equivalence gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
