"""Deterministic fault injection for the experiment pipeline.

The recovery paths this repository ships — artifact-cache corruption
recovery, trace parse errors, worker retry/timeout handling in the
resilient executor — need a way to be exercised *deliberately*, in tests
and in CI, without monkeypatching internals.  This module provides that:
a :class:`FaultPlan` is a seedable, fully deterministic specification of
faults to inject at named sites, activated process-wide via
:func:`install` (the CLI wires the ``REPRO_FAULT_PLAN`` environment
variable and ``--fault-plan`` to it).

Sites
-----

====================== ====================================================
``worker.crash``       a forked worker process hard-exits (``os._exit``)
                       before reporting its cell; fires only inside real
                       worker processes (in-process execution survives,
                       which is what makes pool→in-process degradation
                       meaningful)
``worker.hang``        the worker sleeps ``seconds`` before running the
                       cell, tripping the executor's per-cell timeout
``worker.fail``        the cell raises :class:`~repro.errors.InjectedFault`
                       (works in workers and in-process alike)
``cache.corrupt-read`` an existing artifact-cache entry is truncated just
                       before it is read (exercises quarantine+recompute)
``cache.torn-write``   an artifact-cache store publishes a truncated
                       (torn) entry
``trace.malformed-line`` one serialized trace line is corrupted before
                       parsing (exercises ``TraceFormatError`` reporting)
``persist.os-error``   table persistence I/O raises a transient
                       ``OSError`` (exercises the bounded retry)
``serve.conn_drop``    the serve daemon drops a client connection on a
                       received frame (exercises client reconnect and
                       idempotent execution resubmission)
``serve.frame_truncate`` an inbound serve frame payload is truncated
                       before parsing (exercises malformed-frame
                       quarantine + typed NACK)
``serve.worker_stall`` a serve shard worker sleeps ``seconds`` before
                       processing an execution, tripping the
                       supervisor's stall timeout (SIGKILL + restart +
                       replay)
====================== ====================================================

Selection is deterministic.  Worker sites match on the cell's stable
``index`` (and optionally application) plus the attempt number — never
on scheduling order — so a plan injects the same faults no matter how a
pool interleaves cells.  The other sites count matching invocations in
the installing process and fire on the ``at``-th (``count`` consecutive
times).

Plan text grammar (specs separated by ``;``, arguments by ``,``)::

    worker.crash,cell=3,attempts=99; worker.hang,cell=7,seconds=15;
    cache.corrupt-read,at=1; seed=7

Every hook is a no-op costing one ``None`` check when no plan is
installed, so production paths pay nothing.
"""

from __future__ import annotations

import errno
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import FaultPlanError, InjectedFault

#: Environment variable holding the default fault-plan text.
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit code of injected worker crashes (recognizable in failure ledgers).
CRASH_EXIT_CODE = 86

WORKER_CRASH = "worker.crash"
WORKER_HANG = "worker.hang"
WORKER_FAIL = "worker.fail"
CACHE_CORRUPT_READ = "cache.corrupt-read"
CACHE_TORN_WRITE = "cache.torn-write"
TRACE_MALFORMED_LINE = "trace.malformed-line"
PERSIST_OS_ERROR = "persist.os-error"
SERVE_CONN_DROP = "serve.conn_drop"
SERVE_FRAME_TRUNCATE = "serve.frame_truncate"
SERVE_WORKER_STALL = "serve.worker_stall"

#: Every site a plan may name.
SITES = frozenset({
    WORKER_CRASH,
    WORKER_HANG,
    WORKER_FAIL,
    CACHE_CORRUPT_READ,
    CACHE_TORN_WRITE,
    TRACE_MALFORMED_LINE,
    PERSIST_OS_ERROR,
    SERVE_CONN_DROP,
    SERVE_FRAME_TRUNCATE,
    SERVE_WORKER_STALL,
})


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One fault to inject.

    ``cell``/``application`` narrow worker-site matches to one cell;
    ``attempts`` makes the fault fire on attempts ``1..attempts`` of
    that cell (``99`` ≈ every attempt, i.e. a terminal fault).  ``at``
    and ``count`` select the firing window of counter-based sites.
    ``seconds`` is the ``worker.hang`` sleep.
    """

    site: str
    cell: Optional[int] = None
    application: Optional[str] = None
    attempts: int = 1
    at: int = 1
    count: int = 1
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        if self.at < 1 or self.count < 1 or self.attempts < 0:
            raise FaultPlanError(
                "fault spec needs at >= 1, count >= 1, attempts >= 0"
            )
        if self.seconds <= 0:
            raise FaultPlanError("hang seconds must be positive")


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """One fault that actually fired (the plan's own ledger)."""

    site: str
    cell: Optional[int]
    application: Optional[str]
    attempt: Optional[int]
    invocation: Optional[int]


class FaultPlan:
    """A parsed fault plan: specs plus per-spec firing state.

    The plan records every fault it fires in :attr:`fired`.  Faults
    fired inside forked worker processes are recorded in the child's
    (copy-on-write) plan and are therefore *not* visible in the parent's
    ledger — the resilient executor's retry ledger captures their effect
    instead.
    """

    def __init__(self, specs: Sequence[FaultSpec], *, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self.fired: list[FaultRecord] = []
        self._counters = [0] * len(self.specs)

    def match(
        self,
        site: str,
        *,
        cell: Optional[int] = None,
        application: Optional[str] = None,
        attempt: Optional[int] = None,
    ) -> Optional[FaultSpec]:
        """The first spec firing at this invocation of ``site``, if any.

        With ``attempt`` context (worker sites) the decision is purely a
        function of (cell, application, attempt); otherwise the spec's
        matching-invocation counter decides.
        """
        for position, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.cell is not None and spec.cell != cell:
                continue
            if (spec.application is not None
                    and spec.application != application):
                continue
            if attempt is not None:
                if attempt > spec.attempts:
                    continue
                invocation = None
            else:
                self._counters[position] += 1
                invocation = self._counters[position]
                if not (spec.at <= invocation < spec.at + spec.count):
                    continue
            self.fired.append(FaultRecord(
                site=site, cell=cell, application=application,
                attempt=attempt, invocation=invocation,
            ))
            return spec
        return None

    def specs_for(self, site: str) -> tuple[FaultSpec, ...]:
        """Every spec of the plan targeting ``site``."""
        return tuple(spec for spec in self.specs if spec.site == site)

    def disarm(self, site: str) -> int:
        """Remove every spec targeting ``site``; returns removed count.

        Used by recovery machinery once an injected fault has served its
        purpose: a serve supervisor disarms ``serve.worker_stall`` after
        the stall-kill so the re-forked worker (which would inherit the
        parent's counter state and re-fire) replays cleanly.  The fired
        ledger keeps the record of what fired before disarming.
        """
        keep = [
            (spec, counter)
            for spec, counter in zip(self.specs, self._counters)
            if spec.site != site
        ]
        removed = len(self.specs) - len(keep)
        self.specs = tuple(spec for spec, _ in keep)
        self._counters = [counter for _, counter in keep]
        return removed

    def render_fired(self) -> str:
        """Human-readable list of the faults this plan fired."""
        if not self.fired:
            return "fault plan: no faults fired"
        lines = [f"fault plan: {len(self.fired)} fault(s) fired"]
        for record in self.fired:
            where = []
            if record.cell is not None:
                where.append(f"cell {record.cell}")
            if record.application is not None:
                where.append(record.application)
            if record.attempt is not None:
                where.append(f"attempt {record.attempt}")
            if record.invocation is not None:
                where.append(f"invocation {record.invocation}")
            lines.append(
                f"  {record.site} ({', '.join(where) or 'unscoped'})"
            )
        return "\n".join(lines)


_INT_ARGS = {"cell", "attempts", "at", "count"}
_FLOAT_ARGS = {"seconds"}
_STR_ARGS = {"app"}


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse plan text (see the module docstring for the grammar)."""
    specs: list[FaultSpec] = []
    seed = 0
    for token in text.split(";"):
        token = token.strip()
        if not token:
            continue
        parts = [part.strip() for part in token.split(",")]
        head = parts[0]
        if "=" in head:
            name, _, raw = head.partition("=")
            if name.strip() != "seed" or len(parts) > 1:
                raise FaultPlanError(
                    f"malformed fault spec {token!r} (expected "
                    "'site,arg=value,...' or 'seed=N')"
                )
            try:
                seed = int(raw)
            except ValueError:
                raise FaultPlanError(f"seed must be an integer, got {raw!r}")
            continue
        kwargs: dict[str, object] = {}
        for part in parts[1:]:
            name, sep, raw = part.partition("=")
            name = name.strip()
            raw = raw.strip()
            if not sep:
                raise FaultPlanError(
                    f"malformed argument {part!r} in spec {token!r}"
                )
            try:
                if name in _INT_ARGS:
                    kwargs[name] = int(raw)
                elif name in _FLOAT_ARGS:
                    kwargs[name] = float(raw)
                elif name in _STR_ARGS:
                    kwargs["application"] = raw
                else:
                    raise FaultPlanError(
                        f"unknown argument {name!r} in spec {token!r}"
                    )
            except ValueError:
                raise FaultPlanError(
                    f"bad value {raw!r} for {name!r} in spec {token!r}"
                )
        specs.append(FaultSpec(site=head, **kwargs))  # type: ignore[arg-type]
    return FaultPlan(specs, seed=seed)


# ---------------------------------------------------------------------------
# Process-wide activation.
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_IN_WORKER = False


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` process-wide (forked children inherit it)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    """Deactivate any installed plan."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    """The installed plan, or ``None``."""
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager installing ``plan`` for the duration of a block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def disarm(site: str) -> int:
    """Remove ``site``'s specs from the installed plan (0 if none)."""
    plan = _ACTIVE
    if plan is None:
        return 0
    return plan.disarm(site)


def plan_from_env() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` when unset."""
    text = os.environ.get(FAULT_PLAN_ENV_VAR)
    if not text:
        return None
    return parse_fault_plan(text)


def mark_worker_process() -> None:
    """Declare this process a pool worker (enables ``worker.crash``)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    return _IN_WORKER


# ---------------------------------------------------------------------------
# Site hooks (each is a cheap no-op without an installed plan).
# ---------------------------------------------------------------------------


def worker_gate(cell_index: int, application: str, attempt: int) -> None:
    """Fault site guarding one cell attempt (crash / hang / fail)."""
    plan = _ACTIVE
    if plan is None:
        return
    if _IN_WORKER and plan.match(
        WORKER_CRASH, cell=cell_index, application=application,
        attempt=attempt,
    ) is not None:
        os._exit(CRASH_EXIT_CODE)
    spec = plan.match(
        WORKER_HANG, cell=cell_index, application=application,
        attempt=attempt,
    )
    if spec is not None:
        time.sleep(spec.seconds)
    if plan.match(
        WORKER_FAIL, cell=cell_index, application=application,
        attempt=attempt,
    ) is not None:
        raise InjectedFault(
            f"injected worker failure (cell {cell_index} {application}, "
            f"attempt {attempt})"
        )


def _truncate_file(path: str) -> None:
    size = os.path.getsize(path)
    with open(path, "r+b") as stream:
        stream.truncate(size // 2)


def corrupt_cache_read(path: os.PathLike[str] | str) -> None:
    """Fault site: truncate an existing cache entry before it is read."""
    plan = _ACTIVE
    if plan is None:
        return
    target = os.fspath(path)
    if not os.path.exists(target):
        return
    if plan.match(CACHE_CORRUPT_READ) is not None:
        _truncate_file(target)


def tear_cache_write(path: os.PathLike[str] | str) -> None:
    """Fault site: truncate a cache temp file before it is published."""
    plan = _ACTIVE
    if plan is None:
        return
    if plan.match(CACHE_TORN_WRITE) is not None:
        _truncate_file(os.fspath(path))


def corrupt_trace_line(plan: FaultPlan, line: str) -> str:
    """Fault site: return ``line`` possibly corrupted into invalid JSON.

    The caller passes the active plan explicitly so the per-line cost
    without a plan is a single ``None`` check in the parse loop.
    """
    if plan.match(TRACE_MALFORMED_LINE) is None:
        return line
    # Dropping the final character always unbalances a JSON object.
    return line.rstrip()[:-1] or "{"


def persistence_gate(path: os.PathLike[str] | str, operation: str) -> None:
    """Fault site: raise a transient ``OSError`` on persistence I/O."""
    plan = _ACTIVE
    if plan is None:
        return
    if plan.match(PERSIST_OS_ERROR) is not None:
        raise OSError(
            errno.EIO,
            f"injected transient I/O error ({operation})",
            os.fspath(path),
        )


def serve_conn_gate(client: str) -> bool:
    """Fault site: ``True`` when the daemon should drop this client's
    connection now.

    The daemon calls this once per received frame with the client's
    identity, so ``serve.conn_drop,app=<client>,at=N`` deterministically
    drops that client's connection on its N-th inbound frame regardless
    of how the event loop interleaves other clients.  The HELLO frame
    itself is gated under ``<anonymous>`` (identity is established *by*
    it), so for a named client ``at=1`` is the first post-HELLO frame —
    EXEC_BEGIN, then ROWS chunks, then EXEC_END.
    """
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.match(SERVE_CONN_DROP, application=client) is not None


def serve_frame_gate(client: str, payload: bytes) -> bytes:
    """Fault site: return ``payload`` possibly truncated mid-frame.

    Matching works like :func:`serve_conn_gate` (``app=`` selects the
    client, the counter is per matching frame), so a plan can corrupt
    one specific frame of one specific client reproducibly.
    """
    plan = _ACTIVE
    if plan is None:
        return payload
    if plan.match(SERVE_FRAME_TRUNCATE, application=client) is None:
        return payload
    # Cut to an *odd* byte length: never a multiple of the (even)
    # row size, so a truncated ROWS payload is always off the row grid
    # (and a truncated JSON body never parses) — the corruption cannot
    # slip through as a silently shortened execution.
    cut = (len(payload) // 2) | 1
    if cut >= len(payload):
        cut = max(0, len(payload) - 1)
    return payload[:cut]


def serve_worker_gate(application: str) -> None:
    """Fault site: stall a serve shard worker before an execution.

    ``serve.worker_stall,app=<application>,at=N,seconds=S`` sleeps S
    seconds before the worker processes its N-th execution of that
    application; with S above the daemon's stall timeout the supervisor
    SIGKILLs the worker, restarts it, and replays — a deterministic
    worker-crash drill.
    """
    plan = _ACTIVE
    if plan is None:
        return
    spec = plan.match(SERVE_WORKER_STALL, application=application)
    if spec is not None:
        time.sleep(spec.seconds)
