"""Structured simulation tracing (the observability layer).

This private module holds the implementation; the public import path is
:mod:`repro.sim.tracing`.  It lives outside the ``sim`` package so the
low-level emitters (``repro.core.pcap``, ``repro.disk.disk``, the
predictor base class) can import the event types without pulling in the
simulation engine — whose import graph passes back through them.

Every component of a simulation run — the engine, the simulated disk,
the global predictor, and PCAP — can emit typed events into a *tracer*.
A tracer is anything with an ``emit(event)`` method; components hold
``None`` by default, so a run with tracing disabled pays exactly one
``is not None`` check per would-be event and allocates nothing.

The stock sink is :class:`TraceRecorder`: an in-memory event log (plain
list, or a bounded ring buffer) that keeps per-kind summary counters even
for events the ring has dropped, and exports the stream as JSON lines via
:func:`write_jsonl` / :func:`read_jsonl` (a lossless round trip).

Event vocabulary (one frozen dataclass per kind):

================== ====================================================
``access-served``    a post-cache request reached the disk
``gap-resolved``     an idle gap closed (mirrors ``disk.GapReport``)
``shutdown-sched``   the power manager issued a spin-down command
``shutdown-fired``   the spin-down took effect and was classified
``shutdown-cancel``  a decision existed but an arrival pre-empted it
``wait-expired``     the sliding wait-window elapsed without I/O
``sig-lookup``       PCAP looked a signature key up (hit/miss)
``table-train``      a long idle period trained a table entry
``history``          the idle-history register shifted a bit in
``spinup-delay``     a request waited for the disk to spin back up
``low-power``        the multi-state disk dropped to low-power idle
``proc-start``       a process became live in the global predictor
``proc-exit``        a process exited
``unknown-pid``      an access arrived from an unregistered pid
================== ====================================================

Events are small, picklable, and JSON-serializable, so parallel workers
ship them back with their :class:`~repro.sim.experiment.ApplicationResult`
and the cell-ordered merge keeps serial/parallel streams identical.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import (
    Any,
    ClassVar,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    TextIO,
    Union,
)

from repro.errors import ReproError


class TraceFormatError(ReproError):
    """A serialized trace line could not be decoded."""


# ---------------------------------------------------------------------------
# Event types
# ---------------------------------------------------------------------------

#: A table key is a bare signature or a (signature, history, fd) tuple.
TraceKey = Union[int, tuple]


@dataclass(frozen=True, slots=True)
class AccessServed:
    """A post-cache disk access was served."""

    kind: ClassVar[str] = "access-served"
    time: float
    pid: int
    pc: int
    block_count: int
    busy_until: float


@dataclass(frozen=True, slots=True)
class GapResolved:
    """An idle gap closed; mirrors :class:`repro.disk.disk.GapReport`."""

    kind: ClassVar[str] = "gap-resolved"
    time: float  #: gap end
    start: float
    length: float
    shutdown_at: Optional[float]


@dataclass(frozen=True, slots=True)
class ShutdownScheduled:
    """A spin-down command was issued inside the current gap."""

    kind: ClassVar[str] = "shutdown-sched"
    time: float
    source: str  #: "primary" | "backup"


@dataclass(frozen=True, slots=True)
class ShutdownFired:
    """A spin-down took effect; classification matches PredictionStats."""

    kind: ClassVar[str] = "shutdown-fired"
    time: float
    offset: float  #: seconds into the gap
    gap_length: float
    source: str
    hit: bool  #: off-window beat the breakeven time


@dataclass(frozen=True, slots=True)
class ShutdownCancelled:
    """A standing decision was pre-empted by an arrival."""

    kind: ClassVar[str] = "shutdown-cancel"
    time: float
    reason: str  #: "wait-window" | "back-to-back"


@dataclass(frozen=True, slots=True)
class WaitWindowExpired:
    """The sliding wait-window elapsed with no further I/O."""

    kind: ClassVar[str] = "wait-expired"
    time: float
    source: str


@dataclass(frozen=True, slots=True)
class SignatureLookup:
    """PCAP looked up a key in the prediction table."""

    kind: ClassVar[str] = "sig-lookup"
    time: float
    pid: int
    key: TraceKey
    hit: bool


@dataclass(frozen=True, slots=True)
class TableTrain:
    """A long idle period trained the prediction table."""

    kind: ClassVar[str] = "table-train"
    time: float
    pid: int
    key: TraceKey
    inserted: bool  #: False when the entry already existed


@dataclass(frozen=True, slots=True)
class HistoryUpdate:
    """The idle-history register shifted in one class bit."""

    kind: ClassVar[str] = "history"
    time: float
    pid: int
    bit: int
    register: int  #: packed register value after the shift


@dataclass(frozen=True, slots=True)
class SpinUpDelay:
    """A request had to wait for the disk to spin back up."""

    kind: ClassVar[str] = "spinup-delay"
    time: float
    seconds: float
    irritating: bool  #: off-window below breakeven (§6.3)


@dataclass(frozen=True, slots=True)
class LowPowerEntered:
    """The multi-state disk dropped to its low-power idle state."""

    kind: ClassVar[str] = "low-power"
    time: float


@dataclass(frozen=True, slots=True)
class ProcessStarted:
    """A process became live in the global predictor."""

    kind: ClassVar[str] = "proc-start"
    time: float
    pid: int


@dataclass(frozen=True, slots=True)
class ProcessExited:
    """A live process exited."""

    kind: ClassVar[str] = "proc-exit"
    time: float
    pid: int


@dataclass(frozen=True, slots=True)
class UnknownPidRegistered:
    """An access arrived from a pid the global predictor had never seen
    (fork unobserved / absent from ``initial_pids``); it was registered
    on the spot so its predictor still receives feedback."""

    kind: ClassVar[str] = "unknown-pid"
    time: float
    pid: int


#: Union of every event type, in emission-site order.
SimTraceEvent = Union[
    AccessServed,
    GapResolved,
    ShutdownScheduled,
    ShutdownFired,
    ShutdownCancelled,
    WaitWindowExpired,
    SignatureLookup,
    TableTrain,
    HistoryUpdate,
    SpinUpDelay,
    LowPowerEntered,
    ProcessStarted,
    ProcessExited,
    UnknownPidRegistered,
]

EVENT_TYPES: dict[str, type] = {
    cls.kind: cls for cls in SimTraceEvent.__args__  # type: ignore[attr-defined]
}


# ---------------------------------------------------------------------------
# Tracer protocol and sinks
# ---------------------------------------------------------------------------


class Tracer(Protocol):
    """Anything events can be emitted into."""

    def emit(self, event: SimTraceEvent) -> None: ...


class TraceRecorder:
    """In-memory event sink with summary counters and JSONL export.

    ``capacity`` bounds the retained stream as a ring buffer (oldest
    events dropped); ``None`` retains everything.  Counters always cover
    the full stream, including dropped events.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("ring-buffer capacity must be positive")
        self.capacity = capacity
        self._events: deque[SimTraceEvent] = deque(maxlen=capacity)
        self._counts: dict[str, int] = {}
        self.emitted = 0

    def emit(self, event: SimTraceEvent) -> None:
        self._events.append(event)
        kind = event.kind
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.emitted += 1

    @property
    def events(self) -> tuple[SimTraceEvent, ...]:
        """Retained events, oldest first."""
        return tuple(self._events)

    def counts(self) -> dict[str, int]:
        """Per-kind counters over the *whole* stream (sorted by kind)."""
        return dict(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimTraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()
        self.emitted = 0


# ---------------------------------------------------------------------------
# Serialization (JSON lines)
# ---------------------------------------------------------------------------


def event_to_dict(event: SimTraceEvent) -> dict[str, Any]:
    """Flat JSON-safe dict with the event ``kind`` in the ``"ev"`` slot."""
    record: dict[str, Any] = {"ev": event.kind}
    record.update(asdict(event))
    key = record.get("key")
    if isinstance(key, tuple):
        record["key"] = list(key)
    return record


def event_from_dict(record: dict[str, Any]) -> SimTraceEvent:
    """Inverse of :func:`event_to_dict`."""
    data = dict(record)
    kind = data.pop("ev", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise TraceFormatError(f"unknown trace event kind {kind!r}")
    if isinstance(data.get("key"), list):
        data["key"] = tuple(data["key"])
    names = {f.name for f in fields(cls)}
    extra = set(data) - names
    if extra:
        raise TraceFormatError(
            f"unexpected fields {sorted(extra)} for event {kind!r}"
        )
    try:
        return cls(**data)
    except TypeError as error:
        raise TraceFormatError(f"malformed {kind!r} event: {error}") from None


def write_jsonl(events: Iterable[SimTraceEvent], stream: TextIO) -> int:
    """Write events as one JSON object per line; returns the line count."""
    written = 0
    for event in events:
        stream.write(json.dumps(event_to_dict(event), separators=(",", ":")))
        stream.write("\n")
        written += 1
    return written


def read_jsonl(stream: TextIO) -> list[SimTraceEvent]:
    """Read a JSON-lines trace back into typed events."""
    events: list[SimTraceEvent] = []
    for number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"line {number}: {error}") from None
        if not isinstance(record, dict):
            raise TraceFormatError(f"line {number}: not a JSON object")
        events.append(event_from_dict(record))
    return events


def summarize(events: Iterable[SimTraceEvent]) -> dict[str, int]:
    """Per-kind counters of an event stream (sorted by kind)."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))


__all__ = [
    "AccessServed",
    "EVENT_TYPES",
    "GapResolved",
    "HistoryUpdate",
    "LowPowerEntered",
    "ProcessExited",
    "ProcessStarted",
    "ShutdownCancelled",
    "ShutdownFired",
    "ShutdownScheduled",
    "SignatureLookup",
    "SimTraceEvent",
    "SpinUpDelay",
    "TableTrain",
    "TraceFormatError",
    "TraceKey",
    "TraceRecorder",
    "Tracer",
    "UnknownPidRegistered",
    "WaitWindowExpired",
    "event_from_dict",
    "event_to_dict",
    "read_jsonl",
    "summarize",
    "write_jsonl",
]
