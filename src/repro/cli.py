"""Command-line interface.

::

    python -m repro reproduce [--scale S]        # all tables + figures
    python -m repro figure 7 [--scale S] [--chart]
    python -m repro table 1 [--scale S]
    python -m repro simulate --app mozilla --predictor PCAP [--scale S]
    python -m repro trace --app mozilla --predictor PCAP [--out t.jsonl]
    python -m repro trace pack --out store/ [--scale S | --from t.jsonl]
    python -m repro trace info store/
    python -m repro generate --app mozilla --out traces.jsonl [--scale S]
    python -m repro import-strace trace.txt --app myapp [--predictor PCAP]
    python -m repro inspect traces.jsonl
    python -m repro run --predictor PCAP --resume sweep.ckpt
    python -m repro fleet --devices 1000 --predictor PCAP --predictor Base
    python -m repro faults [--plan SPEC]
    python -m repro serve --socket /tmp/repro.sock --state-dir state/

Everything prints plain text; ``--chart`` switches the figure commands
to ASCII stacked bars.

``repro run`` is the resilient front end to the suite: per-cell retries
and timeouts, terminal failures reported in a ledger instead of
aborting, and ``--checkpoint``/``--resume`` journalling so an
interrupted run re-executes only unfinished cells.  ``repro faults``
replays a fault plan (default: the canned chaos scenario) against a
small suite and verifies the run survives it; any command accepts a
plan via ``$REPRO_FAULT_PLAN`` or ``--fault-plan`` where offered.

``repro fleet`` simulates a device *population* — N devices round-robin
over the chosen applications — through the device-batched columnar
fleet engine (:mod:`repro.sim.fleet`): one fused replay per
application scattered across the device rows, fleet-total energy and
per-percentile slowdown, optional per-device breakdown.  Output is
deterministic for a fixed population and scale (CI diffs serial
against ``--jobs 2``).

``repro trace pack`` converts traces (generated workloads or JSONL
files, including ``import-strace`` output) into the on-disk columnar
store format (:mod:`repro.traces.store`); every suite-level command
accepts ``--store DIR`` to run against a packed store with bounded
memory instead of generating the suite in memory.

``repro serve`` runs the online form of the paper's predictors: a
long-lived daemon (:mod:`repro.serve`) accepting streaming I/O event
feeds from concurrent clients over a Unix or TCP socket, sharding
predictor state across supervised worker subprocesses, journalling
every execution before answering, and returning live shutdown
decisions that are bit-identical to an offline replay — including
across worker crashes and daemon restarts.  ``repro faults`` gains a
serve phase that proves this under injected connection drops, frame
truncation, and worker stalls.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro import faults

from repro.analysis.ascii_charts import (
    render_accuracy_chart,
    render_energy_chart,
)
from repro.analysis.compare import all_checks, render_checks
from repro.analysis.figures import (
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
    build_fig10,
)
from repro.analysis.experiments_report import generate_report
from repro.analysis.svg_charts import render_accuracy_svg, render_energy_svg
from repro.analysis.report import (
    render_accuracy_figure,
    render_energy_figure,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.tables import build_table1, build_table2, build_table3
from repro.analysis.timeline import render_timeline, render_trace_summary
from repro.config import SimulationConfig
from repro.errors import ReproError
from repro.predictors.registry import KNOWN_PREDICTORS
from repro.sim.artifact_cache import (
    generated_suite_fingerprints,
    resolve_cache,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.parallel import ParallelExperimentRunner, stderr_progress
from repro.sim.tracing import TraceRecorder, write_jsonl
from repro.traces.io_format import (
    read_application_trace,
    write_application_trace,
)
from repro.traces.stats import TraceSummary
from repro.traces.strace_import import parse_strace
from repro.traces.trace import ApplicationTrace
from repro.workloads import APPLICATIONS, build_suite


def _runner(args, applications: Optional[tuple[str, ...]] = None):
    cache = resolve_cache(getattr(args, "cache_dir", None))
    store_path = getattr(args, "store", None)
    if store_path:
        from repro.traces.store import TraceStore

        suite = TraceStore(store_path).suite(applications)
        generated = False
    else:
        suite = build_suite(
            scale=args.scale,
            applications=applications or APPLICATIONS,
            cache=cache,
        )
        generated = True
    jobs = getattr(args, "jobs", None)
    runner = ParallelExperimentRunner(
        suite, SimulationConfig(), jobs=jobs, artifact_cache=cache
    )
    if cache is not None and generated:
        # The suite came from the deterministic generator: its trace
        # cache keys double as content fingerprints, skipping a
        # per-event hashing pass per application.  (Store-backed suites
        # carry their provenance fingerprint in the manifest instead.)
        runner.declare_fingerprints(
            generated_suite_fingerprints(args.scale, tuple(suite))
        )
    if runner.jobs > 1 and getattr(args, "progress", False):
        runner.progress = stderr_progress
    return runner


def _cmd_reproduce(args) -> int:
    runner = _runner(args)
    print(render_table1(build_table1(runner)))
    print()
    print(render_table2(build_table2(runner.config.disk)))
    figures = {
        "6": (build_fig6(runner), "Figure 6: Local predictors", False),
        "7": (build_fig7(runner), "Figure 7: Global predictors", False),
        "9": (build_fig9(runner), "Figure 9: Optimizations", True),
        "10": (build_fig10(runner), "Figure 10: Table reuse", True),
    }
    built = {}
    for key, (figure, title, split) in figures.items():
        print()
        print(render_accuracy_figure(figure, title, split_sources=split))
        built[key] = figure
    fig8 = build_fig8(runner)
    print()
    print(render_energy_figure(fig8))
    print()
    print(render_table3(build_table3(runner)))
    print()
    print(render_checks(
        all_checks(built["6"], built["7"], fig8, built["9"], built["10"])
    ))
    return 0


def _cmd_report(args) -> int:
    runner = _runner(args)
    document = generate_report(runner, scale=args.scale)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(document)
        print(f"wrote {args.out}")
    else:
        print(document)
    return 0


def _cmd_figure(args) -> int:
    runner = _runner(args)
    number = args.number
    title = f"Figure {number} (measured, scale {args.scale})"
    if number == 8:
        figure = build_fig8(runner)
        if args.svg:
            _write_svg(args.svg, render_energy_svg(figure, title))
        elif args.chart:
            print(render_energy_chart(figure))
        else:
            print(render_energy_figure(figure))
        return 0
    builders = {6: build_fig6, 7: build_fig7, 9: build_fig9, 10: build_fig10}
    if number not in builders:
        print(f"no figure {number}; the paper has figures 6-10",
              file=sys.stderr)
        return 2
    figure = builders[number](runner)
    if args.svg:
        _write_svg(args.svg, render_accuracy_svg(figure, title))
    elif args.chart:
        print(render_accuracy_chart(figure, title))
    else:
        print(render_accuracy_figure(
            figure, title, split_sources=number in (9, 10)
        ))
    return 0


def _write_svg(path: str, document: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(document)
    print(f"wrote {path}")


def _cmd_table(args) -> int:
    if args.number == 2:
        print(render_table2(build_table2(SimulationConfig().disk)))
        return 0
    runner = _runner(args)
    if args.number == 1:
        print(render_table1(build_table1(runner)))
    elif args.number == 3:
        print(render_table3(build_table3(runner)))
    else:
        print("the paper has tables 1-3", file=sys.stderr)
        return 2
    return 0


def _write_trace(path: str, events) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        written = write_jsonl(events, stream)
    print(f"wrote {written} trace events to {path}")


def _cmd_simulate(args) -> int:
    runner = _runner(args, applications=(args.app,))
    base = runner.run_global(args.app, "Base")
    recorder = TraceRecorder() if args.trace_out else None
    result = runner.run_global(args.app, args.predictor, tracer=recorder)
    stats = result.stats
    print(f"{args.app} x {result.predictor} (scale {args.scale}, "
          f"{result.executions} executions)")
    print(f"  disk accesses      : {result.total_disk_accesses}")
    print(f"  idle periods       : {stats.opportunities}")
    print(f"  coverage           : {stats.hit_fraction:.1%} "
          f"(primary {stats.hit_primary_fraction:.1%}, "
          f"backup {stats.hit_backup_fraction:.1%})")
    print(f"  mispredictions     : {stats.miss_fraction:.1%}")
    print(f"  shutdowns          : {result.shutdowns}")
    print(f"  energy             : {result.energy:.1f} J "
          f"(base {base.energy:.1f} J, "
          f"savings {1 - result.energy / base.energy:.1%})")
    if result.table_size is not None:
        print(f"  prediction table   : {result.table_size} entries")
    if recorder is not None:
        _write_trace(args.trace_out, recorder.events)
    return 0


def _cmd_trace(args) -> int:
    if not args.app:
        print("error: repro trace needs --app (or a subcommand: pack, info)",
              file=sys.stderr)
        return 2
    runner = _runner(args, applications=(args.app,))
    recorder = TraceRecorder(
        capacity=args.capacity if args.capacity > 0 else None
    )
    result = runner.run_global(
        args.app, args.predictor, multistate=args.multistate, tracer=recorder
    )
    stats = result.stats
    title = (f"{args.app} x {result.predictor} decision timeline "
             f"(scale {args.scale}, {result.executions} executions)")
    print(render_timeline(recorder.events, limit=args.limit, title=title))
    print()
    print(render_trace_summary(recorder.counts()))
    fired = recorder.counts().get("shutdown-fired", 0)
    print(f"reconciliation     : shutdown-fired events {fired}, "
          f"stats hits+misses {stats.shutdowns} "
          f"({'OK' if fired == stats.shutdowns else 'MISMATCH'})")
    if args.out:
        _write_trace(args.out, recorder.events)
    return 0 if fired == stats.shutdowns else 1


def _cmd_trace_pack(args) -> int:
    from repro.traces.store import (
        DEFAULT_CHUNK_ROWS,
        StoreWriter,
        TraceStore,
        pack_jsonl,
    )

    chunk_rows = getattr(args, "chunk_rows", None) or DEFAULT_CHUNK_ROWS
    source = getattr(args, "from_jsonl", None)
    if source:
        with StoreWriter(args.out, chunk_rows=chunk_rows) as writer:
            with open(source, "r", encoding="utf-8") as stream:
                executions = pack_jsonl(stream, writer)
        print(f"packed {executions} execution(s) from {source}")
    else:
        from repro.workloads.streaming import iter_suite_executions

        selected = getattr(args, "app", None)
        if not selected:
            apps = APPLICATIONS
        elif isinstance(selected, str):
            # Parsed by the parent `trace` parser (before the
            # subcommand), where --app is a single value.
            apps = (selected,)
        else:
            apps = tuple(selected)
        executions = 0
        with StoreWriter(args.out, chunk_rows=chunk_rows) as writer:
            for execution in iter_suite_executions(
                scale=args.scale, applications=apps
            ):
                writer.write_execution(execution)
                executions += 1
        print(f"packed {executions} generated execution(s) "
              f"at scale {args.scale}")
    store = TraceStore(args.out)
    print(f"store: {args.out} ({store.rows} rows, {len(store.chunks)} "
          f"chunk(s) of {store.chunk_rows}, "
          f"{len(store.applications)} application(s))")
    return 0


def _cmd_trace_info(args) -> int:
    from repro.traces.store import TraceStore

    store = TraceStore(args.store_dir)
    print(f"trace store      : {store.path}")
    print(f"rows             : {store.rows} "
          f"({len(store.chunks)} chunk(s) of {store.chunk_rows})")
    print(f"fingerprint      : {store.fingerprint}")
    print(f"applications     : {len(store.applications)}")
    for name in store.applications:
        entry = store.application_entry(name)
        print(f"  {name:<12s} {len(entry['executions']):>4d} executions  "
              f"{entry['io_events']:>8d} I/O events  "
              f"fingerprint {entry['fingerprint']}")
    return 0


def _cmd_generate(args) -> int:
    suite = build_suite(scale=args.scale, applications=(args.app,))
    trace = suite[args.app]
    with open(args.out, "w", encoding="utf-8") as stream:
        write_application_trace(trace, stream)
    print(f"wrote {len(trace.executions)} executions "
          f"({trace.total_io_count} I/O events) to {args.out}")
    return 0


def _cmd_import_strace(args) -> int:
    with open(args.input, "r", encoding="utf-8") as stream:
        execution, stats = parse_strace(stream, application=args.app)
    print(f"imported {stats.io_events} I/O events, {stats.forks} forks, "
          f"{stats.exits} exits ({stats.skipped_lines} lines skipped, "
          f"{stats.failed_syscalls} failed syscalls)")
    if args.out:
        trace = ApplicationTrace(args.app, [execution])
        with open(args.out, "w", encoding="utf-8") as stream:
            write_application_trace(trace, stream)
        print(f"wrote {args.out}")
    if args.predictor:
        runner = ExperimentRunner(
            {args.app: ApplicationTrace(args.app, [execution])},
            SimulationConfig(),
        )
        recorder = TraceRecorder() if args.trace_out else None
        result = runner.run_global(args.app, args.predictor, tracer=recorder)
        print(f"{args.predictor}: coverage "
              f"{result.stats.hit_fraction:.1%}, misses "
              f"{result.stats.miss_fraction:.1%}, energy "
              f"{result.energy:.1f} J")
        if recorder is not None:
            _write_trace(args.trace_out, recorder.events)
    elif args.trace_out:
        print("--trace-out needs --predictor to run a simulation",
              file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args) -> int:
    from repro.perf import (
        DEFAULT_TOLERANCE,
        PerfReport,
        compare_reports,
        render_report,
        run_benchmarks,
    )

    try:
        report = run_benchmarks(quick=args.quick, only=args.only)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline and not args.update_baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as stream:
                baseline = PerfReport.from_json(stream.read())
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; skipping the gate",
                  file=sys.stderr)
    print(render_report(report, baseline))
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        from repro.perf import render_markdown_delta

        with open(summary_path, "a", encoding="utf-8") as stream:
            stream.write(render_markdown_delta(report, baseline))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(report.to_json())
        print(f"wrote {args.out}")
    if args.update_baseline:
        written = report
        if args.only:
            # Partial run: merge the measured entries into the existing
            # baseline instead of discarding its other entries.
            try:
                with open(args.baseline, "r", encoding="utf-8") as stream:
                    existing = PerfReport.from_json(stream.read())
            except FileNotFoundError:
                existing = None
            if existing is not None:
                if (existing.mode, existing.scale) != (
                    report.mode, report.scale,
                ):
                    print(
                        f"error: cannot merge a {report.mode}@"
                        f"{report.scale} run into the {existing.mode}@"
                        f"{existing.scale} baseline {args.baseline}",
                        file=sys.stderr,
                    )
                    return 2
                existing.results.update(report.results)
                written = existing
        with open(args.baseline, "w", encoding="utf-8") as stream:
            stream.write(written.to_json())
        print(f"updated baseline {args.baseline}")
        return 0
    if baseline is None:
        return 0
    try:
        regressions = compare_reports(
            report, baseline, tolerance=args.tolerance
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    tolerance = args.tolerance if args.tolerance is not None else (
        DEFAULT_TOLERANCE
    )
    if regressions:
        for item in regressions:
            print(
                f"REGRESSION: {item.name} throughput dropped "
                f"{item.drop:.1%} (baseline {item.baseline_ops:.1f} ops/s, "
                f"now {item.current_ops:.1f} ops/s; tolerance "
                f"{tolerance:.0%})",
                file=sys.stderr,
            )
        return 1
    print(f"perf gate OK (tolerance {tolerance:.0%})")
    return 0


def _render_run_results(matrix) -> str:
    lines = [
        f"  {'application':<12s} {'predictor':<10s} {'coverage':>9s} "
        f"{'misses':>7s} {'energy':>10s} {'shutdowns':>9s}"
    ]
    for application in sorted(matrix):
        for name, result in matrix[application].items():
            lines.append(
                f"  {application:<12s} {name:<10s} "
                f"{result.stats.hit_fraction:>8.1%} "
                f"{result.stats.miss_fraction:>6.1%} "
                f"{result.energy:>8.1f} J {result.shutdowns:>9d}"
            )
    return "\n".join(lines)


def _cmd_run(args) -> int:
    from repro.sim.resilience import ResiliencePolicy

    predictors = args.predictor or ["PCAP"]
    apps = tuple(args.app) if args.app else APPLICATIONS
    runner = _runner(args, applications=apps)
    if args.progress:
        runner.progress = stderr_progress
    policy = ResiliencePolicy(
        max_attempts=args.retries + 1,
        cell_timeout=args.cell_timeout,
    )
    checkpoint = args.resume or args.checkpoint
    report = runner.run_matrix_resilient(
        predictors,
        applications=apps,
        multistate=args.multistate,
        policy=policy,
        checkpoint=checkpoint,
        fused=args.fused,
    )
    fused_active = runner._fused_eligible(
        args.fused, mode="global", multistate=args.multistate
    )
    print(f"resilient run: {len(predictors)} predictor(s) × "
          f"{len(apps)} application(s), scale {args.scale}"
          + (" [fused]" if fused_active else ""))
    print(_render_run_results(report.matrix))
    print()
    print(report.ledger.render())
    plan = faults.active()
    if plan is not None and plan.fired:
        print()
        print(plan.render_fired())
    if checkpoint:
        print(f"checkpoint: {checkpoint} "
              f"({report.ledger.resumed} cell(s) resumed)")
    return 0 if report.complete else 1


def _cmd_fleet(args) -> int:
    from repro.sim.fleet import replicate_devices, run_fleet
    from repro.sim.resilience import ResiliencePolicy

    predictors = args.predictor or ["PCAP"]
    apps = tuple(args.app) if args.app else APPLICATIONS
    runner = _runner(args, applications=apps)
    if args.progress:
        runner.progress = stderr_progress
    devices = replicate_devices(apps, args.devices)
    policy = ResiliencePolicy(
        max_attempts=args.retries + 1,
        cell_timeout=args.cell_timeout,
    )
    checkpoint = args.resume or args.checkpoint
    percentiles = tuple(
        float(part) for part in args.percentiles.split(",") if part.strip()
    )
    result = run_fleet(
        runner,
        devices,
        predictors,
        tables=args.tables,
        jobs=runner.jobs,
        progress=runner.progress,
        resilience=policy,
        checkpoint=checkpoint,
    )
    workload = (
        f"store {args.store}" if args.store else f"scale {args.scale}"
    )
    print(f"fleet run: {len(devices)} device(s) over {len(apps)} "
          f"application(s), {len(predictors)} predictor lane(s), "
          f"{args.tables} tables, {workload}")
    print(result.render(percentiles))
    if args.per_device:
        print()
        lane = result.lanes[predictors[0]]
        shown = min(args.per_device, lane.devices)
        print(f"  first {shown} device(s), lane {predictors[0]}:")
        for index in range(shown):
            device = devices[index]
            item = lane.device_result(index)
            delay = (
                item.delay_seconds / item.total_disk_accesses
                if item.total_disk_accesses else 0.0
            )
            print(f"  {device.device_id:<12s} {device.application:<12s} "
                  f"{item.energy:>10.1f} J {delay * 1e3:>8.3f} ms "
                  f"{item.shutdowns:>5d} shutdowns")
    if checkpoint:
        resumed = result.ledger.resumed if result.ledger is not None else 0
        print(f"checkpoint: {checkpoint} ({resumed} cell(s) resumed)")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.daemon import ServeDaemon

    tcp = None
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        try:
            tcp = (host or "127.0.0.1", int(port))
        except ValueError:
            print(f"error: --tcp needs HOST:PORT, got {args.tcp!r}",
                  file=sys.stderr)
            return 2
    daemon = ServeDaemon(
        socket_path=args.socket,
        tcp=tcp,
        state_dir=args.state_dir,
        predictor=args.predictor,
        shards=args.shards,
        checkpoint_every=args.checkpoint_every,
        stall_timeout=args.stall_timeout,
        max_pending_bytes=args.max_pending_bytes,
        max_queue=args.max_queue,
    )
    print(f"serving on {daemon.address} "
          f"(control {daemon.control_address}, "
          f"{len(daemon.supervisors)} shard(s), "
          f"predictor {daemon.predictor}, "
          f"state {daemon.state_dir})", flush=True)
    daemon.serve_forever()
    print("drained; exiting")
    return 0


def _cmd_faults(args) -> int:
    """Replay a fault plan against a small suite and verify survival."""
    import tempfile

    from repro.errors import TraceFormatError
    from repro.sim.parallel import fork_available
    from repro.sim.resilience import (
        CANNED_CHAOS_PLAN,
        ResiliencePolicy,
        parse_fault_plan,
    )

    plan_text = args.plan or CANNED_CHAOS_PLAN
    user_jobs = args.jobs
    pooled = fork_available() and user_jobs != 1
    if not pooled:
        # Without forked workers a crash would take the whole process
        # down; the in-process path exercises the same retry machinery
        # with an injected exception instead.
        plan_text = plan_text.replace("worker.crash", "worker.fail")
    plan = parse_fault_plan(plan_text)
    predictors = ["PCAP", "TP"]
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, ok, detail))

    faults.clear()
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        cache_dir = os.path.join(tmp, "cache")

        # 1. Fault-free serial baseline (also publishes cache entries,
        #    so the faulted run has artifacts for cache.corrupt-read).
        args.cache_dir = cache_dir
        args.jobs = 1
        baseline_runner = _runner(args)
        baseline = baseline_runner.run_matrix(predictors)

        # 2. The trace format segment: a malformed-line fault must
        #    surface as a clean TraceFormatError, not a crash.
        trace_path = os.path.join(tmp, "trace.jsonl")
        suite = build_suite(scale=args.scale, applications=("mozilla",))
        with open(trace_path, "w", encoding="utf-8") as stream:
            write_application_trace(suite["mozilla"], stream)
        faults.install(plan)
        try:
            with open(trace_path, "r", encoding="utf-8") as stream:
                read_application_trace(stream)
        except TraceFormatError as error:
            check("trace corruption surfaces as TraceFormatError", True,
                  str(error))
        else:
            check("trace corruption surfaces as TraceFormatError",
                  plan.specs_for(faults.TRACE_MALFORMED_LINE) == (),
                  "no error raised")

        # 3. The faulted resilient run, on a fresh runner sharing the
        #    warmed cache (so corrupt-read faults hit real entries).
        if pooled:
            args.jobs = max(2, user_jobs or 0)
        else:
            args.jobs = 1
        runner = _runner(args)
        if args.progress:
            runner.progress = stderr_progress
        policy = ResiliencePolicy(
            max_attempts=2, cell_timeout=args.cell_timeout
        )
        report = runner.run_matrix_resilient(
            predictors, policy=policy
        )
        faults.clear()
        ledger = report.ledger

        # 4. Verdicts.
        crash_cells = {
            spec.cell
            for site in (faults.WORKER_CRASH, faults.WORKER_FAIL)
            for spec in plan.specs_for(site)
            if spec.cell is not None and spec.attempts >= policy.max_attempts
        }
        check(
            "run completed with a full ledger",
            len(ledger.outcomes)
            == len(predictors) * len(baseline_runner.applications),
        )
        check(
            "terminally faulted cells reported as failures",
            {f.cell.index for f in ledger.failures} == crash_cells,
            f"failed cells {sorted(f.cell.index for f in ledger.failures)}, "
            f"expected {sorted(crash_cells)}",
        )
        check("failure ledger is non-empty" if crash_cells
              else "no terminal failures expected",
              bool(ledger.failures) == bool(crash_cells))
        check("retries were recorded", bool(ledger.retries),
              f"{len(ledger.retries)} failed attempt(s)")
        healthy_identical = True
        compared = 0
        for application, row in report.matrix.items():
            for name, result in row.items():
                compared += 1
                if baseline[application][name] != result:
                    healthy_identical = False
        check(
            "healthy cells bit-identical to the fault-free baseline",
            healthy_identical and compared > 0,
            f"{compared} cell(s) compared",
        )

        # 5. The serve phase: a live daemon subprocess under the three
        #    serve fault sites (connection drop, frame truncation,
        #    worker stall past the supervisor deadline), verified
        #    decision- and table-identical to the offline replay.
        if args.serve:
            from repro.serve.harness import (
                CANNED_SERVE_CHAOS_PLAN,
                run_scenario,
                verify_equivalence,
            )

            scenario = run_scenario(
                socket_path=os.path.join(tmp, "serve.sock"),
                state_dir=os.path.join(tmp, "serve-state"),
                clients=2,
                scale=0.05,
                applications=("mozilla", "xemacs"),
                stall_timeout=3.0,
                fault_plan=CANNED_SERVE_CHAOS_PLAN,
            )
            failures = verify_equivalence(scenario)
            check(
                "serve decisions bit-identical to the offline replay",
                not failures,
                failures[0] if failures
                else f"{len(scenario.decisions)} decision(s)",
            )
            kinds = {
                incident.get("kind")
                for incident in scenario.health.get("incidents", [])
            }
            check(
                "serve incidents on the health endpoint",
                {"worker-restart", "conn-drop", "malformed-frame"}
                <= kinds,
                f"kinds {sorted(k for k in kinds if k)}",
            )
            check(
                "daemon drained cleanly on SIGTERM",
                scenario.exit_code == 0,
                f"exit code {scenario.exit_code}",
            )

    print(f"fault plan: {plan_text}")
    print(f"mode: {'pooled' if pooled else 'in-process'} "
          f"(jobs={args.jobs}, cell timeout {args.cell_timeout:g} s)")
    print()
    print(ledger.render())
    print()
    failed = [name for name, ok, _ in checks if not ok]
    for name, ok, detail in checks:
        suffix = f" ({detail})" if detail else ""
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}{suffix}")
    print()
    if failed:
        print(f"chaos verdict: FAIL ({len(failed)} check(s) failed)")
        return 1
    print("chaos verdict: OK — the suite survived the fault plan")
    return 0


def _cmd_inspect(args) -> int:
    with open(args.input, "r", encoding="utf-8") as stream:
        trace = read_application_trace(stream)
    summary = TraceSummary.of(trace)
    print(f"application      : {summary.application}")
    print(f"executions       : {summary.executions}")
    print(f"I/O events       : {summary.total_io_events}")
    print(f"processes (total): {summary.total_processes}")
    for execution in trace.executions[:5]:
        span = execution.end_time - execution.start_time
        print(f"  execution {execution.execution_index}: "
              f"{len(execution.io_events)} events, "
              f"{len(execution.pids)} processes, {span:.1f} s")
    if len(trace.executions) > 5:
        print(f"  ... and {len(trace.executions) - 5} more")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Program Counter Based Techniques "
                    "for Dynamic Power Management' (HPCA 2004)",
    )
    parser.add_argument("--fault-plan", metavar="SPEC",
                        help="inject faults per SPEC for any command "
                             "(see repro.faults; $REPRO_FAULT_PLAN is "
                             "the env equivalent)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p):
        p.add_argument("--scale", type=float, default=0.5,
                       help="workload scale (1.0 = the paper's Table 1)")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for suite-level runs "
                            "(default: $REPRO_JOBS or 1; 0 = all cores)")
        p.add_argument("--progress", action="store_true",
                       help="report per-cell progress on stderr when "
                            "running in parallel")
        p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist generated traces and filter results "
                            "in DIR (default: $REPRO_CACHE_DIR; unset "
                            "disables the artifact cache)")
        p.add_argument("--store", metavar="DIR", default=None,
                       help="run against a packed trace store (see "
                            "'repro trace pack') with memory-bounded "
                            "streaming instead of generating the suite; "
                            "--scale is then ignored (the store fixes "
                            "the workload)")

    p = sub.add_parser("reproduce", help="all tables, figures, and checks")
    add_scale(p)
    p.set_defaults(fn=_cmd_reproduce)

    p = sub.add_parser(
        "report", help="generate a Markdown measured-vs-paper report"
    )
    p.add_argument("--out", help="write to a file instead of stdout")
    add_scale(p)
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("figure", help="one figure (6-10)")
    p.add_argument("number", type=int)
    p.add_argument("--chart", action="store_true",
                   help="ASCII stacked bars instead of numbers")
    p.add_argument("--svg", metavar="FILE",
                   help="write the figure as a standalone SVG chart")
    add_scale(p)
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("table", help="one table (1-3)")
    p.add_argument("number", type=int)
    add_scale(p)
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser("simulate", help="one app under one predictor")
    p.add_argument("--app", choices=APPLICATIONS, required=True)
    p.add_argument("--predictor", choices=KNOWN_PREDICTORS, default="PCAP")
    p.add_argument("--trace-out", metavar="FILE",
                   help="record the structured event trace as JSON lines")
    add_scale(p)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "trace",
        help="decision timeline of one cell, or trace-store subcommands "
             "(pack, info)",
    )
    p.add_argument("--app", choices=APPLICATIONS, default=None)
    p.add_argument("--predictor", choices=KNOWN_PREDICTORS, default="PCAP")
    p.add_argument("--out", metavar="FILE",
                   help="also write the timeline as JSON lines")
    p.add_argument("--limit", type=int, default=60,
                   help="timeline lines to print (0 = all; default 60)")
    p.add_argument("--capacity", type=int, default=0,
                   help="ring-buffer size; 0 keeps every event (default)")
    p.add_argument("--multistate", action="store_true",
                   help="enable the §7 low-power idle state")
    add_scale(p)
    p.set_defaults(fn=_cmd_trace)
    trace_sub = p.add_subparsers(dest="trace_command", required=False,
                                 metavar="{pack,info}")

    # Flags shared with the parent parser use SUPPRESS defaults so a
    # value parsed before the subcommand (e.g. `trace --scale 1.0 pack`)
    # is not clobbered by a subparser default during the namespace merge.
    tp = trace_sub.add_parser(
        "pack",
        help="pack traces into the on-disk columnar store format",
    )
    tp.add_argument("--out", required=True, metavar="DIR",
                    help="store directory to create (must not exist yet)")
    tp.add_argument("--from", dest="from_jsonl", metavar="FILE",
                    help="pack a JSON-lines trace file (e.g. generate or "
                         "import-strace output) instead of generating "
                         "workloads")
    tp.add_argument("--app", action="append", choices=APPLICATIONS,
                    default=argparse.SUPPRESS,
                    help="generated application subset (repeatable; "
                         "default: all six)")
    tp.add_argument("--scale", type=float, default=argparse.SUPPRESS,
                    help="workload scale for generated traces")
    tp.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                    help="rows per store chunk — the streaming read "
                         "granularity (default 65536)")
    tp.set_defaults(fn=_cmd_trace_pack)

    ti = trace_sub.add_parser("info", help="summarize a packed trace store")
    ti.add_argument("store_dir", metavar="STORE")
    ti.set_defaults(fn=_cmd_trace_info)

    p = sub.add_parser("generate", help="write a workload trace file")
    p.add_argument("--app", choices=APPLICATIONS, required=True)
    p.add_argument("--out", required=True)
    add_scale(p)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("import-strace", help="convert strace -f -ttt -i output")
    p.add_argument("input")
    p.add_argument("--app", default="imported")
    p.add_argument("--out", help="write the converted trace (JSON lines)")
    p.add_argument("--predictor", choices=KNOWN_PREDICTORS,
                   help="also simulate the imported trace")
    p.add_argument("--trace-out", metavar="FILE",
                   help="record the simulation's event trace (JSON lines; "
                        "needs --predictor)")
    p.set_defaults(fn=_cmd_import_strace)

    p = sub.add_parser("inspect", help="summarize a trace file")
    p.add_argument("input")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser(
        "run",
        help="resilient suite run: retries, timeouts, checkpoint/resume",
    )
    p.add_argument("--predictor", action="append", choices=KNOWN_PREDICTORS,
                   metavar="NAME",
                   help="predictor to run (repeatable; default: PCAP)")
    p.add_argument("--app", action="append", choices=APPLICATIONS,
                   help="application subset (repeatable; default: all)")
    p.add_argument("--multistate", action="store_true",
                   help="enable the §7 low-power idle state")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per cell after the first attempt "
                        "(default 2)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SEC",
                   help="per-cell wall-clock timeout (default: none)")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="journal completed cells to FILE (append-only "
                        "JSON lines)")
    p.add_argument("--resume", metavar="FILE",
                   help="resume from FILE: skip cells already journalled "
                        "there, keep journalling new ones")
    p.add_argument("--fault-plan", metavar="SPEC",
                   default=argparse.SUPPRESS,
                   help="inject faults per SPEC (see repro.faults; "
                        "$REPRO_FAULT_PLAN works for every command)")
    p.add_argument("--fused", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="evaluate all predictors in one streaming pass "
                        "per application (bit-identical results, one "
                        "cell per app; default: $REPRO_FUSED). "
                        "--no-fused forces the per-cell path")
    add_scale(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "fleet",
        help="simulate a device fleet with the batched columnar engine",
    )
    p.add_argument("--devices", type=int, default=100, metavar="N",
                   help="fleet size; devices are assigned round-robin "
                        "over the applications (default 100)")
    p.add_argument("--predictor", action="append", choices=KNOWN_PREDICTORS,
                   metavar="NAME",
                   help="predictor lane (repeatable; default: PCAP)")
    p.add_argument("--app", action="append", choices=APPLICATIONS,
                   help="application subset (repeatable; default: all)")
    p.add_argument("--tables", choices=("sharded", "shared"),
                   default="sharded",
                   help="prediction-table scope: per-application shards "
                        "(devices independent, bit-identical to "
                        "standalone runs) or one fleet-wide table set")
    p.add_argument("--percentiles", default="50,90,99", metavar="P,P,...",
                   help="slowdown percentiles to report (default "
                        "50,90,99)")
    p.add_argument("--per-device", type=int, default=0, metavar="N",
                   help="also print the first N per-device breakdowns")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per cell after the first attempt "
                        "(default 2)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SEC",
                   help="per-cell wall-clock timeout (default: none)")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="journal completed cells to FILE")
    p.add_argument("--resume", metavar="FILE",
                   help="resume from FILE: skip cells already journalled "
                        "there, keep journalling new ones")
    add_scale(p)
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser(
        "faults",
        help="replay a fault plan and verify the pipeline survives it",
    )
    p.add_argument("--plan", metavar="SPEC",
                   help="fault plan to replay (default: the canned chaos "
                        "scenario — worker crash, hung cell, corrupted "
                        "cache entry, malformed trace line)")
    p.add_argument("--cell-timeout", type=float, default=5.0, metavar="SEC",
                   help="per-cell wall-clock timeout (default 5)")
    p.add_argument("--serve", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="also run the serve phase: a live daemon under "
                        "the serve.* fault sites, verified against the "
                        "offline replay (default on; --no-serve skips)")
    add_scale(p)
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "serve",
        help="run the online DPM service daemon (streaming feed clients, "
             "supervised shard workers, crash-safe state)",
    )
    p.add_argument("--socket", metavar="PATH",
                   help="Unix socket to listen on (control socket at "
                        "PATH.ctl); exactly one of --socket/--tcp")
    p.add_argument("--tcp", metavar="HOST:PORT",
                   help="TCP listen address (control socket at PORT+1)")
    p.add_argument("--state-dir", required=True, metavar="DIR",
                   help="shard journals, checkpoint segments, and the "
                        "quarantine live here; an existing state dir is "
                        "recovered on startup")
    p.add_argument("--predictor", choices=KNOWN_PREDICTORS, default="PCAP")
    p.add_argument("--shards", type=int, default=2, metavar="N",
                   help="supervised worker subprocesses; applications "
                        "hash to shards (default 2)")
    p.add_argument("--checkpoint-every", type=int, default=32, metavar="N",
                   help="journal records between compactions into "
                        "columnar checkpoint segments (default 32)")
    p.add_argument("--stall-timeout", type=float, default=30.0,
                   metavar="SEC",
                   help="per-execution worker deadline before the "
                        "supervisor SIGKILLs and restarts it (default 30)")
    p.add_argument("--max-pending-bytes", type=int,
                   default=8 * 1024 * 1024, metavar="B",
                   help="per-client bound on row payload under assembly "
                        "before a backpressure NACK (default 8 MiB)")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="per-shard queue depth before an overloaded "
                        "NACK (default 64)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "bench",
        help="run the throughput benchmarks and the perf-regression gate",
    )
    p.add_argument("--quick", action="store_true",
                   help="small workload (CI perf-smoke mode)")
    p.add_argument("--out", metavar="FILE", default="BENCH_engine.json",
                   help="write the machine-readable report "
                        "(default: BENCH_engine.json; empty disables)")
    p.add_argument("--baseline", metavar="FILE",
                   default="benchmarks/BENCH_engine.json",
                   help="baseline report to gate against "
                        "(default: benchmarks/BENCH_engine.json)")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="relative throughput drop that fails the gate "
                        "(default: 0.30)")
    p.add_argument("--update-baseline", action="store_true",
                   help="write this run's report as the new baseline "
                        "instead of gating (with --only, merges the "
                        "measured entries into the existing baseline)")
    p.add_argument("--only", action="append", metavar="NAME",
                   help="measure only the named benchmark entry "
                        "(repeatable; the gate skips absent entries)")
    p.set_defaults(fn=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        plan_text = getattr(args, "fault_plan", None)
        if not plan_text and args.command != "faults":
            # The faults command manages its own plan (it must run the
            # fault-free baseline first).
            plan_text = os.environ.get(faults.FAULT_PLAN_ENV_VAR)
        if plan_text:
            faults.install(faults.parse_fault_plan(plan_text))
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error.strerror or error}: "
              f"{getattr(error, 'filename', '')}", file=sys.stderr)
        return 1
    finally:
        faults.clear()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
