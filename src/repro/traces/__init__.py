"""Trace substrate: strace-like event records, containers, serialization,
and gap statistics."""

from repro.traces.events import (
    KERNEL_FLUSH_PC,
    AccessType,
    ExitEvent,
    ForkEvent,
    IOEvent,
    TraceEvent,
    event_sort_key,
)
from repro.traces.io_format import (
    read_application_trace,
    read_executions,
    write_application_trace,
    write_execution,
)
from repro.traces.stats import (
    Gap,
    TraceSummary,
    access_gaps,
    count_gaps_longer_than,
)
from repro.traces.trace import ApplicationTrace, ExecutionTrace, merge_events

__all__ = [
    "AccessType",
    "ApplicationTrace",
    "ExecutionTrace",
    "ExitEvent",
    "ForkEvent",
    "Gap",
    "IOEvent",
    "KERNEL_FLUSH_PC",
    "TraceEvent",
    "TraceSummary",
    "access_gaps",
    "count_gaps_longer_than",
    "event_sort_key",
    "merge_events",
    "read_application_trace",
    "read_executions",
    "write_application_trace",
    "write_execution",
]
