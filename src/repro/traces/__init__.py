"""Trace substrate: strace-like event records, containers, serialization,
the on-disk columnar store, and gap statistics."""

from repro.traces.events import (
    KERNEL_FLUSH_PC,
    AccessType,
    ExitEvent,
    ForkEvent,
    IOEvent,
    TraceEvent,
    event_sort_key,
    event_tuple,
)
from repro.traces.io_format import (
    iter_executions,
    read_application_trace,
    read_executions,
    write_application_trace,
    write_execution,
)
from repro.traces.stats import (
    Gap,
    TraceSummary,
    access_gaps,
    count_gaps_longer_than,
)
from repro.traces.store import (
    DEFAULT_CHUNK_ROWS,
    StoreBackedTrace,
    StoredExecution,
    StoreWriter,
    TraceStore,
    pack_jsonl,
    pack_trace,
)
from repro.traces.trace import (
    ApplicationTrace,
    ExecutionLike,
    ExecutionTrace,
    merge_events,
)

__all__ = [
    "AccessType",
    "ApplicationTrace",
    "DEFAULT_CHUNK_ROWS",
    "ExecutionLike",
    "ExecutionTrace",
    "ExitEvent",
    "ForkEvent",
    "Gap",
    "IOEvent",
    "KERNEL_FLUSH_PC",
    "StoreBackedTrace",
    "StoredExecution",
    "StoreWriter",
    "TraceEvent",
    "TraceStore",
    "TraceSummary",
    "access_gaps",
    "count_gaps_longer_than",
    "event_sort_key",
    "event_tuple",
    "iter_executions",
    "merge_events",
    "pack_jsonl",
    "pack_trace",
    "read_application_trace",
    "read_executions",
    "write_application_trace",
    "write_execution",
]
