"""Trace event records.

The paper collects traces with a modified ``strace`` that records, for
every I/O operation: the program counter of the library call that issued
it, the access type, the time, the file descriptor, and the file location
on disk — plus ``fork`` and ``exit`` events of the processes making up the
application.  These records are the exact schema here.

``blocks`` carries the 4 KB file blocks the operation touches (the "file
location on disk"), which is what the file-cache simulator needs; block
ids are globally unique integers (each file owns a region of the block
address space).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class AccessType(enum.Enum):
    """Kind of I/O operation, as recorded by the tracer."""

    READ = "read"
    #: Buffered write: dirties the cache, written back later.
    WRITE = "write"
    #: Synchronous write (fsync-style document saves): goes straight to
    #: the disk, leaving no dirty data behind.
    SYNC_WRITE = "sync_write"
    OPEN = "open"
    CLOSE = "close"
    #: Write-back of dirty cache data issued by the kernel flush daemon.
    FLUSH = "flush"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessType.{self.name}"


#: Pseudo program counter attributed to kernel write-back activity.
KERNEL_FLUSH_PC: int = 0xFFFF0000


@dataclass(frozen=True, slots=True)
class IOEvent:
    """One traced I/O operation.

    The touched file blocks are the contiguous range
    ``[block_start, block_start + block_count)``; real I/O is
    overwhelmingly sequential within one operation, and a range keeps the
    per-event footprint constant (full traces hold ~10^6 events).
    """

    time: float
    pid: int
    pc: int
    fd: int
    kind: AccessType
    inode: int
    block_start: int = 0
    block_count: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if not 0 <= self.pc < 2**32:
            raise ValueError("program counters are 32-bit addresses")
        if self.block_count < 0:
            raise ValueError("block count must be non-negative")

    def __reduce__(self):
        # Frozen-slots dataclasses pickle through a generic setstate that
        # re-introspects fields() per object; full traces hold ~10^6
        # events, so reconstruct positionally instead (several times
        # faster on both dump and load, validation still runs).
        return (
            IOEvent,
            (
                self.time, self.pid, self.pc, self.fd, self.kind,
                self.inode, self.block_start, self.block_count,
            ),
        )

    @property
    def blocks(self) -> range:
        """The touched block ids."""
        return range(self.block_start, self.block_start + self.block_count)

    @property
    def is_write(self) -> bool:
        """Whether the operation moves data toward the disk."""
        return self.kind in (
            AccessType.WRITE,
            AccessType.SYNC_WRITE,
            AccessType.FLUSH,
        )


@dataclass(frozen=True, slots=True)
class ForkEvent:
    """A process ``parent_pid`` forked ``pid`` at ``time``."""

    time: float
    pid: int
    parent_pid: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.pid == self.parent_pid:
            raise ValueError("a process cannot fork itself")

    def __reduce__(self):
        return (ForkEvent, (self.time, self.pid, self.parent_pid))


@dataclass(frozen=True, slots=True)
class ExitEvent:
    """Process ``pid`` exited at ``time``."""

    time: float
    pid: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")

    def __reduce__(self):
        return (ExitEvent, (self.time, self.pid))


TraceEvent = Union[IOEvent, ForkEvent, ExitEvent]


def event_tuple(event: TraceEvent) -> tuple:
    """The canonical value tuple of an event, used for content hashing.

    Both the artifact cache's :func:`repro.sim.artifact_cache.trace_fingerprint`
    and the trace store's streaming fingerprint hash these tuples, so the
    two provenance schemes stay comparable field-for-field.
    """
    if type(event) is IOEvent:
        return (
            "io", event.time, event.pid, event.pc, event.fd,
            event.kind.value, event.inode, event.block_start,
            event.block_count,
        )
    if type(event) is ForkEvent:
        return ("fork", event.time, event.pid, event.parent_pid)
    assert type(event) is ExitEvent
    return ("exit", event.time, event.pid)


def event_sort_key(event: TraceEvent) -> tuple[float, int]:
    """Stable ordering: by time, with forks before I/O before exits at the
    same instant so liveness brackets any simultaneous I/O."""
    if isinstance(event, ForkEvent):
        rank = 0
    elif isinstance(event, IOEvent):
        rank = 1
    else:
        rank = 2
    return (event.time, rank)
