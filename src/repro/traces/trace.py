"""Trace containers: one execution of an application, and an application's
whole trace history (many executions).

An :class:`ExecutionTrace` holds the time-ordered events of a single run
of an application — possibly many processes, delimited by fork/exit
events.  :class:`ApplicationTrace` bundles the successive executions of
one application (the paper traces e.g. 49 separate runs of mozilla), which
is the unit the prediction-table-reuse experiments operate on.

**Streaming protocol.**  Downstream consumers (the cache filter, the
simulation engine) do not require a materialized event list; they drive
executions through the :class:`ExecutionLike` protocol — metadata
attributes plus :meth:`~ExecutionTrace.iter_events` /
:meth:`~ExecutionTrace.liveness_events` — which
:class:`~repro.traces.store.StoredExecution` implements by decoding one
on-disk chunk window at a time.  :class:`ExecutionTrace` implements the
same protocol trivially over its in-memory list, so both paths share one
code base and produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.errors import TraceError
from repro.traces.events import (
    ExitEvent,
    ForkEvent,
    IOEvent,
    TraceEvent,
    event_sort_key,
)


@runtime_checkable
class ExecutionLike(Protocol):
    """What the filter and the engine need from one execution.

    Implemented in-memory by :class:`ExecutionTrace` and on-disk by
    :class:`~repro.traces.store.StoredExecution`.  ``iter_events`` must
    yield events in canonical order; ``liveness_events`` must return the
    (small) fork/exit subset, also in order.
    """

    application: str
    execution_index: int
    initial_pids: frozenset[int]

    @property
    def start_time(self) -> float: ...

    @property
    def end_time(self) -> float: ...

    def iter_events(self) -> Iterator[TraceEvent]: ...

    def liveness_events(self) -> list[TraceEvent]: ...

    def lifetimes(self) -> dict[int, tuple[float, float]]: ...


@dataclass(slots=True)
class ExecutionTrace:
    """Events of one execution (one launch-to-exit) of an application."""

    application: str
    execution_index: int
    events: list[TraceEvent] = field(default_factory=list)
    #: Pids alive at trace start (the root process(es) of the application).
    initial_pids: frozenset[int] = frozenset()

    def sorted(self) -> "ExecutionTrace":
        """A copy with events in canonical order."""
        return ExecutionTrace(
            application=self.application,
            execution_index=self.execution_index,
            events=sorted(self.events, key=event_sort_key),
            initial_pids=self.initial_pids,
        )

    def validate(self) -> None:
        """Raise :class:`TraceError` on ordering or liveness violations."""
        alive: set[int] = set(self.initial_pids)
        previous_key: tuple[float, int] | None = None
        for event in self.events:
            key = event_sort_key(event)
            if previous_key is not None and key < previous_key:
                raise TraceError(
                    f"{self.application}#{self.execution_index}: events out "
                    f"of order at t={event.time}"
                )
            previous_key = key
            if isinstance(event, ForkEvent):
                if event.parent_pid not in alive:
                    raise TraceError(
                        f"fork from dead/unknown pid {event.parent_pid}"
                    )
                if event.pid in alive:
                    raise TraceError(f"fork of already-alive pid {event.pid}")
                alive.add(event.pid)
            elif isinstance(event, ExitEvent):
                if event.pid not in alive:
                    raise TraceError(f"exit of dead/unknown pid {event.pid}")
                alive.discard(event.pid)
            else:
                if event.pid not in alive:
                    raise TraceError(
                        f"I/O from dead/unknown pid {event.pid} at "
                        f"t={event.time}"
                    )

    def iter_events(self) -> Iterator[TraceEvent]:
        """Iterate events in order (the streaming-protocol entry point)."""
        return iter(self.events)

    def liveness_events(self) -> list[TraceEvent]:
        """The fork/exit subset of the event stream, in order."""
        return [
            e for e in self.events if isinstance(e, (ForkEvent, ExitEvent))
        ]

    @property
    def event_count(self) -> int:
        """Number of events (uniform with stored executions)."""
        return len(self.events)

    @property
    def io_events(self) -> list[IOEvent]:
        """The I/O subset of the event stream, in order."""
        return [e for e in self.events if isinstance(e, IOEvent)]

    @property
    def pids(self) -> set[int]:
        """Every pid alive at any point of the execution."""
        pids = set(self.initial_pids)
        pids.update(e.pid for e in self.events if isinstance(e, ForkEvent))
        return pids

    @property
    def start_time(self) -> float:
        """Time of the first event (0.0 for an empty execution)."""
        return self.events[0].time if self.events else 0.0

    @property
    def end_time(self) -> float:
        """Time of the last event (0.0 for an empty execution)."""
        return self.events[-1].time if self.events else 0.0

    def per_process_io(self) -> dict[int, list[IOEvent]]:
        """I/O events grouped by pid, preserving order."""
        grouped: dict[int, list[IOEvent]] = {pid: [] for pid in self.pids}
        for event in self.io_events:
            grouped.setdefault(event.pid, []).append(event)
        return grouped

    def lifetimes(self) -> dict[int, tuple[float, float]]:
        """``pid -> (start, end)`` liveness interval of every process."""
        start: dict[int, float] = {
            pid: self.start_time for pid in self.initial_pids
        }
        end: dict[int, float] = {}
        for event in self.events:
            if isinstance(event, ForkEvent):
                start[event.pid] = event.time
            elif isinstance(event, ExitEvent):
                end[event.pid] = event.time
        return {
            pid: (begin, end.get(pid, self.end_time))
            for pid, begin in start.items()
        }


@dataclass(slots=True)
class ApplicationTrace:
    """All traced executions of one application, oldest first."""

    application: str
    executions: list[ExecutionTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        for execution in self.executions:
            if execution.application != self.application:
                raise TraceError(
                    f"execution of {execution.application!r} inside the "
                    f"trace of {self.application!r}"
                )

    def __iter__(self) -> Iterator[ExecutionTrace]:
        return iter(self.executions)

    def __len__(self) -> int:
        return len(self.executions)

    def append(self, execution: ExecutionTrace) -> None:
        """Add one execution; it must belong to this application."""
        if execution.application != self.application:
            raise TraceError(
                f"cannot add execution of {execution.application!r} to the "
                f"trace of {self.application!r}"
            )
        self.executions.append(execution)

    @property
    def total_io_count(self) -> int:
        """Total I/O events across all executions."""
        return sum(len(e.io_events) for e in self.executions)


def merge_events(streams: Iterable[Iterable[TraceEvent]]) -> list[TraceEvent]:
    """Merge several event streams into canonical order."""
    merged: list[TraceEvent] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=event_sort_key)
    return merged
