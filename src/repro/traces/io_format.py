"""Serialization of traces to a JSON-lines, strace-like text format.

One event per line.  The first line of an execution is a header record.
The format is stable and round-trips exactly, so generated workloads can
be stored, inspected, or exchanged like real ``strace`` captures::

    {"type": "header", "application": "mozilla", "execution": 0, "initial_pids": [100]}
    {"type": "fork", "t": 0.2, "pid": 101, "parent": 100}
    {"type": "io", "t": 0.31, "pid": 100, "pc": 134513712, "fd": 3,
     "kind": "read", "inode": 42, "blocks": [1024, 1025]}
    {"type": "exit", "t": 9.5, "pid": 101}
"""

from __future__ import annotations

import json
import warnings
from typing import IO, Iterable, Iterator

from repro import faults
from repro.errors import TraceFormatError
from repro.traces.events import (
    AccessType,
    ExitEvent,
    ForkEvent,
    IOEvent,
    TraceEvent,
)
from repro.traces.trace import ApplicationTrace, ExecutionTrace


def event_to_record(event: TraceEvent) -> dict:
    """Convert one event to its JSON-serializable record."""
    if isinstance(event, IOEvent):
        return {
            "type": "io",
            "t": event.time,
            "pid": event.pid,
            "pc": event.pc,
            "fd": event.fd,
            "kind": event.kind.value,
            "inode": event.inode,
            "block_start": event.block_start,
            "block_count": event.block_count,
        }
    if isinstance(event, ForkEvent):
        return {
            "type": "fork",
            "t": event.time,
            "pid": event.pid,
            "parent": event.parent_pid,
        }
    if isinstance(event, ExitEvent):
        return {"type": "exit", "t": event.time, "pid": event.pid}
    raise TraceFormatError(f"unknown event type {type(event).__name__}")


def record_to_event(record: dict) -> TraceEvent:
    """Convert one parsed record back into an event."""
    try:
        kind = record["type"]
        if kind == "io":
            return IOEvent(
                time=float(record["t"]),
                pid=int(record["pid"]),
                pc=int(record["pc"]),
                fd=int(record["fd"]),
                kind=AccessType(record["kind"]),
                inode=int(record["inode"]),
                block_start=int(record.get("block_start", 0)),
                block_count=int(record.get("block_count", 0)),
            )
        if kind == "fork":
            return ForkEvent(
                time=float(record["t"]),
                pid=int(record["pid"]),
                parent_pid=int(record["parent"]),
            )
        if kind == "exit":
            return ExitEvent(time=float(record["t"]), pid=int(record["pid"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed record {record!r}") from exc
    raise TraceFormatError(f"unknown record type {kind!r}")


def write_execution(execution: ExecutionTrace, stream: IO[str]) -> None:
    """Write one execution (header + events) to ``stream``."""
    header = {
        "type": "header",
        "application": execution.application,
        "execution": execution.execution_index,
        "initial_pids": sorted(execution.initial_pids),
    }
    stream.write(json.dumps(header) + "\n")
    for event in execution.events:
        stream.write(json.dumps(event_to_record(event)) + "\n")


def _parse_lines(lines: Iterable[str]) -> Iterator[dict]:
    plan = faults.active()
    iterator = iter(lines)
    number = 0
    for line in iterator:
        number += 1
        line = line.strip()
        if not line:
            continue
        if plan is not None:
            line = faults.corrupt_trace_line(plan, line)
        try:
            yield json.loads(line)
        except json.JSONDecodeError as exc:
            # A crash mid-write can only tear the *final* line of an
            # append-only stream.  If nothing but blank lines follows,
            # treat the tear like the store treats corruption — keep
            # what is intact, warn, stop — instead of failing the read.
            if not any(rest.strip() for rest in iterator):
                warnings.warn(
                    f"trace stream ends in a truncated line {number}; "
                    "ignoring the partial record (crash mid-write?)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return
            raise TraceFormatError(f"line {number}: invalid JSON") from exc


def iter_executions(stream: IO[str]) -> Iterator[ExecutionTrace]:
    """Stream back executions written by :func:`write_execution`.

    Yields each execution as soon as its last event has been read, so
    peak memory is one execution rather than the whole stream — this is
    the import path the trace-store packer uses.
    """
    current: ExecutionTrace | None = None
    for record in _parse_lines(stream):
        if record.get("type") == "header":
            if current is not None:
                yield current
            try:
                current = ExecutionTrace(
                    application=str(record["application"]),
                    execution_index=int(record["execution"]),
                    initial_pids=frozenset(
                        int(p) for p in record.get("initial_pids", ())
                    ),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceFormatError(
                    f"malformed header {record!r}"
                ) from exc
            continue
        if current is None:
            raise TraceFormatError("event record before any header")
        current.events.append(record_to_event(record))
    if current is not None:
        yield current


def read_executions(stream: IO[str]) -> list[ExecutionTrace]:
    """Read back every execution written by :func:`write_execution`."""
    return list(iter_executions(stream))


def write_application_trace(trace: ApplicationTrace, stream: IO[str]) -> None:
    """Serialize all executions of an application."""
    for execution in trace.executions:
        write_execution(execution, stream)


def read_application_trace(stream: IO[str]) -> ApplicationTrace:
    """Deserialize an application trace; all executions must belong to the
    same application."""
    executions = read_executions(stream)
    if not executions:
        raise TraceFormatError("empty trace stream")
    return ApplicationTrace(
        application=executions[0].application, executions=executions
    )
