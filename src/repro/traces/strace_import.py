"""Importing real ``strace`` output.

The paper collected its traces with a modified ``strace`` recording the
PC, access type, time, file descriptor, and file location of every I/O,
plus forks and exits.  Stock ``strace`` gets remarkably close:

    strace -f -ttt -i -e trace=read,write,openat,open,close,fsync,
                        fdatasync,fork,clone,exit_group  <app>

produces lines like::

    12345 1370282478.807804 [00007f2728f3d600] read(3, "..."..., 4096) = 4096
    12345 1370282478.809000 [00007f2728f3d6aa] openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 4
    12345 1370282478.901100 [00007f2728f3d700] clone(child_stack=NULL, ...) = 12346
    12346 1370282479.100000 +++ exited with 0 +++

:func:`parse_strace` turns such text into an
:class:`~repro.traces.trace.ExecutionTrace`:

* the bracketed instruction pointer becomes the event PC (folded to 32
  bits, matching the paper's 4-byte signatures);
* timestamps are rebased so the trace starts at zero;
* file "locations" are synthesized by tracking each (pid, fd) to the
  path it was opened on: every path gets a stable inode and a block
  cursor advanced by the bytes each syscall moves (the cache simulator
  only needs identity and extent, not true LBAs);
* ``fork``/``clone``/``vfork`` returns create :class:`ForkEvent`s, exit
  markers create :class:`ExitEvent`s.

Lines that don't match (signal deliveries, unfinished/resumed pairs,
unsupported syscalls) are skipped and counted, never fatal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import IO, Iterable, Optional, Union

from repro.errors import TraceError, TraceFormatError
from repro.traces.events import AccessType, ExitEvent, ForkEvent, IOEvent
from repro.traces.trace import ExecutionTrace
from repro.workloads.rng import stable_seed

#: Syscall name → access type.
_SYSCALL_KINDS: dict[str, AccessType] = {
    "read": AccessType.READ,
    "pread": AccessType.READ,
    "pread64": AccessType.READ,
    "readv": AccessType.READ,
    "write": AccessType.WRITE,
    "pwrite": AccessType.WRITE,
    "pwrite64": AccessType.WRITE,
    "writev": AccessType.WRITE,
    "fsync": AccessType.SYNC_WRITE,
    "fdatasync": AccessType.SYNC_WRITE,
    "open": AccessType.OPEN,
    "openat": AccessType.OPEN,
    "close": AccessType.CLOSE,
}

_FORK_CALLS = ("fork", "vfork", "clone", "clone3")

_BLOCK_SIZE = 4096

# 12345 1370282478.807804 [00007f2728f3d600] read(3, ...) = 4096
_LINE = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?"
    r"(?P<time>\d+\.\d+)\s+"
    r"(?:\[\s*(?P<pc>[0-9a-fA-F]+)\]\s+)?"
    r"(?P<call>\w+)\((?P<args>.*?)\)\s*=\s*(?P<result>-?\d+|\?)"
)

_EXITED = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?(?P<time>\d+\.\d+)\s+\+\+\+ exited"
)

_QUOTED_PATH = re.compile(r'"([^"]*)"')


@dataclass(slots=True)
class ImportStats:
    """What the importer did with the input."""

    io_events: int = 0
    forks: int = 0
    exits: int = 0
    skipped_lines: int = 0
    failed_syscalls: int = 0


@dataclass(slots=True)
class _FdTable:
    """Tracks (pid, fd) → logical file, with per-file block cursors."""

    application: str
    paths: dict[tuple[int, int], str] = field(default_factory=dict)
    cursors: dict[str, int] = field(default_factory=dict)

    def open(self, pid: int, fd: int, path: str) -> None:
        self.paths[(pid, fd)] = path

    def close(self, pid: int, fd: int) -> None:
        self.paths.pop((pid, fd), None)

    def locate(self, pid: int, fd: int, nbytes: int) -> tuple[int, int, int]:
        """(inode, block_start, block_count) for an access via ``fd``."""
        path = self.paths.get((pid, fd), f"<fd:{fd}>")
        inode = stable_seed("strace-inode", self.application, path) & 0xFFFFF
        blocks = max(1, -(-max(nbytes, 0) // _BLOCK_SIZE))
        cursor = self.cursors.get(path, 0)
        self.cursors[path] = cursor + blocks
        base = inode << 28
        return inode, base + cursor, blocks


def _fold_pc(raw: Optional[str]) -> int:
    if raw is None:
        return 0x10
    value = int(raw, 16)
    # 64-bit addresses fold into the paper's 4-byte signature space.
    return ((value & 0xFFFFFFFF) ^ (value >> 32)) & 0xFFFFFFFF or 0x10


def parse_strace(
    source: Union[str, IO[str], Iterable[str]],
    *,
    application: str = "imported",
    execution_index: int = 0,
    root_pid: Optional[int] = None,
) -> tuple[ExecutionTrace, ImportStats]:
    """Parse strace text into an execution trace.

    ``root_pid`` names the initially-alive process; by default the pid
    of the first parsed line (or 1 for single-process traces without
    pid columns) is used.
    """
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    elif hasattr(source, "read"):
        lines = source  # file-like: iterate lines
    else:
        lines = source

    stats = ImportStats()
    fds = _FdTable(application=application)
    events: list = []
    #: Pids that appeared without a fork line (already running when the
    #: trace started): they become the execution's initial pids.
    roots: set[int] = set()
    #: Pids created by an observed fork/clone.
    forked: set[int] = set()
    #: Pids whose exit has been recorded; later events from them (trace
    #: interleaving artifacts) are dropped.
    exited: set[int] = set()
    first_time: Optional[float] = None
    last_time = 0.0
    inferred_root: Optional[int] = root_pid

    def ensure_known(pid: int) -> bool:
        """Register ``pid``; False when it already exited (drop line).

        Pid 0 never appears in real strace output; such lines are noise.
        """
        if pid <= 0 or pid in exited:
            stats.skipped_lines += 1
            return False
        if pid not in forked:
            roots.add(pid)
        return True

    def rebase(raw_time: str) -> float:
        # ``strace -f`` flushes per-process buffers independently, so
        # timestamps can regress slightly across pids; clamping to a
        # monotone clock keeps line order and event order consistent
        # (liveness would otherwise break, e.g. an I/O sorting after
        # its process's exit).
        nonlocal first_time, last_time
        value = float(raw_time)
        if first_time is None:
            first_time = value
        value = max(0.0, value - first_time)
        last_time = max(last_time, value)
        return last_time

    for line in lines:
        line = line.strip()
        if not line:
            continue
        exit_match = _EXITED.match(line)
        if exit_match:
            pid = int(exit_match.group("pid") or inferred_root or 1)
            if inferred_root is None and pid > 0:
                inferred_root = pid
            if not ensure_known(pid):
                continue
            events.append(
                ExitEvent(time=rebase(exit_match.group("time")), pid=pid)
            )
            exited.add(pid)
            stats.exits += 1
            continue
        match = _LINE.match(line)
        if not match:
            stats.skipped_lines += 1
            continue
        pid = int(match.group("pid") or inferred_root or 1)
        if inferred_root is None and pid > 0:
            inferred_root = pid
        if not ensure_known(pid):
            continue
        time = rebase(match.group("time"))
        call = match.group("call")
        result_text = match.group("result")
        result = None if result_text == "?" else int(result_text)

        if call in _FORK_CALLS:
            if (
                result is not None
                and result > 0
                and result != pid
                and result not in forked
                and result not in roots
                and result not in exited
            ):
                events.append(
                    ForkEvent(time=time, pid=result, parent_pid=pid)
                )
                forked.add(result)
                stats.forks += 1
            else:
                stats.failed_syscalls += 1
            continue

        kind = _SYSCALL_KINDS.get(call)
        if kind is None:
            stats.skipped_lines += 1
            continue
        if result is not None and result < 0:
            stats.failed_syscalls += 1
            continue

        args = match.group("args")
        if kind == AccessType.OPEN:
            path_match = _QUOTED_PATH.search(args)
            path = path_match.group(1) if path_match else "<anonymous>"
            if result is not None:
                fds.open(pid, result, path)
            inode = stable_seed("strace-inode", application, path) & 0xFFFFF
            events.append(
                IOEvent(
                    time=time, pid=pid, pc=_fold_pc(match.group("pc")),
                    fd=result if result is not None else -1, kind=kind,
                    inode=inode, block_start=inode << 28, block_count=1,
                )
            )
            stats.io_events += 1
            continue

        fd = _leading_int(args)
        if kind == AccessType.CLOSE:
            if fd is not None:
                fds.close(pid, fd)
            continue
        if fd is None:
            stats.skipped_lines += 1
            continue
        nbytes = result if result is not None else _BLOCK_SIZE
        inode, block_start, block_count = fds.locate(pid, fd, nbytes)
        events.append(
            IOEvent(
                time=time, pid=pid, pc=_fold_pc(match.group("pc")),
                fd=fd, kind=kind, inode=inode,
                block_start=block_start, block_count=block_count,
            )
        )
        stats.io_events += 1

    if inferred_root is None or not (roots | forked):
        raise TraceFormatError("no parseable strace lines in input")
    # Any processes still alive get synthetic exits at the trace end so
    # the execution validates.
    end = max((e.time for e in events), default=0.0)
    for pid in sorted((roots | forked) - exited):
        events.append(ExitEvent(time=end + 0.001, pid=pid))
        stats.exits += 1

    execution = ExecutionTrace(
        application=application,
        execution_index=execution_index,
        events=events,
        initial_pids=frozenset(roots),
    ).sorted()
    try:
        execution.validate()
    except TraceFormatError:
        raise
    except TraceError as error:
        # Garbled input can still assemble into a contradictory trace
        # (an exit for a pid the importer never saw alive, say); report
        # it as a format problem rather than crashing downstream.
        raise TraceFormatError(f"inconsistent strace input: {error}") from error
    return execution, stats


def _leading_int(args: str) -> Optional[int]:
    """First integer argument of a syscall argument list."""
    match = re.match(r"\s*(-?\d+)", args)
    return int(match.group(1)) if match else None
