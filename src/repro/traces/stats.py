"""Gap extraction and raw trace statistics.

This is the single home of the idle-gap arithmetic the rest of the
library builds on: given the times of consecutive disk accesses (each
occupying the disk for a service time), the *gaps* are the intervals the
disk spends with no request.  The taxonomy the paper uses on top of the
gaps (wait-window / short / long a.k.a. shutdown opportunity) lives in
:mod:`repro.sim.idle_periods`, which classifies the gaps produced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.units import EPSILON


@dataclass(frozen=True, slots=True)
class Gap:
    """A request-free disk interval ``[start, end]``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start - EPSILON:
            raise ValueError(f"gap ends ({self.end}) before it starts ({self.start})")

    @property
    def length(self) -> float:
        """Gap duration in seconds (never negative)."""
        return max(0.0, self.end - self.start)


def access_gaps(
    times: Sequence[float],
    service_time: float,
    *,
    stream_end: float | None = None,
) -> list[Gap]:
    """Gaps between consecutive accesses.

    ``times`` are access arrival times (ascending); each access holds the
    disk busy for ``service_time`` seconds, with back-to-back arrivals
    serialized.  When ``stream_end`` is given a trailing gap up to it is
    included (the idle tail after the last access).
    """
    if service_time < 0:
        raise ValueError("service time must be non-negative")
    gaps: list[Gap] = []
    busy_until: float | None = None
    for time in times:
        if busy_until is not None:
            if time < busy_until - EPSILON:
                busy_until += service_time  # serialized request
                continue
            gaps.append(Gap(start=busy_until, end=max(time, busy_until)))
        busy_until = time + service_time
    if stream_end is not None and busy_until is not None:
        if stream_end > busy_until + EPSILON:
            gaps.append(Gap(start=busy_until, end=stream_end))
    return gaps


def count_gaps_longer_than(gaps: Iterable[Gap], threshold: float) -> int:
    """Number of gaps strictly longer than ``threshold`` seconds."""
    return sum(1 for gap in gaps if gap.length > threshold)


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Raw (pre-cache) statistics of one application's trace history."""

    application: str
    executions: int
    total_io_events: int
    total_processes: int

    @staticmethod
    def of(trace) -> "TraceSummary":
        """Summarize an :class:`~repro.traces.trace.ApplicationTrace`."""
        return TraceSummary(
            application=trace.application,
            executions=len(trace.executions),
            total_io_events=trace.total_io_count,
            total_processes=sum(len(e.pids) for e in trace.executions),
        )
