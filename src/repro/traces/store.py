"""On-disk columnar trace store with chunked, memory-bounded streaming.

The in-memory trace containers (:mod:`repro.traces.trace`) materialize
every event of every execution before the simulation sees any of them —
fine for the paper's six desktop applications (~10^6 events), hopeless
for server-class streams.  This module stores traces as **flat per-field
column files** read back through NumPy memory maps, so a simulation
touches one *chunk window* of rows at a time and peak memory is bounded
by the chunk size instead of the trace size.

Layout of a store directory::

    store/
      manifest.json          # schema, chunk offsets, provenance
      columns/
        etype.bin  time.bin  pid.bin  pc.bin  fd.bin
        kind.bin   inode.bin block_start.bin block_count.bin aux.bin

Every event is one row across all columns; ``etype`` discriminates I/O
(0) from fork (1) and exit (2) rows, ``kind`` carries the
:class:`~repro.traces.events.AccessType` code of I/O rows, and ``aux``
carries the parent pid of fork rows.  The JSON manifest records the
column schema, the chunk row offsets, each execution's row range plus
its (tiny) fork/exit event list, and a **provenance fingerprint** per
application: a BLAKE2b digest over the same canonical event tuples the
artifact cache hashes (:func:`repro.traces.events.event_tuple`), so
store fingerprints key :func:`repro.sim.artifact_cache.filter_key`
entries and resilient-run checkpoints exactly like in-memory
fingerprints do.

Reading is lazy end to end: :class:`TraceStore` memory-maps each column
once, :class:`StoreBackedTrace` holds only per-execution metadata, and
:class:`StoredExecution` decodes events one chunk at a time through the
:class:`~repro.traces.trace.ExecutionLike` streaming protocol.  The
decoded events are **bit-identical** to the events that were packed:
times round-trip as IEEE-754 doubles, all other fields are integers or
enum codes.

Corruption handling mirrors the artifact cache: a missing, truncated, or
undecodable store file is *quarantined* — renamed aside with a
``.corrupt`` suffix so the evidence survives — and surfaces as a
:class:`~repro.errors.TraceStoreError` with the quarantine path in the
message.  The :mod:`repro.faults` site ``cache.corrupt-read`` fires on
store reads too, so chaos plans can exercise this path deliberately.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional

import numpy as np

from repro import faults
from repro.errors import TraceStoreError
from repro.traces.events import (
    AccessType,
    ExitEvent,
    ForkEvent,
    IOEvent,
    TraceEvent,
    event_tuple,
)
from repro.traces.trace import ApplicationTrace, ExecutionTrace

#: Bump whenever the column layout or the manifest schema changes; old
#: stores are rejected with a clear error instead of being misread.
STORE_VERSION = 1

#: Default rows per chunk (~4.2 MB of columns at 66 bytes/row).
DEFAULT_CHUNK_ROWS = 65536

MANIFEST_NAME = "manifest.json"
_COLUMN_DIR = "columns"

#: Column schema, in row-encoding order.  ``etype``: 0 = I/O, 1 = fork,
#: 2 = exit.  ``aux`` is the parent pid of fork rows, 0 otherwise.
COLUMNS: tuple[tuple[str, str], ...] = (
    ("etype", "u1"),
    ("time", "<f8"),
    ("pid", "<i8"),
    ("pc", "<i8"),
    ("fd", "<i8"),
    ("kind", "u1"),
    ("inode", "<i8"),
    ("block_start", "<i8"),
    ("block_count", "<i8"),
    ("aux", "<i8"),
)

#: AccessType <-> compact code, in enum-definition order (versioned by
#: :data:`STORE_VERSION` and self-described in the manifest).
_KIND_VALUES: tuple[str, ...] = tuple(kind.value for kind in AccessType)
_KIND_CODE = {kind: code for code, kind in enumerate(AccessType)}
_KIND_BY_CODE: tuple[AccessType, ...] = tuple(AccessType)

#: Pickle protocol for fingerprint hashing (same as the artifact cache).
_PICKLE_PROTOCOL = 4

#: Bytes per row when the columns are laid end to end (wire encoding).
EVENT_ROW_BYTES = sum(np.dtype(spec).itemsize for _, spec in COLUMNS)


def _decode_column_lists(
    etypes, times, pids, pcs, fds, kinds, inodes,
    block_starts, block_counts, auxes, row_base: int,
) -> list[TraceEvent]:
    """Rebuild event objects from plain column lists (one row window).

    Shared by :meth:`TraceStore.decode_rows` and the wire codec below;
    ``row_base`` only labels the error message for bad type codes.
    """
    by_code = _KIND_BY_CODE
    new = object.__new__
    put = object.__setattr__
    events: list[TraceEvent] = []
    append = events.append
    for i in range(len(etypes)):
        code = etypes[i]
        if code == 0:
            event = new(IOEvent)
            put(event, "time", times[i])
            put(event, "pid", pids[i])
            put(event, "pc", pcs[i])
            put(event, "fd", fds[i])
            put(event, "kind", by_code[kinds[i]])
            put(event, "inode", inodes[i])
            put(event, "block_start", block_starts[i])
            put(event, "block_count", block_counts[i])
        elif code == 1:
            event = new(ForkEvent)
            put(event, "time", times[i])
            put(event, "pid", pids[i])
            put(event, "parent_pid", auxes[i])
        elif code == 2:
            event = new(ExitEvent)
            put(event, "time", times[i])
            put(event, "pid", pids[i])
        else:
            raise TraceStoreError(
                f"row {row_base + i}: unknown event type code {code!r}"
            )
        append(event)
    return events


def encode_event_rows(events: Iterable[TraceEvent]) -> bytes:
    """Serialize events as columnar rows (the store's layout, end to end).

    The payload is every column of :data:`COLUMNS`, in order, each as a
    packed array of one value per event — the same bytes a store chunk
    holds, concatenated instead of split across files.  This is the
    ``ROWS`` frame body of the serve protocol (:mod:`repro.serve`):
    :data:`EVENT_ROW_BYTES` per event, row count implied by the length.
    """
    columns: dict[str, list] = {name: [] for name, _ in COLUMNS}
    for event in events:
        if isinstance(event, IOEvent):
            row = (0, event.time, event.pid, event.pc, event.fd,
                   _KIND_CODE[event.kind], event.inode,
                   event.block_start, event.block_count, 0)
        elif isinstance(event, ForkEvent):
            row = (1, event.time, event.pid, 0, 0, 0, 0, 0, 0,
                   event.parent_pid)
        elif isinstance(event, ExitEvent):
            row = (2, event.time, event.pid, 0, 0, 0, 0, 0, 0, 0)
        else:
            raise TraceStoreError(
                f"unknown event type {type(event).__name__}"
            )
        for (name, _), value in zip(COLUMNS, row):
            columns[name].append(value)
    parts = [
        np.asarray(columns[name], dtype=np.dtype(spec)).tobytes()
        for name, spec in COLUMNS
    ]
    return b"".join(parts)


def decode_event_rows(payload: bytes) -> list[TraceEvent]:
    """Inverse of :func:`encode_event_rows` (bit-identical round trip).

    Raises :class:`TraceStoreError` on any length that does not sit on
    the row grid — a truncated frame can never decode to a shorter
    event list by accident.
    """
    if len(payload) % EVENT_ROW_BYTES:
        raise TraceStoreError(
            f"row payload of {len(payload)} byte(s) is not a multiple "
            f"of the {EVENT_ROW_BYTES}-byte row size"
        )
    count = len(payload) // EVENT_ROW_BYTES
    lists = []
    offset = 0
    for _, spec in COLUMNS:
        dtype = np.dtype(spec)
        width = count * dtype.itemsize
        lists.append(
            np.frombuffer(payload, dtype=dtype, count=count,
                          offset=offset).tolist()
        )
        offset += width
    return _decode_column_lists(*lists, 0)


def _quarantine(path: Path) -> Path:
    """Rename a corrupt store file aside (``<file>.corrupt``).

    Keeps the evidence for post-mortem inspection, exactly like the
    artifact cache does; falls back to leaving the file in place when
    the rename itself fails.
    """
    aside = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, aside)
        return aside
    except OSError:
        return path


class StoreWriter:
    """Append-only builder of a trace store directory.

    Executions are written one at a time (``write_execution``) and
    buffered into fixed-size row chunks that are appended to the column
    files as soon as they fill, so peak memory is one execution plus one
    chunk buffer — never the whole trace.  ``close()`` (or exiting the
    context manager) flushes the final partial chunk and publishes the
    manifest atomically; a store without a manifest is unreadable, so a
    killed writer never leaves a half-valid store behind.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if chunk_rows <= 0:
            raise TraceStoreError("chunk_rows must be positive")
        self.path = Path(path)
        self.chunk_rows = int(chunk_rows)
        if (self.path / MANIFEST_NAME).exists():
            raise TraceStoreError(
                f"refusing to overwrite existing trace store at {self.path}"
            )
        (self.path / _COLUMN_DIR).mkdir(parents=True, exist_ok=True)
        self._files = {
            name: open(self.path / _COLUMN_DIR / f"{name}.bin", "wb")
            for name, _ in COLUMNS
        }
        self._buffers: dict[str, list] = {name: [] for name, _ in COLUMNS}
        self._rows = 0
        self._chunks: list[list[int]] = []
        #: application -> (digest, manifest entry) accumulated so far.
        self._apps: dict[str, dict] = {}
        self._digests: dict[str, "hashlib._Hash"] = {}
        self._closed = False

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # do not publish a manifest for an aborted pack
            self.abort()

    def _app_state(self, application: str) -> dict:
        entry = self._apps.get(application)
        if entry is None:
            entry = {
                "fingerprint": None,
                "io_events": 0,
                "executions": [],
            }
            self._apps[application] = entry
            digest = hashlib.blake2b(digest_size=20)
            digest.update(
                f"store:{STORE_VERSION}:{application}".encode("utf-8")
            )
            self._digests[application] = digest
        return entry

    def write_execution(self, execution) -> None:
        """Append one execution (any :class:`ExecutionLike`) to the store.

        Events are consumed through ``iter_events()`` — an in-memory
        :class:`~repro.traces.trace.ExecutionTrace` and a
        :class:`StoredExecution` being re-packed both work — and must
        already be in canonical order.
        """
        if self._closed:
            raise TraceStoreError("writer is closed")
        application = execution.application
        entry = self._app_state(application)
        buffers = self._buffers
        etype = buffers["etype"]
        time_col = buffers["time"]
        pid_col = buffers["pid"]
        pc_col = buffers["pc"]
        fd_col = buffers["fd"]
        kind_col = buffers["kind"]
        inode_col = buffers["inode"]
        bs_col = buffers["block_start"]
        bc_col = buffers["block_count"]
        aux_col = buffers["aux"]

        row_start = self._rows
        rows = 0
        io_rows = 0
        liveness: list[list] = []
        tuples: list[tuple] = []
        start_time = 0.0
        end_time = 0.0
        for event in execution.iter_events():
            if rows == 0:
                start_time = event.time
            end_time = event.time
            tuples.append(event_tuple(event))
            if isinstance(event, IOEvent):
                etype.append(0)
                time_col.append(event.time)
                pid_col.append(event.pid)
                pc_col.append(event.pc)
                fd_col.append(event.fd)
                kind_col.append(_KIND_CODE[event.kind])
                inode_col.append(event.inode)
                bs_col.append(event.block_start)
                bc_col.append(event.block_count)
                aux_col.append(0)
                io_rows += 1
            elif isinstance(event, ForkEvent):
                etype.append(1)
                time_col.append(event.time)
                pid_col.append(event.pid)
                pc_col.append(0)
                fd_col.append(0)
                kind_col.append(0)
                inode_col.append(0)
                bs_col.append(0)
                bc_col.append(0)
                aux_col.append(event.parent_pid)
                liveness.append(["fork", event.time, event.pid,
                                 event.parent_pid])
            elif isinstance(event, ExitEvent):
                etype.append(2)
                time_col.append(event.time)
                pid_col.append(event.pid)
                pc_col.append(0)
                fd_col.append(0)
                kind_col.append(0)
                inode_col.append(0)
                bs_col.append(0)
                bc_col.append(0)
                aux_col.append(0)
                liveness.append(["exit", event.time, event.pid])
            else:
                raise TraceStoreError(
                    f"unknown event type {type(event).__name__}"
                )
            rows += 1
            self._rows += 1
            if len(etype) >= self.chunk_rows:
                self._flush_chunks()

        initial = sorted(execution.initial_pids)
        header = (execution.execution_index, tuple(initial), rows)
        digest = self._digests[application]
        digest.update(pickle.dumps((header, tuples), _PICKLE_PROTOCOL))
        entry["io_events"] += io_rows
        entry["executions"].append({
            "index": execution.execution_index,
            "row_start": row_start,
            "rows": rows,
            "io_rows": io_rows,
            "initial_pids": initial,
            "start_time": start_time,
            "end_time": end_time,
            "liveness": liveness,
        })

    def _flush_chunks(self) -> None:
        """Write every full chunk currently buffered to the column files."""
        while len(self._buffers["etype"]) >= self.chunk_rows:
            self._flush_rows(self.chunk_rows)

    def _flush_rows(self, count: int) -> None:
        for name, dtype in COLUMNS:
            buffer = self._buffers[name]
            block = np.asarray(buffer[:count], dtype=np.dtype(dtype))
            self._files[name].write(block.tobytes())
            del buffer[:count]
        start = 0 if not self._chunks else self._chunks[-1][1]
        self._chunks.append([start, start + count])

    def abort(self) -> None:
        """Close file handles without publishing a manifest."""
        if self._closed:
            return
        self._closed = True
        for handle in self._files.values():
            handle.close()

    def close(self) -> Path:
        """Flush the final chunk and publish ``manifest.json`` atomically.

        Returns the manifest path.  The manifest is written to a private
        temporary file and renamed into place, so readers only ever see
        a complete store.
        """
        if self._closed:
            raise TraceStoreError("writer is closed")
        remainder = len(self._buffers["etype"])
        if remainder:
            self._flush_rows(remainder)
        self._closed = True
        for handle in self._files.values():
            handle.flush()
            handle.close()
        store_digest = hashlib.blake2b(digest_size=20)
        store_digest.update(f"store-manifest:{STORE_VERSION}".encode("utf-8"))
        for application, entry in self._apps.items():
            entry["fingerprint"] = self._digests[application].hexdigest()
            store_digest.update(
                f"{application}:{entry['fingerprint']}".encode("utf-8")
            )
        manifest = {
            "format": "repro-trace-store",
            "version": STORE_VERSION,
            "chunk_rows": self.chunk_rows,
            "rows": self._rows,
            "chunks": self._chunks,
            "columns": [list(column) for column in COLUMNS],
            "kind_codes": list(_KIND_VALUES),
            "fingerprint": store_digest.hexdigest(),
            "applications": self._apps,
        }
        target = self.path / MANIFEST_NAME
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path, prefix=".manifest-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(manifest, stream)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target


class StoredExecution:
    """One execution of a store-backed trace (metadata only, lazy events).

    Implements the :class:`~repro.traces.trace.ExecutionLike` streaming
    protocol: :meth:`iter_events` decodes one chunk window of rows at a
    time from the memory-mapped columns, and :meth:`liveness_events`
    returns the fork/exit subset straight from the manifest without
    touching the columns at all.
    """

    __slots__ = (
        "_store", "application", "execution_index", "initial_pids",
        "start_time", "end_time", "event_count", "io_event_count",
        "row_start", "_liveness_raw", "_liveness",
    )

    def __init__(self, store: "TraceStore", application: str, meta: dict):
        self._store = store
        self.application = application
        self.execution_index = int(meta["index"])
        self.initial_pids = frozenset(
            int(p) for p in meta.get("initial_pids", ())
        )
        self.start_time = float(meta["start_time"])
        self.end_time = float(meta["end_time"])
        self.event_count = int(meta["rows"])
        self.io_event_count = int(meta["io_rows"])
        self.row_start = int(meta["row_start"])
        self._liveness_raw = meta.get("liveness", [])
        self._liveness: Optional[list[TraceEvent]] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoredExecution({self.application!r}, "
            f"#{self.execution_index}, {self.event_count} events)"
        )

    def liveness_events(self) -> list[TraceEvent]:
        """Fork/exit events, decoded from the manifest (memoized)."""
        if self._liveness is None:
            events: list[TraceEvent] = []
            for record in self._liveness_raw:
                if record[0] == "fork":
                    events.append(ForkEvent(
                        time=record[1], pid=int(record[2]),
                        parent_pid=int(record[3]),
                    ))
                else:
                    events.append(ExitEvent(
                        time=record[1], pid=int(record[2])
                    ))
            self._liveness = events
        return self._liveness

    def chunk_windows(self) -> list[tuple[int, int]]:
        """This execution's row range clipped to the store's chunk grid."""
        return self._store.windows_for(
            self.row_start, self.row_start + self.event_count
        )

    def iter_event_chunks(self) -> Iterator[list[TraceEvent]]:
        """Yield events one chunk window at a time (the bounded path)."""
        for start, stop in self.chunk_windows():
            yield self._store.decode_rows(start, stop)

    def iter_column_chunks(self) -> Iterator[dict[str, np.ndarray]]:
        """Yield zero-copy column views of this execution's rows.

        One mapping per chunk window, each value a slice of the store's
        memory-mapped column array — no event objects are materialized
        and no bytes are copied.  The page-cache filter's store-backed
        fast path (:func:`repro.cache.filter.filter_execution`) consumes
        these directly, which is what lets a columnar replay tape be
        built from a store without per-chunk event decode.  Memory stays
        bounded by the chunk grid exactly like :meth:`iter_event_chunks`.
        """
        cols = self._store.columns()
        for start, stop in self.chunk_windows():
            yield {name: col[start:stop] for name, col in cols.items()}

    def iter_events(self) -> Iterator[TraceEvent]:
        """Iterate every event in canonical order, chunk by chunk."""
        for chunk in self.iter_event_chunks():
            yield from chunk

    @property
    def events(self) -> list[TraceEvent]:
        """The fully materialized event list.

        Provided for interoperability with list-oriented utilities;
        prefer :meth:`iter_events`, which does not defeat the store's
        memory bound.
        """
        return list(self.iter_events())

    @property
    def pids(self) -> set[int]:
        """Every pid alive at any point of the execution."""
        pids = set(self.initial_pids)
        pids.update(
            e.pid for e in self.liveness_events() if isinstance(e, ForkEvent)
        )
        return pids

    def lifetimes(self) -> dict[int, tuple[float, float]]:
        """``pid -> (start, end)``, identical to the in-memory container."""
        start: dict[int, float] = {
            pid: self.start_time for pid in self.initial_pids
        }
        end: dict[int, float] = {}
        for event in self.liveness_events():
            if isinstance(event, ForkEvent):
                start[event.pid] = event.time
            else:
                end[event.pid] = event.time
        return {
            pid: (begin, end.get(pid, self.end_time))
            for pid, begin in start.items()
        }

    def materialize(self) -> ExecutionTrace:
        """An in-memory :class:`ExecutionTrace` with identical events."""
        return ExecutionTrace(
            application=self.application,
            execution_index=self.execution_index,
            events=list(self.iter_events()),
            initial_pids=self.initial_pids,
        )


def _open_store_trace(path: str, application: str) -> "StoreBackedTrace":
    """Unpickling hook: reopen a store-backed trace from its path."""
    return TraceStore(path).trace(application)


class StoreBackedTrace:
    """A lazily-loading stand-in for :class:`ApplicationTrace`.

    Iterating yields :class:`StoredExecution` objects whose events decode
    chunk by chunk on demand.  The ``streaming`` marker tells the
    experiment runner to filter executions one at a time instead of
    memoizing the whole application, and ``fingerprint`` carries the
    manifest's provenance digest so artifact-cache keys and resilient
    checkpoints skip the per-event hashing pass.

    Pickles as ``(store path, application)`` — a few dozen bytes — so
    shipping a suite across process boundaries costs nothing.
    """

    #: Marks this trace as chunk-streaming for the experiment runner.
    streaming = True

    def __init__(self, store: "TraceStore", application: str) -> None:
        self._store = store
        self.application = application
        entry = store.application_entry(application)
        self.fingerprint: str = entry["fingerprint"]
        self.executions: list[StoredExecution] = [
            StoredExecution(store, application, meta)
            for meta in entry["executions"]
        ]
        self._io_events = int(entry["io_events"])

    def __iter__(self) -> Iterator[StoredExecution]:
        return iter(self.executions)

    def __len__(self) -> int:
        return len(self.executions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreBackedTrace({self.application!r}, "
            f"{len(self.executions)} executions, {self._io_events} I/O)"
        )

    def __reduce__(self):
        return (_open_store_trace, (str(self._store.path), self.application))

    @property
    def total_io_count(self) -> int:
        """Total I/O events across executions (from the manifest)."""
        return self._io_events

    @property
    def store(self) -> "TraceStore":
        """The owning store."""
        return self._store

    def materialize(self) -> ApplicationTrace:
        """The fully in-memory :class:`ApplicationTrace` equivalent."""
        return ApplicationTrace(
            application=self.application,
            executions=[e.materialize() for e in self.executions],
        )


class TraceStore:
    """Reader over a packed trace store directory.

    Columns are memory-mapped lazily on first touch and validated
    against the manifest's row count; a missing or truncated column file
    is quarantined and reported as a :class:`TraceStoreError`.  All
    decoding goes through :meth:`decode_rows`, which materializes one
    row window at a time.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except FileNotFoundError:
            raise TraceStoreError(
                f"{self.path} is not a trace store (no {MANIFEST_NAME}; "
                "pack one with `repro trace pack`)"
            ) from None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            aside = _quarantine(manifest_path)
            raise TraceStoreError(
                f"unreadable store manifest {manifest_path} "
                f"(quarantined to {aside}): {exc}"
            ) from exc
        self._manifest = manifest
        if manifest.get("format") != "repro-trace-store":
            raise TraceStoreError(
                f"{manifest_path} is not a trace-store manifest"
            )
        if manifest.get("version") != STORE_VERSION:
            raise TraceStoreError(
                f"store version {manifest.get('version')!r} is not "
                f"supported (this build reads version {STORE_VERSION})"
            )
        columns = [tuple(column) for column in manifest.get("columns", ())]
        if columns != list(COLUMNS):
            raise TraceStoreError(
                f"store column schema {columns!r} does not match this "
                "build's layout"
            )
        try:
            self.rows = int(manifest["rows"])
            self.chunk_rows = int(manifest["chunk_rows"])
            self.chunks = [
                (int(a), int(b)) for a, b in manifest.get("chunks", ())
            ]
            self.fingerprint = str(manifest["fingerprint"])
            self._applications: dict[str, dict] = manifest["applications"]
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceStoreError(
                f"malformed store manifest {manifest_path}: {exc!r}"
            ) from exc
        self._columns: dict[str, np.ndarray] = {}

    @property
    def applications(self) -> list[str]:
        """Application names packed in this store, in pack order."""
        return list(self._applications)

    def application_entry(self, application: str) -> dict:
        """The manifest entry of one application."""
        try:
            return self._applications[application]
        except KeyError:
            raise TraceStoreError(
                f"store {self.path} has no application {application!r}; "
                f"it holds {sorted(self._applications)}"
            ) from None

    def fingerprints(self) -> dict[str, str]:
        """``application -> provenance fingerprint`` from the manifest."""
        return {
            name: entry["fingerprint"]
            for name, entry in self._applications.items()
        }

    def trace(self, application: str) -> StoreBackedTrace:
        """The lazily-streaming trace of one application."""
        return StoreBackedTrace(self, application)

    def suite(
        self, applications: Optional[Iterable[str]] = None
    ) -> dict[str, StoreBackedTrace]:
        """A runner-ready ``{application: trace}`` mapping."""
        names = (
            list(applications) if applications is not None
            else self.applications
        )
        return {name: self.trace(name) for name in names}

    def windows_for(self, start: int, stop: int) -> list[tuple[int, int]]:
        """The row range ``[start, stop)`` cut along chunk boundaries.

        Boundary cases are exact: a range starting or ending on a chunk
        edge never produces an empty window, and a single final row gets
        a one-row window.  Out-of-range requests raise instead of being
        clamped (see :meth:`decode_rows`).
        """
        self._check_rows(start, stop)
        windows: list[tuple[int, int]] = []
        if stop <= start:
            return windows
        chunk = self.chunk_rows
        first = (start // chunk) * chunk
        for begin in range(first, stop, chunk):
            a = max(start, begin)
            b = min(stop, begin + chunk)
            if a < b:
                windows.append((a, b))
        return windows

    def _column(self, name: str, dtype_spec: str) -> np.ndarray:
        memo = self._columns.get(name)
        if memo is not None:
            return memo
        path = self.path / _COLUMN_DIR / f"{name}.bin"
        faults.corrupt_cache_read(path)
        dtype = np.dtype(dtype_spec)
        expected = self.rows * dtype.itemsize
        try:
            actual = os.stat(path).st_size
        except OSError:
            raise TraceStoreError(
                f"store column {path} is missing; the store is corrupt"
            ) from None
        if actual != expected:
            aside = _quarantine(path)
            raise TraceStoreError(
                f"store column {path} is truncated or corrupt "
                f"({actual} bytes, manifest expects {expected}); "
                f"quarantined to {aside} — re-pack the store"
            )
        if self.rows == 0:
            column: np.ndarray = np.empty(0, dtype=dtype)
        else:
            column = np.memmap(path, dtype=dtype, mode="r",
                               shape=(self.rows,))
        self._columns[name] = column
        return column

    def columns(self) -> dict[str, np.ndarray]:
        """All memory-mapped columns, keyed by name."""
        return {name: self._column(name, spec) for name, spec in COLUMNS}

    def _check_rows(self, start: int, stop: int) -> None:
        """Reject row windows outside ``[0, rows)``.

        NumPy slicing silently clamps an out-of-range window to the
        array, so an off-by-one caller would read a *shorter* stream and
        simulate on truncated data without any error.  Fail loudly
        instead.
        """
        if start < 0 or stop > self.rows:
            raise TraceStoreError(
                f"row window [{start}, {stop}) is outside the store's "
                f"{self.rows} row(s)"
            )

    def decode_rows(self, start: int, stop: int) -> list[TraceEvent]:
        """Materialize rows ``[start, stop)`` back into event objects.

        The slice is the only part of the store touched; callers that
        respect the chunk grid (:meth:`windows_for`) therefore never
        hold more than one chunk of events.  The window must lie inside
        the store's row range — a silent short read is an off-by-one
        bug, not a smaller result.
        """
        self._check_rows(start, stop)
        cols = self.columns()
        return _decode_column_lists(
            cols["etype"][start:stop].tolist(),
            cols["time"][start:stop].tolist(),
            cols["pid"][start:stop].tolist(),
            cols["pc"][start:stop].tolist(),
            cols["fd"][start:stop].tolist(),
            cols["kind"][start:stop].tolist(),
            cols["inode"][start:stop].tolist(),
            cols["block_start"][start:stop].tolist(),
            cols["block_count"][start:stop].tolist(),
            cols["aux"][start:stop].tolist(),
            start,
        )


def pack_jsonl(stream: IO[str], writer: StoreWriter) -> int:
    """Pack a JSON-lines trace stream (see :mod:`repro.traces.io_format`)
    into ``writer``, one execution at a time; returns executions packed."""
    from repro.traces.io_format import iter_executions

    count = 0
    for execution in iter_executions(stream):
        writer.write_execution(execution)
        count += 1
    return count


def pack_trace(trace, writer: StoreWriter) -> int:
    """Pack an application trace (in-memory or store-backed) into
    ``writer``; returns the number of executions packed."""
    count = 0
    for execution in trace:
        writer.write_execution(execution)
        count += 1
    return count
