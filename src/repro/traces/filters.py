"""Small trace filtering utilities used by tests, examples, and analysis."""

from __future__ import annotations

from typing import Callable

from repro.traces.events import AccessType, IOEvent, TraceEvent
from repro.traces.trace import ExecutionLike, ExecutionTrace


def filter_events(
    execution: ExecutionLike,
    predicate: Callable[[TraceEvent], bool],
) -> ExecutionTrace:
    """An in-memory copy of ``execution`` keeping only events satisfying
    ``predicate``.

    Fork/exit events are always kept so process liveness stays valid.
    Accepts any :class:`~repro.traces.trace.ExecutionLike` (including
    store-backed executions); the result is always materialized.
    """
    kept = [
        event
        for event in execution.iter_events()
        if not isinstance(event, IOEvent) or predicate(event)
    ]
    return ExecutionTrace(
        application=execution.application,
        execution_index=execution.execution_index,
        events=kept,
        initial_pids=execution.initial_pids,
    )


def only_pid(execution: ExecutionLike, pid: int) -> ExecutionTrace:
    """Keep only the I/O of one process."""
    return filter_events(
        execution, lambda e: isinstance(e, IOEvent) and e.pid == pid
    )


def only_kind(execution: ExecutionLike, kind: AccessType) -> ExecutionTrace:
    """Keep only one access type."""
    return filter_events(
        execution, lambda e: isinstance(e, IOEvent) and e.kind == kind
    )


def time_window(
    execution: ExecutionLike, start: float, end: float
) -> ExecutionTrace:
    """Keep only I/O with ``start <= time <= end``."""
    if end < start:
        raise ValueError("window end before start")
    return filter_events(
        execution,
        lambda e: isinstance(e, IOEvent) and start <= e.time <= end,
    )
