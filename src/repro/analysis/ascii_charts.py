"""ASCII stacked-bar rendering of the paper's figures.

The paper's Figures 6-10 are stacked bar charts (hit / not-predicted
below the 100 % line, misses stacked on top, reaching ~140 %); Figure 8
stacks energy components.  These renderers draw the same bars in plain
text so the CLI and benchmark output convey the *shape* at a glance::

    mozilla   PCAP   |##############.....xxxx   | 80% hit, 17% np, 22% miss

Glyphs: ``#`` hits, ``:`` backup hits, ``.`` not predicted, ``x``
misses.  One column ≈ (100 / width) percentage points; bars are clipped
at ``clip`` (default 150 %) like the paper's axis.
"""

from __future__ import annotations

from repro.analysis.figures import AccuracyFigure, EnergyFigure

#: Default glyphs for accuracy bars.
GLYPH_HIT_PRIMARY = "#"
GLYPH_HIT_BACKUP = ":"
GLYPH_NOT_PREDICTED = "."
GLYPH_MISS = "x"


def _cells(fraction: float, width: int, clip: float) -> int:
    return max(0, round(min(fraction, clip) * width / clip))


def accuracy_bar(
    hit_primary: float,
    hit_backup: float,
    not_predicted: float,
    miss: float,
    *,
    width: int = 50,
    clip: float = 1.5,
) -> str:
    """One stacked accuracy bar; 100 % is marked with ``|``."""
    segments = (
        (GLYPH_HIT_PRIMARY, hit_primary),
        (GLYPH_HIT_BACKUP, hit_backup),
        (GLYPH_NOT_PREDICTED, not_predicted),
        (GLYPH_MISS, miss),
    )
    bar = ""
    for glyph, fraction in segments:
        bar += glyph * _cells(fraction, width, clip)
    bar = bar[: width]
    bar = bar.ljust(width)
    marker = _cells(1.0, width, clip)
    return bar[:marker] + "|" + bar[marker:]


def render_accuracy_chart(
    figure: AccuracyFigure, title: str, *, width: int = 50
) -> str:
    """The whole figure as stacked text bars."""
    lines = [
        title,
        f"  [{GLYPH_HIT_PRIMARY} primary hit  {GLYPH_HIT_BACKUP} backup hit"
        f"  {GLYPH_NOT_PREDICTED} not predicted  {GLYPH_MISS} miss"
        "  | = 100%]",
    ]
    for application, row in figure.items():
        for predictor, bar in row.items():
            chart = accuracy_bar(
                bar.hit_primary,
                bar.hit_backup,
                bar.not_predicted,
                bar.miss,
                width=width,
            )
            lines.append(f"  {application:9s} {predictor:7s} {chart}")
    return "\n".join(lines)


#: Glyphs for Figure-8 energy components.
GLYPH_BUSY = "B"
GLYPH_IDLE_SHORT = "s"
GLYPH_IDLE_LONG = "L"
GLYPH_CYCLE = "c"


def energy_bar(
    busy: float,
    idle_short: float,
    idle_long: float,
    power_cycle: float,
    *,
    width: int = 50,
) -> str:
    """One stacked energy bar (fractions of the Base total)."""
    segments = (
        (GLYPH_BUSY, busy),
        (GLYPH_IDLE_SHORT, idle_short),
        (GLYPH_IDLE_LONG, idle_long),
        (GLYPH_CYCLE, power_cycle),
    )
    bar = ""
    for glyph, fraction in segments:
        bar += glyph * _cells(fraction, width, 1.0)
    return bar[:width].ljust(width)


def render_energy_chart(
    figure: EnergyFigure,
    title: str = "Figure 8: Energy distribution",
    *,
    width: int = 50,
) -> str:
    lines = [
        title,
        f"  [{GLYPH_BUSY} busy  {GLYPH_IDLE_SHORT} idle<BE  "
        f"{GLYPH_IDLE_LONG} idle>BE  {GLYPH_CYCLE} power cycle; "
        "full width = Base energy]",
    ]
    for application, row in figure.items():
        for predictor, bar in row.items():
            chart = energy_bar(
                bar.busy, bar.idle_short, bar.idle_long, bar.power_cycle,
                width=width,
            )
            lines.append(
                f"  {application:9s} {predictor:6s} {chart} "
                f"{bar.savings:6.1%} saved"
            )
    return "\n".join(lines)
