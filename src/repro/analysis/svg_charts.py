"""Self-contained SVG rendering of the paper's figures.

Generates stacked-bar charts in the style of the paper's Figures 6-10
(hit / backup-hit / not-predicted below the 100 % line, misses stacked
above it) and Figure 8 (energy components as fractions of the Base
system), as standalone SVG documents — no plotting library required.

Used by the CLI (``python -m repro figure 7 --svg fig7.svg``) and
available programmatically::

    svg = render_accuracy_svg(build_fig7(runner), "Figure 7")
    Path("fig7.svg").write_text(svg)
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.analysis.figures import AccuracyFigure, EnergyFigure

#: Colors for the accuracy stacks (hit primary/backup, not pred, miss).
ACCURACY_COLORS = {
    "hit_primary": "#2b6cb0",
    "hit_backup": "#90cdf4",
    "not_predicted": "#d9d9d9",
    "miss": "#c53030",
}

#: Colors for the Figure-8 energy components.
ENERGY_COLORS = {
    "busy": "#2f855a",
    "idle_short": "#f6e05e",
    "idle_long": "#dd6b20",
    "power_cycle": "#805ad5",
}

_BAR_WIDTH = 26
_BAR_GAP = 10
_GROUP_GAP = 34
_CHART_HEIGHT = 220
_MARGIN_LEFT = 56
_MARGIN_TOP = 48
_MARGIN_BOTTOM = 70
_CLIP = 1.5  # the paper's figures run to ~140 %


def _rect(x: float, y: float, w: float, h: float, color: str) -> str:
    if h <= 0:
        return ""
    return (
        f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
        f'height="{h:.1f}" fill="{color}"/>'
    )


def _text(x: float, y: float, content: str, *, size: int = 11,
          anchor: str = "middle", rotate: float | None = None) -> str:
    transform = (
        f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
    )
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
        f'font-family="Helvetica, Arial, sans-serif" '
        f'text-anchor="{anchor}"{transform}>{escape(content)}</text>'
    )


def _scale(fraction: float) -> float:
    return min(fraction, _CLIP) / _CLIP * _CHART_HEIGHT


def _legend(items: dict[str, str], x: float, y: float) -> list[str]:
    parts = []
    offset = 0.0
    for label, color in items.items():
        parts.append(_rect(x + offset, y - 9, 10, 10, color))
        parts.append(
            _text(x + offset + 14, y, label, size=10, anchor="start")
        )
        offset += 14 + 7 * len(label) + 16
    return parts


def _frame(width: float, title: str, legend: dict[str, str]) -> list[str]:
    height = _MARGIN_TOP + _CHART_HEIGHT + _MARGIN_BOTTOM
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height}" viewBox="0 0 {width:.0f} {height}">',
        _rect(0, 0, width, height, "#ffffff"),
        _text(width / 2, 22, title, size=14),
    ]
    parts.extend(_legend(legend, _MARGIN_LEFT, 38))
    # Y axis: 0 to 150 % with a line at 100 %.
    for pct in (0.0, 0.5, 1.0, 1.5):
        y = _MARGIN_TOP + _CHART_HEIGHT - _scale(pct)
        parts.append(
            f'<line x1="{_MARGIN_LEFT - 4}" y1="{y:.1f}" '
            f'x2="{width - 8:.1f}" y2="{y:.1f}" '
            f'stroke="{"#333333" if pct == 1.0 else "#dddddd"}" '
            f'stroke-width="{1.2 if pct == 1.0 else 0.6}"/>'
        )
        parts.append(
            _text(_MARGIN_LEFT - 8, y + 4, f"{pct:.0%}", size=10,
                  anchor="end")
        )
    return parts


def render_accuracy_svg(figure: AccuracyFigure, title: str) -> str:
    """The whole accuracy figure as one SVG document."""
    applications = list(figure)
    predictors = list(next(iter(figure.values())))
    group_width = len(predictors) * (_BAR_WIDTH + _BAR_GAP)
    width = (
        _MARGIN_LEFT
        + len(applications) * (group_width + _GROUP_GAP)
        + 20
    )
    parts = _frame(width, title, {
        "hit (primary)": ACCURACY_COLORS["hit_primary"],
        "hit (backup)": ACCURACY_COLORS["hit_backup"],
        "not predicted": ACCURACY_COLORS["not_predicted"],
        "miss": ACCURACY_COLORS["miss"],
    })
    x = float(_MARGIN_LEFT + 8)
    baseline = _MARGIN_TOP + _CHART_HEIGHT
    for application in applications:
        group_start = x
        for predictor in predictors:
            bar = figure[application][predictor]
            y = baseline
            for key, fraction in (
                ("hit_primary", bar.hit_primary),
                ("hit_backup", bar.hit_backup),
                ("not_predicted", bar.not_predicted),
                ("miss", bar.miss),
            ):
                h = _scale(fraction)
                y -= h
                parts.append(
                    _rect(x, y, _BAR_WIDTH, h, ACCURACY_COLORS[key])
                )
            parts.append(
                _text(x + _BAR_WIDTH / 2, baseline + 14, predictor,
                      size=9, rotate=-35)
            )
            x += _BAR_WIDTH + _BAR_GAP
        parts.append(
            _text((group_start + x - _BAR_GAP) / 2, baseline + 46,
                  application, size=11)
        )
        x += _GROUP_GAP
    parts.append("</svg>")
    return "\n".join(part for part in parts if part)


def render_energy_svg(
    figure: EnergyFigure, title: str = "Figure 8: Energy distribution"
) -> str:
    """The Figure-8 energy chart as one SVG document."""
    applications = list(figure)
    predictors = list(next(iter(figure.values())))
    group_width = len(predictors) * (_BAR_WIDTH + _BAR_GAP)
    width = (
        _MARGIN_LEFT
        + len(applications) * (group_width + _GROUP_GAP)
        + 20
    )
    parts = _frame(width, title, {
        "busy I/O": ENERGY_COLORS["busy"],
        "idle < breakeven": ENERGY_COLORS["idle_short"],
        "idle > breakeven": ENERGY_COLORS["idle_long"],
        "power cycle": ENERGY_COLORS["power_cycle"],
    })
    x = float(_MARGIN_LEFT + 8)
    baseline = _MARGIN_TOP + _CHART_HEIGHT
    for application in applications:
        group_start = x
        for predictor in predictors:
            bar = figure[application][predictor]
            y = baseline
            for key, fraction in (
                ("busy", bar.busy),
                ("idle_short", bar.idle_short),
                ("idle_long", bar.idle_long),
                ("power_cycle", bar.power_cycle),
            ):
                h = _scale(fraction)
                y -= h
                parts.append(_rect(x, y, _BAR_WIDTH, h, ENERGY_COLORS[key]))
            parts.append(
                _text(x + _BAR_WIDTH / 2, baseline + 14, predictor,
                      size=9, rotate=-35)
            )
            x += _BAR_WIDTH + _BAR_GAP
        parts.append(
            _text((group_start + x - _BAR_GAP) / 2, baseline + 46,
                  application, size=11)
        )
        x += _GROUP_GAP
    parts.append("</svg>")
    return "\n".join(part for part in parts if part)
