"""ASCII renderers: the benchmark harness prints the same rows/series the
paper's tables and figures report, side by side with the paper's values
where available."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.figures import (
    AccuracyFigure,
    EnergyFigure,
    average_bars,
    average_savings,
)
from repro.analysis.paper_data import (
    PAPER_FIG8_SAVINGS,
    PAPER_TABLE1,
    PAPER_TABLE3,
)
from repro.analysis.tables import Table1Row, Table2Row, Table3Row


def _pct(value: float) -> str:
    return f"{value:6.1%}"


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Table 1 with the paper's values inline for comparison."""
    lines = [
        "Table 1: Applications and execution details (measured vs paper)",
        f"{'appl.':9s} {'exec':>5s} {'glob.idle':>10s} {'(paper)':>8s} "
        f"{'loc.idle':>9s} {'(paper)':>8s} {'total I/O':>10s} {'(paper)':>8s}",
    ]
    for row in rows:
        paper = PAPER_TABLE1.get(row.application)
        paper_global = f"{paper[1]:8d}" if paper else "       -"
        paper_local = f"{paper[2]:8d}" if paper else "       -"
        paper_ios = f"{paper[3]:8d}" if paper else "       -"
        lines.append(
            f"{row.application:9s} {row.executions:5d} "
            f"{row.global_idle_periods:10d} {paper_global} "
            f"{row.local_idle_periods:9d} {paper_local} "
            f"{row.total_ios:10d} {paper_ios}"
        )
    return "\n".join(lines)


def render_table2(rows: Sequence[Table2Row]) -> str:
    lines = ["Table 2: Simulated disk states and state transitions"]
    for row in rows:
        lines.append(f"  {row.name:28s} {row.value:8.3f} {row.unit}")
    return "\n".join(lines)


def render_table3(rows: Sequence[Table3Row]) -> str:
    if not rows:
        return "Table 3: (no rows)"
    variants = list(rows[0].entries)
    header = f"{'appl.':9s}" + "".join(
        f" {v:>7s} {'(p)':>5s}" for v in variants
    )
    lines = ["Table 3: Prediction-table storage (entries; measured vs paper)",
             header]
    for row in rows:
        paper = PAPER_TABLE3.get(row.application, {})
        cells = "".join(
            f" {row.entries[v]:7d} {paper.get(v, 0):5d}" for v in variants
        )
        lines.append(f"{row.application:9s}{cells}")
    return "\n".join(lines)


def render_accuracy_figure(
    figure: AccuracyFigure,
    title: str,
    *,
    split_sources: bool = False,
) -> str:
    """Figures 6/7 (plain hit/miss) or 9/10 (primary/backup split)."""
    lines = [title]
    predictors = list(next(iter(figure.values())))
    for application, row in figure.items():
        for predictor in predictors:
            bar = row[predictor]
            if split_sources:
                detail = (
                    f"hitP={_pct(bar.hit_primary)} hitB={_pct(bar.hit_backup)} "
                    f"missP={_pct(bar.miss_primary)} missB={_pct(bar.miss_backup)}"
                )
            else:
                detail = f"hit={_pct(bar.hit)} miss={_pct(bar.miss)}"
            lines.append(
                f"  {application:9s} {predictor:7s} {detail} "
                f"notpred={_pct(bar.not_predicted)} (n={bar.opportunities})"
            )
    for predictor in predictors:
        avg = average_bars(figure, predictor)
        lines.append(
            f"  {'AVERAGE':9s} {predictor:7s} hit={_pct(avg.hit)} "
            f"miss={_pct(avg.miss)} notpred={_pct(avg.not_predicted)} "
            f"hitP={_pct(avg.hit_primary)} hitB={_pct(avg.hit_backup)}"
        )
    return "\n".join(lines)


def render_energy_figure(
    figure: EnergyFigure, title: str = "Figure 8: Energy distribution"
) -> str:
    lines = [
        title,
        "  (components as fractions of the Base system's energy)",
    ]
    for application, row in figure.items():
        for predictor, bar in row.items():
            lines.append(
                f"  {application:9s} {predictor:6s} "
                f"busy={_pct(bar.busy)} idle<BE={_pct(bar.idle_short)} "
                f"idle>BE={_pct(bar.idle_long)} cycle={_pct(bar.power_cycle)} "
                f"savings={_pct(bar.savings)}"
            )
    predictors = [p for p in next(iter(figure.values())) if p != "Base"]
    for predictor in predictors:
        paper = PAPER_FIG8_SAVINGS.get(predictor)
        paper_text = f" (paper {paper:.0%})" if paper is not None else ""
        lines.append(
            f"  AVERAGE   {predictor:6s} savings="
            f"{_pct(average_savings(figure, predictor))}{paper_text}"
        )
    return "\n".join(lines)
