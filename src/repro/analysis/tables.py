"""Builders for the paper's tables (1, 2, 3) from simulation artifacts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.disk.power_model import DiskPowerParameters
from repro.sim.experiment import ExperimentRunner
from repro.sim.idle_periods import stream_gaps


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One row of Table 1 (applications and execution details)."""

    application: str
    executions: int
    global_idle_periods: int
    local_idle_periods: int
    total_ios: int
    disk_accesses: int


def build_table1(runner: ExperimentRunner) -> list[Table1Row]:
    """Compute Table 1 over the runner's suite.

    Global idle periods are breakeven-exceeding gaps of the merged
    (post-cache) disk stream; local idle periods sum each disk-using
    process's own gaps, matching the paper's definitions.
    """
    config = runner.config
    rows: list[Table1Row] = []
    for application, trace in runner.suite.items():
        global_count = 0
        local_count = 0
        disk_accesses = 0
        for execution, filtered in zip(trace, runner.filtered(application)):
            disk_accesses += len(filtered.accesses)
            times = [access.time for access in filtered.accesses]
            gaps = stream_gaps(
                times,
                config.service_time,
                start_time=execution.start_time,
                end_time=execution.end_time,
            )
            global_count += sum(
                1 for gap in gaps if gap.length > config.breakeven
            )
            per_process = filtered.per_process()
            for pid, (start, end) in execution.lifetimes().items():
                accesses = per_process.get(pid, [])
                if not accesses:
                    continue
                process_gaps = stream_gaps(
                    [access.time for access in accesses],
                    config.service_time,
                    start_time=start,
                    end_time=end,
                )
                local_count += sum(
                    1 for gap in process_gaps if gap.length > config.breakeven
                )
        rows.append(
            Table1Row(
                application=application,
                executions=len(trace),
                global_idle_periods=global_count,
                local_idle_periods=local_count,
                total_ios=trace.total_io_count,
                disk_accesses=disk_accesses,
            )
        )
    return rows


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One parameter of Table 2 (disk states and transitions)."""

    name: str
    value: float
    unit: str


def build_table2(params: DiskPowerParameters) -> list[Table2Row]:
    """Table 2 from the disk model, with the derived breakeven time."""
    return [
        Table2Row("Busy power", params.busy_power, "W"),
        Table2Row("Idle power", params.idle_power, "W"),
        Table2Row("Standby power", params.standby_power, "W"),
        Table2Row("Spin-up energy", params.spinup_energy, "J"),
        Table2Row("Shutdown energy", params.shutdown_energy, "J"),
        Table2Row("Spin-up time", params.spinup_time, "s"),
        Table2Row("Shutdown time", params.shutdown_time, "s"),
        Table2Row("Breakeven time (derived)", params.breakeven_time(), "s"),
    ]


#: The PCAP variants Table 3 reports.
TABLE3_VARIANTS = ("PCAP", "PCAPf", "PCAPh", "PCAPfh")


@dataclass(frozen=True, slots=True)
class Table3Row:
    """Prediction-table entry counts for one application."""

    application: str
    entries: dict[str, int]


def build_table3(
    runner: ExperimentRunner,
    variants: Sequence[str] = TABLE3_VARIANTS,
    applications: Optional[Sequence[str]] = None,
) -> list[Table3Row]:
    """Run each PCAP variant over each application's full trace history
    and report the final prediction-table sizes."""
    apps = list(applications) if applications else runner.applications
    rows: list[Table3Row] = []
    for application in apps:
        entries: dict[str, int] = {}
        for variant in variants:
            result = runner.run_global(application, variant)
            entries[variant] = result.table_size or 0
        rows.append(Table3Row(application=application, entries=entries))
    return rows
