"""The paper's reported numbers, used as reproduction targets.

Everything here is transcribed from the paper (tables verbatim, figure
values from the prose of §6, which states the averages the bar charts
show).  These are *targets for shape comparison*: the reproduction runs
on synthetic traces, so orderings and rough factors are expected to
match, not absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Table 1 — applications and execution details.
#: app -> (executions, global idle periods, local idle periods, total I/Os)
PAPER_TABLE1: dict[str, tuple[int, int, int, int]] = {
    "mozilla": (49, 365, 1001, 90843),
    "writer": (33, 112, 358, 133016),
    "impress": (19, 87, 234, 220455),
    "xemacs": (37, 94, 103, 79720),
    "nedit": (29, 29, 29, 6663),
    "mplayer": (31, 51, 111, 512433),
}

#: Table 2 — Fujitsu MHF 2043 AT disk parameters.
PAPER_TABLE2: dict[str, float] = {
    "busy_power_w": 2.2,
    "idle_power_w": 0.95,
    "standby_power_w": 0.13,
    "spinup_energy_j": 4.4,
    "shutdown_energy_j": 0.36,
    "spinup_time_s": 1.6,
    "shutdown_time_s": 0.67,
    "breakeven_time_s": 5.43,
}

#: Table 3 — prediction-table entries per application and PCAP variant.
PAPER_TABLE3: dict[str, dict[str, int]] = {
    "mozilla": {"PCAP": 72, "PCAPh": 99, "PCAPf": 129, "PCAPfh": 139},
    "writer": {"PCAP": 30, "PCAPh": 36, "PCAPf": 30, "PCAPfh": 36},
    "impress": {"PCAP": 34, "PCAPh": 44, "PCAPf": 44, "PCAPfh": 47},
    "xemacs": {"PCAP": 13, "PCAPh": 16, "PCAPf": 13, "PCAPfh": 16},
    "nedit": {"PCAP": 6, "PCAPh": 6, "PCAPf": 6, "PCAPfh": 6},
    "mplayer": {"PCAP": 24, "PCAPh": 24, "PCAPf": 26, "PCAPfh": 26},
}


@dataclass(frozen=True, slots=True)
class PaperAccuracy:
    """Average hit/miss fractions the paper quotes for a predictor."""

    hit: float
    miss: float


#: Figure 6 — local predictor averages (§6.1 prose).
PAPER_FIG6_AVERAGES: dict[str, PaperAccuracy] = {
    "TP": PaperAccuracy(hit=0.52, miss=0.03),
    "LT": PaperAccuracy(hit=0.88, miss=0.10),
    "PCAP": PaperAccuracy(hit=0.89, miss=0.05),
}

#: Figure 7 — global predictor averages (§6.2 prose).
PAPER_FIG7_AVERAGES: dict[str, PaperAccuracy] = {
    "TP": PaperAccuracy(hit=0.71, miss=0.08),
    "LT": PaperAccuracy(hit=0.84, miss=0.20),
    "PCAP": PaperAccuracy(hit=0.86, miss=0.10),
}

#: Figure 8 — average fraction of the Base system's energy eliminated
#: (§6.3 prose).  TP-BE is the breakeven-timeout variant (5.43 s), which
#: trades 2 extra points of savings for 12 % global mispredictions.
PAPER_FIG8_SAVINGS: dict[str, float] = {
    "Ideal": 0.78,
    "TP": 0.72,
    "TP-BE": 0.74,
    "LT": 0.75,
    "PCAP": 0.76,
}

#: Base system energy split (§6.3 prose): 83 % of energy is idle, 82 %
#: of total in periods longer than breakeven.
PAPER_FIG8_BASE_IDLE_FRACTION = 0.83
PAPER_FIG8_BASE_IDLE_LONG_FRACTION = 0.82

#: Figure 9 — optimization averages (§6.4.1 prose).
PAPER_FIG9_AVERAGES: dict[str, PaperAccuracy] = {
    "PCAP": PaperAccuracy(hit=0.85, miss=0.10),
    "PCAPh": PaperAccuracy(hit=0.85, miss=0.05),
    "PCAPf": PaperAccuracy(hit=0.85, miss=0.09),
    "PCAPfh": PaperAccuracy(hit=0.84, miss=0.05),
}

#: Figure 9 — mozilla's miss fraction with and without history.
PAPER_FIG9_MOZILLA_MISS = {"PCAP": 0.26, "PCAPh": 0.13}

#: Figure 10 — primary/backup share of correct predictions (§6.4.2).
#: predictor -> (primary hit fraction, backup hit fraction)
PAPER_FIG10_SPLIT: dict[str, tuple[float, float]] = {
    "PCAP": (0.70, 0.15),
    "PCAPa": (0.16, 0.59),
    "LT": (0.66, 0.18),
    "LTa": (0.26, 0.50),
}
