"""Builders for the paper's figures (6, 7, 8, 9, 10).

Each builder returns plain dataclasses the report renderers (and the
benchmarks) consume; nothing here touches matplotlib — the paper's
figures are stacked-bar charts whose numbers these structures carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.sim.metrics import PredictionStats

#: Predictor sets of each figure.
FIG6_PREDICTORS = ("TP", "LT", "PCAP")
FIG7_PREDICTORS = ("TP", "LT", "PCAP")
FIG8_PREDICTORS = ("Base", "Ideal", "TP", "LT", "PCAP")
FIG9_PREDICTORS = ("PCAP", "PCAPh", "PCAPf", "PCAPfh")
FIG10_PREDICTORS = ("PCAP", "PCAPa", "LT", "LTa")


@dataclass(frozen=True, slots=True)
class AccuracyBar:
    """One stacked bar of Figures 6/7/9/10."""

    application: str
    predictor: str
    hit: float
    miss: float
    not_predicted: float
    hit_primary: float
    hit_backup: float
    miss_primary: float
    miss_backup: float
    opportunities: int

    @staticmethod
    def from_stats(
        application: str, predictor: str, stats: PredictionStats
    ) -> "AccuracyBar":
        return AccuracyBar(
            application=application,
            predictor=predictor,
            hit=stats.hit_fraction,
            miss=stats.miss_fraction,
            not_predicted=stats.not_predicted_fraction,
            hit_primary=stats.hit_primary_fraction,
            hit_backup=stats.hit_backup_fraction,
            miss_primary=stats.miss_primary_fraction,
            miss_backup=stats.miss_backup_fraction,
            opportunities=stats.opportunities,
        )


@dataclass(frozen=True, slots=True)
class EnergyBar:
    """One stacked bar of Figure 8 (fractions of the Base total)."""

    application: str
    predictor: str
    busy: float
    idle_short: float
    idle_long: float
    power_cycle: float
    savings: float

    @property
    def total(self) -> float:
        return self.busy + self.idle_short + self.idle_long + self.power_cycle


AccuracyFigure = dict[str, dict[str, AccuracyBar]]
EnergyFigure = dict[str, dict[str, EnergyBar]]


def _accuracy_figure(
    runner: ExperimentRunner,
    predictors: Sequence[str],
    *,
    mode: str,
    applications: Optional[Sequence[str]] = None,
) -> AccuracyFigure:
    matrix = runner.run_matrix(
        predictors, mode=mode, applications=applications
    )
    return {
        application: {
            name: AccuracyBar.from_stats(application, name, result.stats)
            for name, result in row.items()
        }
        for application, row in matrix.items()
    }


def build_fig6(
    runner: ExperimentRunner,
    predictors: Sequence[str] = FIG6_PREDICTORS,
    applications: Optional[Sequence[str]] = None,
) -> AccuracyFigure:
    """Figure 6: local shutdown predictor accuracy."""
    return _accuracy_figure(
        runner, predictors, mode="local", applications=applications
    )


def build_fig7(
    runner: ExperimentRunner,
    predictors: Sequence[str] = FIG7_PREDICTORS,
    applications: Optional[Sequence[str]] = None,
) -> AccuracyFigure:
    """Figure 7: global shutdown predictor accuracy."""
    return _accuracy_figure(
        runner, predictors, mode="global", applications=applications
    )


def build_fig9(
    runner: ExperimentRunner,
    predictors: Sequence[str] = FIG9_PREDICTORS,
    applications: Optional[Sequence[str]] = None,
) -> AccuracyFigure:
    """Figure 9: history / file-descriptor optimizations (global)."""
    return _accuracy_figure(
        runner, predictors, mode="global", applications=applications
    )


def build_fig10(
    runner: ExperimentRunner,
    predictors: Sequence[str] = FIG10_PREDICTORS,
    applications: Optional[Sequence[str]] = None,
) -> AccuracyFigure:
    """Figure 10: prediction-table reuse (global)."""
    return _accuracy_figure(
        runner, predictors, mode="global", applications=applications
    )


def build_fig8(
    runner: ExperimentRunner,
    predictors: Sequence[str] = FIG8_PREDICTORS,
    applications: Optional[Sequence[str]] = None,
) -> EnergyFigure:
    """Figure 8: energy distribution, normalized per-app to Base."""
    if "Base" not in predictors:
        raise ValueError("Figure 8 needs the Base system for scaling")
    apps = list(applications) if applications else runner.applications
    matrix = runner.run_matrix(
        predictors, mode="global", applications=apps
    )
    figure: EnergyFigure = {}
    for application in apps:
        results: dict[str, ApplicationResult] = matrix[application]
        base_total = results["Base"].ledger.total
        row: dict[str, EnergyBar] = {}
        for name, result in results.items():
            fractions = result.ledger.fractions_of(base_total)
            row[name] = EnergyBar(
                application=application,
                predictor=name,
                busy=fractions["busy"],
                idle_short=fractions["idle_short"],
                idle_long=fractions["idle_long"],
                power_cycle=fractions["power_cycle"],
                savings=result.ledger.savings_versus(results["Base"].ledger),
            )
        figure[application] = row
    return figure


def average_bars(figure: AccuracyFigure, predictor: str) -> AccuracyBar:
    """Unweighted across-application average of one predictor's bars —
    the quantity the paper's prose reports ("on average ...")."""
    bars = [row[predictor] for row in figure.values()]
    if not bars:
        raise ValueError("empty figure")
    n = len(bars)
    return AccuracyBar(
        application="average",
        predictor=predictor,
        hit=sum(b.hit for b in bars) / n,
        miss=sum(b.miss for b in bars) / n,
        not_predicted=sum(b.not_predicted for b in bars) / n,
        hit_primary=sum(b.hit_primary for b in bars) / n,
        hit_backup=sum(b.hit_backup for b in bars) / n,
        miss_primary=sum(b.miss_primary for b in bars) / n,
        miss_backup=sum(b.miss_backup for b in bars) / n,
        opportunities=sum(b.opportunities for b in bars),
    )


def average_savings(figure: EnergyFigure, predictor: str) -> float:
    """Across-application average energy savings of one predictor."""
    bars = [row[predictor] for row in figure.values()]
    if not bars:
        raise ValueError("empty figure")
    return sum(b.savings for b in bars) / len(bars)
