"""Automated EXPERIMENTS-style report generation.

Runs every table and figure, renders the measured-vs-paper comparison
and the shape-check verdicts, and emits one self-contained Markdown
document — the CLI's ``report`` subcommand and CI pipelines use it to
keep recorded results in sync with the code.
"""

from __future__ import annotations

from repro.analysis.compare import (
    fig6_checks,
    fig7_checks,
    fig8_checks,
    fig9_checks,
    fig10_checks,
)
from repro.analysis.figures import (
    AccuracyFigure,
    average_bars,
    average_savings,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
    build_fig10,
)
from repro.analysis.paper_data import (
    PAPER_FIG6_AVERAGES,
    PAPER_FIG7_AVERAGES,
    PAPER_FIG8_SAVINGS,
    PAPER_FIG9_AVERAGES,
    PAPER_FIG10_SPLIT,
    PAPER_TABLE1,
    PAPER_TABLE3,
)
from repro.analysis.tables import build_table1, build_table3
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import PredictionStats
from repro.workloads.extremes import build_extremes

#: Predictor columns of the learned-family extension sections.
LEARNED_REPORT_PREDICTORS = ("TP", "PCAP", "QDPM", "SKI", "PI")


def _accuracy_table(
    figure: AccuracyFigure, paper_averages: dict
) -> list[str]:
    lines = [
        "| predictor | hit | miss | paper hit | paper miss |",
        "|---|---|---|---|---|",
    ]
    for name in next(iter(figure.values())):
        avg = average_bars(figure, name)
        paper = paper_averages.get(name)
        paper_hit = f"{paper.hit:.0%}" if paper else "—"
        paper_miss = f"{paper.miss:.0%}" if paper else "—"
        lines.append(
            f"| {name} | {avg.hit:.1%} | {avg.miss:.1%} "
            f"| {paper_hit} | {paper_miss} |"
        )
    return lines


def _checks_section(checks) -> list[str]:
    lines = []
    for check in checks:
        status = "✅" if check.passed else "❌"
        lines.append(f"- {status} {check.name} — {check.detail}")
    return lines


def generate_report(runner: ExperimentRunner, *, scale: float) -> str:
    """One Markdown document with every experiment's measured numbers."""
    parts: list[str] = [
        "# Reproduction report (generated)",
        "",
        f"Workload scale: {scale} (1.0 = the paper's Table 1 magnitudes).",
        "All numbers measured by this run; paper values inline.",
        "",
        "## Table 1 — applications",
        "",
        "| app | executions | global idle (paper) | local idle (paper) "
        "| total I/Os (paper) |",
        "|---|---|---|---|---|",
    ]
    for row in build_table1(runner):
        paper = PAPER_TABLE1.get(row.application, (0, 0, 0, 0))
        parts.append(
            f"| {row.application} | {row.executions} "
            f"| {row.global_idle_periods} ({paper[1]}) "
            f"| {row.local_idle_periods} ({paper[2]}) "
            f"| {row.total_ios} ({paper[3]}) |"
        )

    fig6 = build_fig6(runner)
    parts += ["", "## Figure 6 — local predictors", ""]
    parts += _accuracy_table(fig6, PAPER_FIG6_AVERAGES)
    parts += ["", *_checks_section(fig6_checks(fig6))]

    fig7 = build_fig7(runner)
    parts += ["", "## Figure 7 — global predictor", ""]
    parts += _accuracy_table(fig7, PAPER_FIG7_AVERAGES)
    parts += ["", *_checks_section(fig7_checks(fig7))]

    fig8 = build_fig8(runner)
    parts += [
        "",
        "## Figure 8 — energy",
        "",
        "| predictor | savings | paper |",
        "|---|---|---|",
    ]
    for name in ("Ideal", "TP", "LT", "PCAP"):
        paper = PAPER_FIG8_SAVINGS.get(name)
        parts.append(
            f"| {name} | {average_savings(fig8, name):.1%} "
            f"| {paper:.0%} |" if paper is not None else
            f"| {name} | {average_savings(fig8, name):.1%} | — |"
        )
    parts += ["", *_checks_section(fig8_checks(fig8))]

    fig9 = build_fig9(runner)
    parts += ["", "## Figure 9 — optimizations", ""]
    parts += _accuracy_table(fig9, PAPER_FIG9_AVERAGES)
    parts += ["", *_checks_section(fig9_checks(fig9))]

    fig10 = build_fig10(runner)
    parts += [
        "",
        "## Figure 10 — table reuse",
        "",
        "| variant | primary hits | backup hits | paper primary "
        "| paper backup |",
        "|---|---|---|---|---|",
    ]
    for name in next(iter(fig10.values())):
        avg = average_bars(fig10, name)
        paper = PAPER_FIG10_SPLIT.get(name)
        paper_primary = f"{paper[0]:.0%}" if paper else "—"
        paper_backup = f"{paper[1]:.0%}" if paper else "—"
        parts.append(
            f"| {name} | {avg.hit_primary:.1%} | {avg.hit_backup:.1%} "
            f"| {paper_primary} | {paper_backup} |"
        )
    parts += ["", *_checks_section(fig10_checks(fig10))]

    parts += ["", "## Table 3 — prediction-table storage", ""]
    parts += [
        "| app | " + " | ".join(
            f"{v} (paper)" for v in ("PCAP", "PCAPf", "PCAPh", "PCAPfh")
        ) + " |",
        "|---|---|---|---|---|",
    ]
    for row in build_table3(runner):
        paper = PAPER_TABLE3.get(row.application, {})
        cells = " | ".join(
            f"{row.entries[v]} ({paper.get(v, '—')})"
            for v in ("PCAP", "PCAPf", "PCAPh", "PCAPfh")
        )
        parts.append(f"| {row.application} | {cells} |")

    parts += [
        "",
        "## Extension — learned predictors (beyond the paper)",
        "",
        "Q-DPM (tabular Q-learning, Li et al. arXiv:0710.4739), the",
        "learning-augmented ski rental over PCAP's table as advice",
        "(Antoniadis et al. arXiv:2110.13116), and a PI feedback",
        "controller on observed slowdown (Cerf et al. arXiv:2107.02426),",
        "on the desktop suite.  Savings are relative to Base.",
        "",
        "| predictor | hit | miss | savings |",
        "|---|---|---|---|",
    ]
    base_energy = sum(
        runner.run_global(app, "Base").energy
        for app in runner.applications
    )
    for name in LEARNED_REPORT_PREDICTORS:
        stats = PredictionStats()
        energy = 0.0
        for app in runner.applications:
            result = runner.run_global(app, name)
            stats.merge(result.stats)
            energy += result.energy
        parts.append(
            f"| {name} | {stats.hit_fraction:.1%} "
            f"| {stats.miss_fraction:.1%} "
            f"| {1.0 - energy / base_energy:.1%} |"
        )

    parts += [
        "",
        "## Extension — adversarial envelope (PC aliasing)",
        "",
        "The same predictors on the envelope workloads, including the",
        "`pc_alias` adversary whose two routines execute the same call",
        "sites in opposite order: they alias to one arithmetic-sum path",
        "signature (§4.1) while carrying opposite idle behaviour, so",
        "PCAP's *primary* fires into every aliased short gap — damage",
        "the backup-timeout safety argument (§4.3) cannot catch.  The",
        "λ-hedged ski-rental consumer of the same table and the",
        "idle-history policies stay robust.",
        "",
        "| workload | predictor | hit | miss | energy |",
        "|---|---|---|---|---|",
    ]
    envelope = ExperimentRunner(build_extremes(executions=12), runner.config)
    for app in envelope.applications:
        for name in LEARNED_REPORT_PREDICTORS:
            result = envelope.run_global(app, name)
            parts.append(
                f"| {app} | {name} | {result.stats.hit_fraction:.1%} "
                f"| {result.stats.miss_fraction:.1%} "
                f"| {result.energy:.1f} J |"
            )

    checks = (
        fig6_checks(fig6) + fig7_checks(fig7) + fig8_checks(fig8)
        + fig9_checks(fig9) + fig10_checks(fig10)
    )
    passed = sum(1 for check in checks if check.passed)
    parts += ["", f"**{passed}/{len(checks)} shape checks passed.**", ""]
    return "\n".join(parts)
