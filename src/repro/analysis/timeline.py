"""Human-readable rendering of structured simulation traces.

Turns the typed event stream of :mod:`repro.sim.tracing` into the
decision timeline a person debugging a figure mismatch wants to read:
one aligned line per event, with the fields that matter for that kind.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.sim.tracing import (
    AccessServed,
    GapResolved,
    HistoryUpdate,
    LowPowerEntered,
    ProcessExited,
    ProcessStarted,
    ShutdownCancelled,
    ShutdownFired,
    ShutdownScheduled,
    SignatureLookup,
    SimTraceEvent,
    SpinUpDelay,
    TableTrain,
    UnknownPidRegistered,
    WaitWindowExpired,
    summarize,
)


def _key_repr(key) -> str:
    if isinstance(key, tuple):
        return "(" + ",".join(_key_repr(part) for part in key) + ")"
    if isinstance(key, int):
        return f"{key:#x}"
    return repr(key)


def describe_event(event: SimTraceEvent) -> str:
    """The detail column of one timeline line."""
    if isinstance(event, AccessServed):
        return (
            f"pid={event.pid} pc={event.pc:#x} blocks={event.block_count} "
            f"busy-until={event.busy_until:.3f}"
        )
    if isinstance(event, GapResolved):
        shut = (
            f" shutdown@{event.shutdown_at:.3f}"
            if event.shutdown_at is not None
            else ""
        )
        return f"start={event.start:.3f} length={event.length:.3f}s{shut}"
    if isinstance(event, ShutdownScheduled):
        return f"source={event.source}"
    if isinstance(event, ShutdownFired):
        verdict = "HIT" if event.hit else "MISS"
        return (
            f"{verdict} source={event.source} offset={event.offset:.3f}s "
            f"gap={event.gap_length:.3f}s"
        )
    if isinstance(event, ShutdownCancelled):
        return f"reason={event.reason}"
    if isinstance(event, WaitWindowExpired):
        return f"source={event.source}"
    if isinstance(event, SignatureLookup):
        return (
            f"pid={event.pid} key={_key_repr(event.key)} "
            f"{'hit' if event.hit else 'miss'}"
        )
    if isinstance(event, TableTrain):
        outcome = "new entry" if event.inserted else "already known"
        return f"pid={event.pid} key={_key_repr(event.key)} {outcome}"
    if isinstance(event, HistoryUpdate):
        return (
            f"pid={event.pid} bit={event.bit} register={event.register:#b}"
        )
    if isinstance(event, SpinUpDelay):
        tag = " IRRITATING" if event.irritating else ""
        return f"waited={event.seconds:.3f}s{tag}"
    if isinstance(event, (ProcessStarted, ProcessExited, UnknownPidRegistered)):
        return f"pid={event.pid}"
    if isinstance(event, LowPowerEntered):
        return ""
    return repr(event)


def render_timeline(
    events: Sequence[SimTraceEvent],
    *,
    limit: Optional[int] = None,
    title: Optional[str] = None,
) -> str:
    """One aligned line per event; ``limit`` truncates with a footer."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    shown = events if limit is None or limit <= 0 else events[:limit]
    for event in shown:
        lines.append(
            f"t={event.time:12.4f}s  {event.kind:<15} {describe_event(event)}"
            .rstrip()
        )
    hidden = len(events) - len(shown)
    if hidden > 0:
        lines.append(f"... ({hidden} more events; raise --limit to see them)")
    if not events:
        lines.append("(no events recorded)")
    return "\n".join(lines)


def render_trace_summary(counts: dict[str, int]) -> str:
    """The per-kind counter table shown under a timeline."""
    if not counts:
        return "(no events recorded)"
    width = max(len(kind) for kind in counts)
    lines = ["event counts:"]
    for kind, count in sorted(counts.items()):
        lines.append(f"  {kind:<{width}}  {count}")
    return "\n".join(lines)


def timeline_summary(events: Iterable[SimTraceEvent]) -> str:
    """Convenience: summary table straight from an event stream."""
    return render_trace_summary(summarize(events))
