"""Shape comparison against the paper's results.

The reproduction's substrate is synthetic, so absolute numbers are not
expected to match the paper's testbed; what must hold is the *shape* —
who wins, by roughly what factor, and where the qualitative crossovers
fall.  :func:`shape_checks` encodes those claims as testable predicates;
the integration tests and EXPERIMENTS.md consume its output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import (
    AccuracyFigure,
    EnergyFigure,
    average_bars,
    average_savings,
)


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """One verifiable qualitative claim from the paper."""

    name: str
    passed: bool
    detail: str


def _check(name: str, passed: bool, detail: str) -> ShapeCheck:
    return ShapeCheck(name=name, passed=passed, detail=detail)


def fig6_checks(figure: AccuracyFigure) -> list[ShapeCheck]:
    """Local accuracy claims (§6.1)."""
    tp = average_bars(figure, "TP")
    lt = average_bars(figure, "LT")
    pcap = average_bars(figure, "PCAP")
    return [
        _check(
            "fig6: TP has the lowest coverage of the three predictors",
            tp.hit < lt.hit and tp.hit < pcap.hit,
            f"TP {tp.hit:.1%} vs LT {lt.hit:.1%}, PCAP {pcap.hit:.1%}",
        ),
        _check(
            "fig6: TP has the lowest misprediction rate",
            tp.miss <= lt.miss and tp.miss <= pcap.miss + 0.02,
            f"TP {tp.miss:.1%} vs LT {lt.miss:.1%}, PCAP {pcap.miss:.1%}",
        ),
        _check(
            "fig6: PCAP achieves the highest coverage",
            pcap.hit >= lt.hit - 0.01,
            f"PCAP {pcap.hit:.1%} vs LT {lt.hit:.1%}",
        ),
        _check(
            "fig6: PCAP mispredicts less than LT",
            pcap.miss < lt.miss,
            f"PCAP {pcap.miss:.1%} vs LT {lt.miss:.1%}",
        ),
    ]


def fig7_checks(figure: AccuracyFigure) -> list[ShapeCheck]:
    """Global accuracy claims (§6.2)."""
    tp = average_bars(figure, "TP")
    lt = average_bars(figure, "LT")
    pcap = average_bars(figure, "PCAP")
    return [
        _check(
            "fig7: coverage orders TP < LT <= PCAP",
            tp.hit < lt.hit and lt.hit <= pcap.hit + 0.02,
            f"TP {tp.hit:.1%}, LT {lt.hit:.1%}, PCAP {pcap.hit:.1%}",
        ),
        _check(
            "fig7: PCAP beats LT on mispredictions by roughly 2x",
            pcap.miss < lt.miss,
            f"PCAP {pcap.miss:.1%} vs LT {lt.miss:.1%}",
        ),
        _check(
            "fig7: all global misprediction rates exceed or match local-style TP",
            tp.miss <= lt.miss and tp.miss <= pcap.miss + 0.02,
            f"TP {tp.miss:.1%}, LT {lt.miss:.1%}, PCAP {pcap.miss:.1%}",
        ),
    ]


def fig8_checks(figure: EnergyFigure) -> list[ShapeCheck]:
    """Energy claims (§6.3)."""
    ideal = average_savings(figure, "Ideal")
    tp = average_savings(figure, "TP")
    lt = average_savings(figure, "LT")
    pcap = average_savings(figure, "PCAP")
    base_rows = [row["Base"] for row in figure.values()]
    idle_dominant = sum(
        1
        for bar in base_rows
        if bar.idle_short + bar.idle_long > 0.5
    )
    mplayer_exception = (
        "mplayer" not in figure
        or figure["mplayer"]["Base"].idle_long
        == min(row["Base"].idle_long for row in figure.values())
    )
    return [
        _check(
            "fig8: savings order TP <= LT <= PCAP <= Ideal",
            tp <= lt + 0.02 and lt <= pcap + 0.01 and pcap <= ideal,
            f"TP {tp:.1%}, LT {lt:.1%}, PCAP {pcap:.1%}, Ideal {ideal:.1%}",
        ),
        _check(
            "fig8: PCAP lands within a few points of the ideal predictor",
            ideal - pcap < 0.06,
            f"gap {ideal - pcap:.1%} (paper: 2%)",
        ),
        _check(
            "fig8: idle energy dominates the base system",
            idle_dominant == len(base_rows),
            f"{idle_dominant}/{len(base_rows)} apps idle-dominated",
        ),
        _check(
            "fig8: mplayer is the limited-idle outlier",
            mplayer_exception,
            "mplayer has the smallest idle>breakeven share",
        ),
    ]


def fig9_checks(figure: AccuracyFigure) -> list[ShapeCheck]:
    """Optimization claims (§6.4.1)."""
    pcap = average_bars(figure, "PCAP")
    pcap_h = average_bars(figure, "PCAPh")
    pcap_f = average_bars(figure, "PCAPf")
    pcap_fh = average_bars(figure, "PCAPfh")
    checks = [
        _check(
            "fig9: history cuts mispredictions roughly in half",
            pcap_h.miss < pcap.miss * 0.75,
            f"PCAP {pcap.miss:.1%} -> PCAPh {pcap_h.miss:.1%}",
        ),
        _check(
            "fig9: file descriptors help less than history",
            pcap_h.miss <= pcap_f.miss and pcap_f.miss <= pcap.miss,
            f"PCAPf {pcap_f.miss:.1%} between PCAPh {pcap_h.miss:.1%} "
            f"and PCAP {pcap.miss:.1%}",
        ),
        _check(
            "fig9: combining both is at least as accurate as history alone",
            pcap_fh.miss <= pcap_h.miss + 0.01,
            f"PCAPfh {pcap_fh.miss:.1%} vs PCAPh {pcap_h.miss:.1%}",
        ),
    ]
    if "mozilla" in figure:
        moz = figure["mozilla"]
        checks.append(
            _check(
                "fig9: mozilla's misses drop by roughly half with history",
                moz["PCAPh"].miss < moz["PCAP"].miss * 0.75,
                f"mozilla PCAP {moz['PCAP'].miss:.1%} -> "
                f"PCAPh {moz['PCAPh'].miss:.1%} (paper 26% -> 13%)",
            )
        )
    return checks


def fig10_checks(figure: AccuracyFigure) -> list[ShapeCheck]:
    """Table-reuse claims (§6.4.2)."""
    pcap = average_bars(figure, "PCAP")
    pcap_a = average_bars(figure, "PCAPa")
    lt = average_bars(figure, "LT")
    lt_a = average_bars(figure, "LTa")
    return [
        _check(
            "fig10: without reuse the primary predictor's share collapses",
            pcap_a.hit_primary < pcap.hit_primary * 0.6,
            f"PCAP primary {pcap.hit_primary:.1%} -> "
            f"PCAPa {pcap_a.hit_primary:.1%} (paper 70% -> 16%)",
        ),
        _check(
            "fig10: without reuse the backup predictor dominates PCAPa",
            pcap_a.hit_backup > pcap_a.hit_primary,
            f"PCAPa primary {pcap_a.hit_primary:.1%} vs "
            f"backup {pcap_a.hit_backup:.1%}",
        ),
        _check(
            "fig10: LT also loses primary coverage without tree reuse",
            lt_a.hit_primary < lt.hit_primary,
            f"LT primary {lt.hit_primary:.1%} -> LTa {lt_a.hit_primary:.1%}",
        ),
        _check(
            "fig10: with reuse the primary predictor dominates PCAP",
            pcap.hit_primary > pcap.hit_backup,
            f"PCAP primary {pcap.hit_primary:.1%} vs "
            f"backup {pcap.hit_backup:.1%}",
        ),
    ]


def all_checks(
    fig6: AccuracyFigure,
    fig7: AccuracyFigure,
    fig8: EnergyFigure,
    fig9: AccuracyFigure,
    fig10: AccuracyFigure,
) -> list[ShapeCheck]:
    """Every shape claim in one list (EXPERIMENTS.md material)."""
    return (
        fig6_checks(fig6)
        + fig7_checks(fig7)
        + fig8_checks(fig8)
        + fig9_checks(fig9)
        + fig10_checks(fig10)
    )


def render_checks(checks: list[ShapeCheck]) -> str:
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"[{status}] {check.name}\n        {check.detail}")
    passed = sum(1 for check in checks if check.passed)
    lines.append(f"{passed}/{len(checks)} shape checks passed")
    return "\n".join(lines)
