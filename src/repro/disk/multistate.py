"""Multi-power-state disk — the paper's §7 extension.

The paper suggests that "the sliding wait-window can be optimized to put
the disk into a lower power state immediately, and only shut down after
the wait-window elapses".  :class:`MultiStateDisk` implements that: when a
shutdown intent exists, the drive drops into a low-power idle state at the
*intent* time (typically the end of the triggering I/O) and spins down at
the scheduled shutdown time (after the wait-window).

The low-power idle state is assumed to be entered and left instantly with
negligible transition energy — representative of "active idle" vs
"low-power idle" modes on mobile drives, where only the full spin-down
carries a large penalty.
"""

from __future__ import annotations

from typing import Optional

from repro._tracing import LowPowerEntered, SpinUpDelay
from repro.disk.disk import GapReport, SimulatedDisk
from repro.disk.power_model import DiskPowerParameters
from repro.errors import DiskStateError
from repro.units import EPSILON


class MultiStateDisk(SimulatedDisk):
    """Disk with an intermediate low-power idle state.

    In addition to :meth:`schedule_shutdown`, callers may call
    :meth:`enter_low_power` to mark the moment the drive drops to the
    low-power idle state inside the current gap.  Energy between that
    moment and the shutdown (or the gap end, if the shutdown is cancelled
    by a new request) is charged at ``low_power_idle_power``.
    """

    def __init__(
        self,
        params: DiskPowerParameters,
        start_time: float = 0.0,
        *,
        tracer=None,
    ) -> None:
        super().__init__(params, start_time=start_time, tracer=tracer)
        self._low_power_at: Optional[float] = None

    def enter_low_power(self, time: float) -> None:
        """Drop to low-power idle at ``time`` within the current gap."""
        self._check_open()
        if self._gap_start is None or time < self._gap_start - EPSILON:
            raise DiskStateError(
                "low-power entry scheduled while the disk is busy"
            )
        if self._low_power_at is not None:
            raise DiskStateError("low-power idle already entered in this gap")
        self._low_power_at = max(time, self._gap_start)
        if self.tracer is not None:
            self.tracer.emit(LowPowerEntered(time=self._low_power_at))

    def serve(self, time: float, duration: float) -> Optional[GapReport]:
        report = super().serve(time, duration)
        if report is not None:
            self._low_power_at = None
        return report

    def _account_gap(
        self, report: GapReport, request_follows: bool = True
    ) -> None:
        low_power_at = self._low_power_at
        self._low_power_at = None
        if low_power_at is None or low_power_at >= report.end - EPSILON:
            super()._account_gap(report, request_follows=request_follows)
            return
        params = self.params
        long_period = report.length > self.breakeven_time
        spin_down_at = (
            report.shutdown_at if report.shutdown_at is not None else report.end
        )
        low_power_until = min(spin_down_at, report.end)
        full_idle = max(0.0, low_power_at - report.start)
        low_idle = max(0.0, low_power_until - low_power_at)
        self.ledger.add_idle(
            params.idle_power * full_idle, long_period=long_period
        )
        self.ledger.add_idle(
            params.low_power_idle_power * low_idle, long_period=long_period
        )
        if report.shutdown_at is None:
            return
        self.ledger.add_power_cycle(params.cycle_energy)
        off_window = report.end - report.shutdown_at
        residence = max(0.0, off_window - params.transition_time)
        self.ledger.add_standby(
            params.standby_power * residence, long_period=long_period
        )
        self.shutdown_count += 1
        self.spinup_count += 1
        if request_follows:
            remaining_spin_down = max(
                0.0, (report.shutdown_at + params.shutdown_time) - report.end
            )
            self.delayed_requests += 1
            wait = params.spinup_time + remaining_spin_down
            self.delay_seconds += wait
            irritating = off_window <= self.breakeven_time
            if irritating:
                self.irritating_delays += 1
            if self.tracer is not None:
                self.tracer.emit(
                    SpinUpDelay(
                        time=report.end, seconds=wait, irritating=irritating
                    )
                )
