"""Disk power/energy parameters and the breakeven time derivation.

The defaults reproduce the paper's Table 2 for the Fujitsu MHF 2043 AT
drive.  The *breakeven time* is derived from the parameters rather than
hard-coded: it is the idle period length ``L`` for which an immediate
shutdown consumes exactly as much energy as staying in the idle state,

    P_idle * L  ==  E_shutdown + E_spinup + P_standby * (L - T_sd - T_su)

which for Table 2's values gives ~5.43 s — the figure the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class DiskPowerParameters:
    """Electrical and timing parameters of a simulated drive.

    Attributes mirror the paper's Table 2.  Powers are watts, energies
    joules, delays seconds.
    """

    busy_power: float = 2.2
    idle_power: float = 0.95
    standby_power: float = 0.13
    spinup_energy: float = 4.4
    shutdown_energy: float = 0.36
    spinup_time: float = 1.6
    shutdown_time: float = 0.67
    #: Extension state (multi-state disks); unused by the 3-state model.
    low_power_idle_power: float = 0.55

    def __post_init__(self) -> None:
        ordered = (
            ("standby_power", self.standby_power),
            ("low_power_idle_power", self.low_power_idle_power),
            ("idle_power", self.idle_power),
            ("busy_power", self.busy_power),
        )
        values = [v for _, v in ordered]
        if any(v <= 0 for v in values):
            raise ConfigurationError("disk powers must be positive")
        if sorted(values) != values:
            raise ConfigurationError(
                "disk powers must satisfy standby <= low-power idle <= idle <= busy"
            )
        if self.spinup_energy < 0 or self.shutdown_energy < 0:
            raise ConfigurationError("transition energies must be non-negative")
        if self.spinup_time < 0 or self.shutdown_time < 0:
            raise ConfigurationError("transition delays must be non-negative")

    @property
    def transition_time(self) -> float:
        """Total shutdown + spin-up delay of one power cycle."""
        return self.shutdown_time + self.spinup_time

    @property
    def cycle_energy(self) -> float:
        """Total shutdown + spin-up energy of one power cycle."""
        return self.shutdown_energy + self.spinup_energy

    def breakeven_time(self) -> float:
        """Idle period length at which an immediate shutdown breaks even.

        Solves ``P_idle * L == E_cycle + P_standby * (L - T_trans)`` for
        ``L``.  For the Table 2 defaults this is ~5.43 s.
        """
        denominator = self.idle_power - self.standby_power
        if denominator <= 0:
            raise ConfigurationError(
                "idle power must exceed standby power for a finite breakeven"
            )
        numerator = self.cycle_energy - self.standby_power * self.transition_time
        return max(self.transition_time, numerator / denominator)

    def shutdown_saves_energy(self, off_window: float) -> bool:
        """True when shutting down for ``off_window`` seconds (measured from
        the shutdown decision to the next request) consumes less energy than
        idling for the same window."""
        return off_window > self.breakeven_time()

    def energy_idling(self, duration: float) -> float:
        """Energy of staying in the idle state for ``duration`` seconds."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return self.idle_power * duration

    def energy_shutdown_window(self, off_window: float) -> float:
        """Energy of a shutdown covering ``off_window`` seconds.

        The window spans from the moment the shutdown command is issued to
        the arrival of the next request: shutdown transition, standby
        residence, then spin-up.  If the window is shorter than the
        combined transition delays the drive still pays both transition
        energies (the request arrives mid-cycle).
        """
        if off_window < 0:
            raise ValueError("off_window must be non-negative")
        standby_residence = max(0.0, off_window - self.transition_time)
        return self.cycle_energy + self.standby_power * standby_residence


def fujitsu_mhf2043at() -> DiskPowerParameters:
    """The drive the paper simulates (Table 2)."""
    return DiskPowerParameters()
