"""Disk power states and the legal transition graph.

The simulated drive follows the classic three-state model used by the
paper's Table 2 (Fujitsu MHF 2043 AT):

* ``ACTIVE``  — servicing an I/O request (busy power);
* ``IDLE``    — platters spinning, no request in flight (idle power);
* ``STANDBY`` — spun down ("sleeping", standby power);

plus the two transitional pseudo-states that consume fixed energies over
fixed delays:

* ``SPINNING_DOWN`` — shutdown in progress;
* ``SPINNING_UP``   — spin-up in progress.

The extension in :mod:`repro.disk.multistate` adds ``LOW_POWER_IDLE``.
"""

from __future__ import annotations

import enum

from repro.errors import DiskStateError


class DiskState(enum.Enum):
    """Power state of the simulated hard disk."""

    ACTIVE = "active"
    IDLE = "idle"
    LOW_POWER_IDLE = "low_power_idle"
    SPINNING_DOWN = "spinning_down"
    STANDBY = "standby"
    SPINNING_UP = "spinning_up"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskState.{self.name}"


#: Legal state transitions.  Requests arriving in ``SPINNING_DOWN`` are
#: modelled as completing the shutdown and immediately spinning up, which
#: is why ``SPINNING_DOWN -> SPINNING_UP`` is legal.
LEGAL_TRANSITIONS: dict[DiskState, frozenset[DiskState]] = {
    DiskState.ACTIVE: frozenset({DiskState.IDLE}),
    DiskState.IDLE: frozenset(
        {DiskState.ACTIVE, DiskState.LOW_POWER_IDLE, DiskState.SPINNING_DOWN}
    ),
    DiskState.LOW_POWER_IDLE: frozenset(
        {DiskState.ACTIVE, DiskState.SPINNING_DOWN}
    ),
    DiskState.SPINNING_DOWN: frozenset(
        {DiskState.STANDBY, DiskState.SPINNING_UP}
    ),
    DiskState.STANDBY: frozenset({DiskState.SPINNING_UP}),
    DiskState.SPINNING_UP: frozenset({DiskState.ACTIVE, DiskState.IDLE}),
}


def check_transition(current: DiskState, target: DiskState) -> None:
    """Raise :class:`DiskStateError` unless ``current -> target`` is legal."""
    if target not in LEGAL_TRANSITIONS[current]:
        raise DiskStateError(
            f"illegal disk transition {current.name} -> {target.name}"
        )


def is_spun_up(state: DiskState) -> bool:
    """True when the platters are spinning (requests need no spin-up)."""
    return state in (DiskState.ACTIVE, DiskState.IDLE, DiskState.LOW_POWER_IDLE)
