"""Event-driven simulated hard disk with energy accounting.

The disk is driven by the energy simulator with three calls:

* :meth:`SimulatedDisk.serve` — an I/O request arrives;
* :meth:`SimulatedDisk.schedule_shutdown` — the power manager issues a
  shutdown inside the current idle gap;
* :meth:`SimulatedDisk.finalize` — the trace ended; close the ledger.

Because the Figure-8 ledger attributes idle energy by the *length class*
of the idle period it occurs in (shorter vs longer than breakeven), each
idle gap is resolved as a whole when the next request arrives, producing a
:class:`GapReport` the caller can use for hit/miss statistics.

Requests are serialized: a request arriving while the disk is still busy
starts when the previous one completes.  Spin-up latency is accounted as
energy only — the trace timeline is not stretched, matching the paper's
trace-driven methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._tracing import GapResolved, ShutdownCancelled, SpinUpDelay
from repro.disk.energy import EnergyBreakdown
from repro.disk.power_model import DiskPowerParameters
from repro.errors import DiskStateError
from repro.units import EPSILON


@dataclass(frozen=True, slots=True)
class GapReport:
    """Outcome of one resolved idle gap."""

    start: float
    end: float
    shutdown_at: Optional[float]

    @property
    def length(self) -> float:
        return self.end - self.start

    @property
    def off_window(self) -> Optional[float]:
        """Seconds from the shutdown command to the next request."""
        if self.shutdown_at is None:
            return None
        return self.end - self.shutdown_at


class SimulatedDisk:
    """Three-state disk (active / idle / standby) with an energy ledger."""

    def __init__(
        self,
        params: DiskPowerParameters,
        start_time: float = 0.0,
        *,
        tracer=None,
    ) -> None:
        self.params = params
        #: Structured-tracing sink (``None`` = disabled, zero overhead).
        self.tracer = tracer
        self.ledger = EnergyBreakdown()
        self.shutdown_count = 0
        self.spinup_count = 0
        #: Requests that had to wait for a spin-up (the request after
        #: every shutdown), and the total seconds they waited.
        self.delayed_requests = 0
        self.delay_seconds = 0.0
        #: Delays where the off-window was below breakeven — the user
        #: was actively working and "has to wait for the disk to spin
        #: up" (the paper's §6.3 irritation argument).
        self.irritating_delays = 0
        self._breakeven = params.breakeven_time()
        self._busy_until = start_time
        self._gap_start: Optional[float] = start_time
        self._shutdown_at: Optional[float] = None
        self._last_arrival = start_time
        self._finalized = False

    @property
    def breakeven_time(self) -> float:
        return self._breakeven

    @property
    def busy_until(self) -> float:
        """Completion time of the last request served so far."""
        return self._busy_until

    def serve(self, time: float, duration: float) -> Optional[GapReport]:
        """Serve a request arriving at ``time`` lasting ``duration`` seconds.

        Returns the :class:`GapReport` of the idle gap the request ended,
        or ``None`` when the disk was still busy (no gap).
        """
        if self._finalized:
            raise DiskStateError("disk already finalized")
        if duration < 0:
            raise ValueError("request duration must be non-negative")
        if time < self._last_arrival - EPSILON:
            raise DiskStateError(
                f"request arrivals must be non-decreasing: {time} after "
                f"{self._last_arrival}"
            )
        self._last_arrival = time
        if time < self._busy_until - EPSILON:
            # Back-to-back request: serialize behind the current one.  The
            # anticipated gap is swallowed, so a shutdown pending in it
            # never happens — drop it, or it would leak into the next gap
            # and corrupt the energy ledger.
            if self._shutdown_at is not None:
                if self.tracer is not None:
                    self.tracer.emit(
                        ShutdownCancelled(time=time, reason="back-to-back")
                    )
                self._shutdown_at = None
            self.ledger.add_busy(self.params.busy_power * duration)
            self._busy_until += duration
            self._gap_start = self._busy_until
            return None
        report = self._resolve_gap(end=time)
        self.ledger.add_busy(self.params.busy_power * duration)
        self._busy_until = time + duration
        self._gap_start = self._busy_until
        self._shutdown_at = None
        return report

    def schedule_shutdown(self, time: float) -> None:
        """Issue a shutdown at ``time`` (must fall inside the current gap)."""
        self._check_open()
        if self._gap_start is None or time < self._gap_start - EPSILON:
            raise DiskStateError(
                "shutdown scheduled while the disk is busy or before the gap"
            )
        if self._shutdown_at is not None:
            raise DiskStateError("a shutdown is already pending in this gap")
        self._shutdown_at = max(time, self._gap_start)

    def finalize(self, time: Optional[float] = None) -> Optional[GapReport]:
        """Close the ledger at ``time`` (default: last request completion)."""
        self._check_open()
        end = self._busy_until if time is None else max(time, self._busy_until)
        report = self._resolve_gap(end=end, request_follows=False)
        self._finalized = True
        return report

    def _check_open(self) -> None:
        if self._finalized:
            raise DiskStateError("disk already finalized")

    def _resolve_gap(
        self, end: float, request_follows: bool = True
    ) -> Optional[GapReport]:
        if self._gap_start is None:
            self._gap_start = end
            return None
        start = self._gap_start
        if end < start - EPSILON:
            raise DiskStateError(
                f"time went backwards: gap start {start}, next event {end}"
            )
        end = max(end, start)
        report = GapReport(start=start, end=end, shutdown_at=self._shutdown_at)
        if self.tracer is not None:
            self.tracer.emit(
                GapResolved(
                    time=report.end,
                    start=report.start,
                    length=report.length,
                    shutdown_at=report.shutdown_at,
                )
            )
        self._account_gap(report, request_follows=request_follows)
        self._gap_start = None
        self._shutdown_at = None
        return report

    def _account_gap(
        self, report: GapReport, request_follows: bool = True
    ) -> None:
        params = self.params
        ledger = self.ledger
        start = report.start
        end = report.end
        shutdown_at = report.shutdown_at
        long_period = end - start > self._breakeven
        if shutdown_at is None:
            ledger.add_idle(
                params.idle_power * (end - start), long_period=long_period
            )
            return
        on_idle = shutdown_at - start
        ledger.add_idle(params.idle_power * on_idle, long_period=long_period)
        ledger.add_power_cycle(params.cycle_energy)
        off_window = end - shutdown_at
        residence = max(0.0, off_window - params.transition_time)
        ledger.add_standby(
            params.standby_power * residence, long_period=long_period
        )
        self.shutdown_count += 1
        self.spinup_count += 1
        # The request ending this gap waits for the spin-up — plus the
        # tail of the spin-down if it arrived mid-transition.  A trailing
        # gap (trace end) has no following request and delays nobody.
        if request_follows:
            remaining_spin_down = max(
                0.0, (shutdown_at + params.shutdown_time) - end
            )
            self.delayed_requests += 1
            wait = params.spinup_time + remaining_spin_down
            self.delay_seconds += wait
            irritating = off_window <= self._breakeven
            if irritating:
                self.irritating_delays += 1
            if self.tracer is not None:
                self.tracer.emit(
                    SpinUpDelay(
                        time=report.end, seconds=wait, irritating=irritating
                    )
                )
