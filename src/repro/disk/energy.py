"""Energy ledger mirroring the components of the paper's Figure 8.

Every joule the simulated disk consumes is attributed to exactly one of
four buckets:

* ``busy``        — servicing I/O requests;
* ``idle_short``  — spinning idle inside periods no longer than breakeven;
* ``idle_long``   — spinning idle (or in standby) inside periods longer
                    than breakeven — the savings opportunity;
* ``power_cycle`` — shutdown + spin-up transition energy.

Standby residence energy is charged to the bucket of the idle period it
occurs in (virtually always ``idle_long``), matching the paper's
presentation where the residual "idle > breakeven" bar of a predictor is
whatever the predictor failed to eliminate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import approx_equal, non_negative


@dataclass(slots=True)
class EnergyBreakdown:
    """Mutable ledger of disk energy by Figure-8 component (joules)."""

    busy: float = 0.0
    idle_short: float = 0.0
    idle_long: float = 0.0
    power_cycle: float = 0.0
    #: Informational sub-component of the idle buckets: energy spent in the
    #: standby state (already included in idle_short/idle_long).
    standby: float = 0.0

    # The non_negative guard is inlined on the fast path: these run once
    # per disk access / idle gap, and for a non-negative value the clamp
    # is the identity, so `joules >= 0.0` adds the bit-identical amount.

    def add_busy(self, joules: float) -> None:
        self.busy += joules if joules >= 0.0 else non_negative(joules)

    def add_idle(self, joules: float, *, long_period: bool) -> None:
        if joules < 0.0:
            joules = non_negative(joules)
        if long_period:
            self.idle_long += joules
        else:
            self.idle_short += joules

    def add_standby(self, joules: float, *, long_period: bool) -> None:
        """Standby residence: charged to an idle bucket and tracked."""
        if joules < 0.0:
            joules = non_negative(joules)
        self.standby += joules
        self.add_idle(joules, long_period=long_period)

    def add_power_cycle(self, joules: float) -> None:
        self.power_cycle += joules if joules >= 0.0 else non_negative(joules)

    @property
    def total(self) -> float:
        return self.busy + self.idle_short + self.idle_long + self.power_cycle

    def fractions_of(self, baseline_total: float) -> dict[str, float]:
        """Each component as a fraction of ``baseline_total`` (the Base
        system's energy in Figure 8)."""
        if baseline_total <= 0:
            raise ValueError("baseline total must be positive")
        return {
            "busy": self.busy / baseline_total,
            "idle_short": self.idle_short / baseline_total,
            "idle_long": self.idle_long / baseline_total,
            "power_cycle": self.power_cycle / baseline_total,
        }

    def savings_versus(self, baseline: "EnergyBreakdown") -> float:
        """Fraction of the baseline's total energy this ledger avoided."""
        if baseline.total <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - self.total / baseline.total

    def combined(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Component-wise sum (for aggregating executions)."""
        return EnergyBreakdown(
            busy=self.busy + other.busy,
            idle_short=self.idle_short + other.idle_short,
            idle_long=self.idle_long + other.idle_long,
            power_cycle=self.power_cycle + other.power_cycle,
            standby=self.standby + other.standby,
        )

    def approx_equals(self, other: "EnergyBreakdown") -> bool:
        return (
            approx_equal(self.busy, other.busy)
            and approx_equal(self.idle_short, other.idle_short)
            and approx_equal(self.idle_long, other.idle_long)
            and approx_equal(self.power_cycle, other.power_cycle)
        )


def sum_breakdowns(parts: list[EnergyBreakdown]) -> EnergyBreakdown:
    """Aggregate many ledgers (e.g. one per execution) into one."""
    total = EnergyBreakdown()
    for part in parts:
        total = total.combined(part)
    return total
