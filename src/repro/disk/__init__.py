"""Disk power model substrate (paper Table 2).

Public surface:

* :class:`DiskPowerParameters` / :func:`fujitsu_mhf2043at` — electrical
  and timing parameters plus the derived breakeven time;
* :class:`SimulatedDisk` — event-driven three-state drive with the
  Figure-8 energy ledger;
* :class:`MultiStateDisk` — §7 extension with a low-power idle state;
* :class:`EnergyBreakdown` — the ledger itself;
* :class:`DiskState` — power states.
"""

from repro.disk.disk import GapReport, SimulatedDisk
from repro.disk.energy import EnergyBreakdown, sum_breakdowns
from repro.disk.multistate import MultiStateDisk
from repro.disk.power_model import DiskPowerParameters, fujitsu_mhf2043at
from repro.disk.states import (
    LEGAL_TRANSITIONS,
    DiskState,
    check_transition,
    is_spun_up,
)

__all__ = [
    "DiskPowerParameters",
    "DiskState",
    "EnergyBreakdown",
    "GapReport",
    "LEGAL_TRANSITIONS",
    "MultiStateDisk",
    "SimulatedDisk",
    "check_transition",
    "fujitsu_mhf2043at",
    "is_spun_up",
    "sum_breakdowns",
]
