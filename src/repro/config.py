"""Simulation configuration shared by predictors, engine, and benches."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.cache.page_cache import CacheConfig
from repro.disk.power_model import DiskPowerParameters, fujitsu_mhf2043at
from repro.errors import ConfigurationError

#: Environment variable naming the default worker count of the parallel
#: execution layer (:mod:`repro.sim.parallel`).
JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Default worker count for parallel experiment execution.

    Read from the ``REPRO_JOBS`` environment variable: a positive
    integer is used as-is, ``0`` means "one worker per CPU core", and an
    unset (or empty / whitespace-only) variable means serial execution
    (one worker).  Anything else — a non-integer, a negative count —
    raises :class:`~repro.errors.ConfigurationError` instead of silently
    falling back to a surprising default.
    """
    raw = os.environ.get(JOBS_ENV_VAR)
    if raw is None:
        return 1
    text = raw.strip()
    if not text:
        return 1
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV_VAR}={raw!r} is not a worker count; use a "
            "positive integer, or 0 for one worker per CPU core"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"{JOBS_ENV_VAR}={raw!r} is negative; use a positive "
            "integer, or 0 for one worker per CPU core"
        )
    if value == 0:
        return os.cpu_count() or 1
    return value


#: Environment variable enabling the fused multi-predictor sweep kernel
#: (:mod:`repro.sim.fused`) by default.
FUSED_ENV_VAR = "REPRO_FUSED"


#: Spellings :func:`default_fused` accepts (case-insensitive).
_FUSED_TRUE = ("1", "true", "yes", "on")
_FUSED_FALSE = ("0", "false", "no", "off")


def default_fused() -> bool:
    """Whether fused execution is enabled by default.

    Read from the ``REPRO_FUSED`` environment variable; ``1``/``true``/
    ``yes``/``on`` (case-insensitive) enable it, ``0``/``false``/``no``/
    ``off`` disable it, and an unset (or empty) variable leaves the
    classic per-cell path as the default.  Any other value raises
    :class:`~repro.errors.ConfigurationError` — a typo like
    ``REPRO_FUSED=ture`` must not silently disable the kernel.
    """
    raw = os.environ.get(FUSED_ENV_VAR)
    if raw is None:
        return False
    text = raw.strip().lower()
    if not text:
        return False
    if text in _FUSED_TRUE:
        return True
    if text in _FUSED_FALSE:
        return False
    raise ConfigurationError(
        f"{FUSED_ENV_VAR}={raw!r} is not a boolean; use one of "
        f"{'/'.join(_FUSED_TRUE)} or {'/'.join(_FUSED_FALSE)}"
    )


def resolve_fused(fused: "bool | None" = None) -> bool:
    """Normalize a fused-execution request (``None`` defers to the
    ``REPRO_FUSED`` environment variable)."""
    if fused is None:
        return default_fused()
    return bool(fused)


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """All knobs of one simulation run (paper §6 defaults).

    * ``wait_window`` — sliding wait-window of the dynamic predictors
      (1 s, §6.1);
    * ``timeout`` — the TP timer, also the backup predictor inside PCAP
      and LT (10 s, §6.1);
    * ``service_time`` — base disk busy time charged per (post-cache)
      access (seek + rotation), plus ``service_time_per_block`` for each
      4 KB block transferred; traces record request arrival, not
      duration, so the simulator models service time explicitly.
    """

    disk: DiskPowerParameters = field(default_factory=fujitsu_mhf2043at)
    cache: CacheConfig = field(default_factory=CacheConfig)
    wait_window: float = 1.0
    timeout: float = 10.0
    service_time: float = 0.010
    service_time_per_block: float = 0.0006

    def __post_init__(self) -> None:
        if self.wait_window < 0:
            raise ConfigurationError("wait window must be non-negative")
        if self.timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if self.service_time < 0 or self.service_time_per_block < 0:
            raise ConfigurationError("service times must be non-negative")
        if self.wait_window >= self.breakeven:
            raise ConfigurationError(
                "wait window must be shorter than the breakeven time"
            )

    @property
    def breakeven(self) -> float:
        """Breakeven time derived from the disk parameters (~5.43 s)."""
        return self.disk.breakeven_time()

    def access_duration(self, block_count: int) -> float:
        """Disk busy time of one access moving ``block_count`` blocks."""
        return self.service_time + self.service_time_per_block * block_count


def paper_config() -> SimulationConfig:
    """The configuration used throughout the paper's §6."""
    return SimulationConfig()
