"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every intentional error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration object carries contradictory or illegal values."""


class TraceError(ReproError):
    """A trace is malformed (events out of order, unknown pids, ...)."""


class TraceFormatError(TraceError):
    """Serialized trace text could not be parsed."""


class TraceStoreError(TraceError):
    """An on-disk trace store is missing, corrupt, or incompatible."""


class DiskStateError(ReproError):
    """An illegal disk state transition was requested."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class PredictorError(ReproError):
    """A predictor was driven outside its protocol (e.g. feedback for an
    idle period that was never announced)."""


class PersistenceError(ReproError):
    """A saved prediction table could not be loaded or written."""


class ExecutionError(ReproError):
    """The experiment execution layer could not complete a run (terminal
    cell failures, a broken worker pool, ...)."""


class CheckpointError(ExecutionError):
    """A checkpoint journal cannot be resumed — it was written by a run
    with incompatible provenance (different fused flag, variant set, or
    execution mode) and serving its entries would mix result shapes."""


class CellTimeoutError(ExecutionError):
    """One experiment cell exceeded its wall-clock timeout."""


class WorkerCrashError(ExecutionError):
    """A worker process died without reporting a result."""


class ServeError(ReproError):
    """The online DPM service (:mod:`repro.serve`) failed terminally."""


class ServeProtocolError(ServeError):
    """A serve-protocol frame is malformed or violates the handshake."""


class InjectedFault(ReproError):
    """A deliberate failure raised by the fault-injection harness
    (:mod:`repro.faults`); never raised outside an active fault plan."""


class FaultPlanError(ConfigurationError):
    """A fault-plan specification could not be parsed or is illegal."""
