"""Adaptive timeout — Douglis/Krishnan/Bershad-style feedback timers.

Background-section baseline (§2): "Both methods used feedback to enlarge
or to reduce the timeout based on whether the previous prediction was
correct.  If it was correct, the timeout was reduced; otherwise, it was
enlarged."

After each idle period the predictor evaluates what its timer did:

* the timer fired and the device-off window beat breakeven → correct →
  multiply the timeout by ``decrease_factor`` (< 1);
* the timer fired but the off window was too short (energy lost) →
  wrong → multiply by ``increase_factor`` (> 1);
* the timer never fired although the period exceeded breakeven (missed
  opportunity) → also reduce the timeout.

The timeout is clamped to ``[min_timeout, max_timeout]``.
"""

from __future__ import annotations

from repro.cache.filter import DiskAccess
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)


class AdaptiveTimeoutPredictor(LocalPredictor):
    """Multiplicative-feedback timeout predictor."""

    name = "AT"

    def __init__(
        self,
        breakeven: float,
        *,
        initial_timeout: float = 10.0,
        min_timeout: float = 1.0,
        max_timeout: float = 120.0,
        decrease_factor: float = 0.5,
        increase_factor: float = 2.0,
    ) -> None:
        if breakeven <= 0:
            raise ConfigurationError("breakeven must be positive")
        if not 0 < min_timeout <= initial_timeout <= max_timeout:
            raise ConfigurationError(
                "need 0 < min_timeout <= initial_timeout <= max_timeout"
            )
        if not 0 < decrease_factor < 1 < increase_factor:
            raise ConfigurationError(
                "need decrease_factor < 1 < increase_factor"
            )
        self.breakeven = breakeven
        self.timeout = initial_timeout
        self.min_timeout = min_timeout
        self.max_timeout = max_timeout
        self.decrease_factor = decrease_factor
        self.increase_factor = increase_factor
        #: Timeout in effect for the currently open idle period.
        self._armed_timeout = initial_timeout

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        self._armed_timeout = self.timeout
        return ShutdownIntent(
            delay=self.timeout, source=PredictorSource.PRIMARY
        )

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        self._armed_timeout = self.timeout
        return ShutdownIntent(
            delay=self.timeout, source=PredictorSource.PRIMARY
        )

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        armed = self._armed_timeout
        length = feedback.length
        if length > armed:
            off_window = length - armed
            if off_window > self.breakeven:
                self._scale(self.decrease_factor)
            else:
                self._scale(self.increase_factor)
        elif length > self.breakeven:
            # Long period the timer slept through: be more aggressive.
            self._scale(self.decrease_factor)

    def _scale(self, factor: float) -> None:
        self.timeout = min(
            self.max_timeout, max(self.min_timeout, self.timeout * factor)
        )
