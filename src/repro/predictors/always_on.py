"""The Base system: no power management at all (Figure 8, bar A).

The disk never spins down; all idle time burns idle power.  Implemented
both as a :class:`LocalPredictor` (never predicts) and as the omniscient
policy used directly by the energy simulator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.filter import DiskAccess
from repro.predictors.base import LocalPredictor, OmniscientPolicy, ShutdownIntent


class AlwaysOnPredictor(LocalPredictor):
    """Local predictor that never predicts a shutdown."""

    name = "Base"

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        return ShutdownIntent.never()


class AlwaysOnPolicy(OmniscientPolicy):
    """Gap-level policy: never shut down."""

    name = "Base"

    def shutdown_offset(self, gap_length: float) -> Optional[float]:
        return None

    def shutdown_offsets(self, gap_lengths: np.ndarray) -> np.ndarray:
        """Vectorized form: never shut down (all NaN)."""
        return np.full(len(gap_lengths), np.nan)
