"""Learning Tree (LT) — Chung, Benini & De Micheli's adaptive learning
tree (ICCAD 1999), the paper's strongest prior-work baseline (§2.1, §6).

LT discretizes idle periods and learns which *sequences* of idle-period
classes precede a long idle period: in Figure 2's example, two
shorter-than-breakeven periods followed by a long one teach the tree that
the pattern "short, short" predicts "long".

Implementation notes (documented deviations):

* The original tree manages multiple power states; following the paper's
  study we only predict shutdowns, so idle periods discretize into two
  classes — ``0`` (between wait-window and breakeven) and ``1`` (longer
  than breakeven).  Sub-wait-window gaps are filtered, as the paper's
  sliding-window discussion prescribes.
* The tree is represented as a map from history *suffixes* (up to the
  history length, paper value 8) to saturating 2-bit counters trained
  toward the observed next class.  Prediction walks from the longest
  matching suffix down and uses the first node with a confident opinion —
  equivalent to finding the deepest matching path in the adaptive tree.
* Like the paper's setup, LT gets the same wait-window and backup timeout
  as PCAP, "allowing a direct comparison", and its tree persists across
  executions (LTa discards it — Figure 10).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.cache.filter import DiskAccess
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)

#: History length the paper found best for LT (§6.1).
PAPER_LT_HISTORY = 8

#: 2-bit saturating counter bounds and decision threshold.
_COUNTER_MAX = 3
_COUNTER_MIN = 0
_PREDICT_LONG_AT = 2
_NEW_NODE_VALUE = {True: 1, False: 1}


class LearningTree:
    """Adaptive tree over idle-period class sequences (application level).

    Shared by all processes of one application and, unless discarded,
    across executions.
    """

    def __init__(self, max_depth: int = PAPER_LT_HISTORY) -> None:
        if max_depth <= 0:
            raise ConfigurationError("tree depth must be positive")
        self.max_depth = max_depth
        self._nodes: dict[tuple[int, ...], int] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def predict(self, history: tuple[int, ...]) -> Optional[bool]:
        """Predict the class of the next idle period.

        Returns ``True`` (long), ``False`` (short), or ``None`` when no
        trained path matches (still training — backup's turn).

        The deepest *saturated* node wins (a specific pattern the tree is
        sure about); otherwise the shallowest node decides.  Preferring
        unsaturated deep nodes would let once-seen 8-event patterns — in
        effect coin flips — override well-trained short patterns.
        """
        best: Optional[bool] = None
        for depth in range(min(len(history), self.max_depth), 0, -1):
            suffix = history[-depth:]
            counter = self._nodes.get(suffix)
            if counter is None:
                continue
            if counter in (_COUNTER_MIN, _COUNTER_MAX):
                return counter >= _PREDICT_LONG_AT
            best = counter >= _PREDICT_LONG_AT
        return best

    def train(self, history: tuple[int, ...], outcome_long: bool) -> None:
        """Observe that ``history`` was followed by a long/short period.

        Every suffix of the history (each tree level along the matching
        path) is reinforced toward the outcome; unseen suffixes are grown
        with a weakly-biased initial counter.
        """
        if not history:
            return
        step = 1 if outcome_long else -1
        for depth in range(1, min(len(history), self.max_depth) + 1):
            suffix = history[-depth:]
            counter = self._nodes.get(suffix)
            if counter is None:
                self._nodes[suffix] = _NEW_NODE_VALUE[outcome_long]
            else:
                self._nodes[suffix] = min(
                    _COUNTER_MAX, max(_COUNTER_MIN, counter + step)
                )

    def clear(self) -> None:
        self._nodes.clear()


class LTPredictor(LocalPredictor):
    """Per-process LT front-end sharing an application-level tree."""

    name = "LT"

    def __init__(
        self,
        tree: LearningTree,
        *,
        wait_window: float = 1.0,
        backup_timeout: Optional[float] = 10.0,
    ) -> None:
        if wait_window < 0:
            raise ConfigurationError("wait window must be non-negative")
        if backup_timeout is not None and backup_timeout <= 0:
            raise ConfigurationError("backup timeout must be positive")
        self.tree = tree
        self.wait_window = wait_window
        self.backup_timeout = backup_timeout
        self._history: deque[int] = deque(maxlen=tree.max_depth)

    def begin_execution(self, start_time: float) -> None:
        self._history.clear()

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        return self._backup_intent()

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        prediction = self.tree.predict(tuple(self._history))
        if prediction is True:
            return ShutdownIntent(
                delay=self.wait_window, source=PredictorSource.PRIMARY
            )
        # Predicted short (or still training): the disk stays on for now
        # and the backup timeout covers the period — a "short" prediction
        # only suppresses the *immediate* shutdown, it cannot pin the
        # disk on through what turns out to be a long idle period.
        return self._backup_intent()

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        if feedback.idle_class == IdleClass.SUB_WINDOW:
            return
        outcome_long = feedback.idle_class == IdleClass.LONG
        self.tree.train(tuple(self._history), outcome_long)
        self._history.append(1 if outcome_long else 0)

    def _backup_intent(self) -> ShutdownIntent:
        if self.backup_timeout is None:
            return ShutdownIntent.never()
        return ShutdownIntent(
            delay=self.backup_timeout, source=PredictorSource.BACKUP
        )


class LTVariant:
    """Application-level LT state + per-process factory (mirrors
    :class:`~repro.core.variants.PCAPVariant`)."""

    def __init__(
        self,
        *,
        max_depth: int = PAPER_LT_HISTORY,
        wait_window: float = 1.0,
        backup_timeout: Optional[float] = 10.0,
        reuse_tree: bool = True,
    ) -> None:
        self.tree = LearningTree(max_depth=max_depth)
        self.wait_window = wait_window
        self.backup_timeout = backup_timeout
        self.reuse_tree = reuse_tree

    @property
    def name(self) -> str:
        return "LT" if self.reuse_tree else "LTa"

    def create_local(self, pid: int) -> LTPredictor:
        return LTPredictor(
            self.tree,
            wait_window=self.wait_window,
            backup_timeout=self.backup_timeout,
        )

    def on_execution_end(self) -> None:
        if not self.reuse_tree:
            self.tree.clear()

    @property
    def table_size(self) -> int:
        return len(self.tree)
