"""Srivastava et al.'s predictive shutdown (IEEE TVLSI 1996).

Background-section baseline (§2): "Srivastava et al. suggested that the
length of an idle period could be predicted by the length of the
previous busy period.  A long idle period often followed a short busy
period."  Their filter exploits the *L-shaped* scatter of (busy, idle)
pairs in event-driven workloads: shut down after short busy periods,
stay up after long ones.

The busy period is the burst of accesses separated by sub-wait-window
gaps; a burst ends when a visible idle period starts.  The predictor
tracks the current burst's span and, after each access, predicts a long
idle period iff the burst so far is shorter than ``busy_threshold``.
"""

from __future__ import annotations

from repro.cache.filter import DiskAccess
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)


class PreviousBusyPredictor(LocalPredictor):
    """Shut down after short busy bursts (the L-shape filter)."""

    name = "PB"

    def __init__(
        self,
        *,
        busy_threshold: float = 2.0,
        wait_window: float = 1.0,
    ) -> None:
        if busy_threshold <= 0:
            raise ConfigurationError("busy threshold must be positive")
        if wait_window < 0:
            raise ConfigurationError("wait window must be non-negative")
        self.busy_threshold = busy_threshold
        self.wait_window = wait_window
        self._burst_start: float | None = None
        self._last_access: float | None = None

    def begin_execution(self, start_time: float) -> None:
        self._burst_start = None
        self._last_access = None

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        if self._burst_start is None:
            self._burst_start = access.time
        self._last_access = access.time
        busy_span = access.time - self._burst_start
        if busy_span < self.busy_threshold:
            return ShutdownIntent(
                delay=self.wait_window, source=PredictorSource.PRIMARY
            )
        return ShutdownIntent.never()

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        # A visible idle period ends the burst; sub-window gaps don't.
        if feedback.idle_class != IdleClass.SUB_WINDOW:
            self._burst_start = None
