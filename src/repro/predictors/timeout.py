"""The timeout predictor (TP) — the paper's §2 workhorse baseline.

A timer starts whenever the process becomes idle; when it expires the
disk is shut down.  The paper uses a 10-second timer ("low mispredictions
and good energy savings in our applications") both standalone and as the
backup predictor inside PCAP and LT; §6.3 also evaluates a timeout equal
to the breakeven time (5.43 s) per Karlin et al.'s competitive argument.
"""

from __future__ import annotations

from repro.cache.filter import DiskAccess
from repro.errors import ConfigurationError
from repro.predictors.base import (
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)

#: The paper's timeout value (§6.1).
PAPER_TIMEOUT = 10.0


class TimeoutPredictor(LocalPredictor):
    """Shut down ``timeout`` seconds after the process's last access."""

    name = "TP"

    def __init__(self, timeout: float = PAPER_TIMEOUT) -> None:
        if timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        self.timeout = timeout
        self._intent = ShutdownIntent(
            delay=timeout, source=PredictorSource.PRIMARY
        )

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        return self._intent

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        return self._intent
