"""The Ideal predictor (Figure 8, bar B).

With perfect knowledge of every idle period, the ideal predictor shuts
the disk down at the very start of every period longer than the
breakeven time and never touches shorter ones.  It still pays the
shutdown/spin-up cycle energy — which is why even the ideal predictor
eliminates only ~78 % of the energy in the paper, not 100 %.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.predictors.base import OmniscientPolicy


class OraclePolicy(OmniscientPolicy):
    """Shut down immediately in every gap longer than breakeven."""

    name = "Ideal"

    def __init__(self, breakeven: float) -> None:
        if breakeven <= 0:
            raise ConfigurationError("breakeven time must be positive")
        self.breakeven = breakeven

    def shutdown_offset(self, gap_length: float) -> Optional[float]:
        if gap_length > self.breakeven:
            return 0.0
        return None

    def shutdown_offsets(self, gap_lengths: np.ndarray) -> np.ndarray:
        """Vectorized form: 0.0 past breakeven, NaN (= never) below."""
        return np.where(gap_lengths > self.breakeven, 0.0, np.nan)
