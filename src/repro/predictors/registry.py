"""Predictor specifications and the name → factory registry.

A :class:`PredictorSpec` is everything the simulation engine needs to run
one predictor over one application: a per-process local-predictor factory
(sharing application-level state such as PCAP's table), an optional
end-of-execution hook (table reuse policy), and — for the Ideal and Base
policies that are not realizable online — an omniscient gap-level policy
instead.

Specs are *stateful* (they own the shared tables) and therefore created
fresh per (application × predictor) experiment via :func:`make_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import get_close_matches
from typing import Callable, Optional

from repro.core.variants import (
    PCAPVariant,
    PCAPVariantConfig,
    pcap,
    pcap_a,
    pcap_c,
    pcap_f,
    pcap_fh,
    pcap_h,
    pcap_p,
)
from repro.errors import ConfigurationError
from repro.predictors.adaptive_timeout import AdaptiveTimeoutPredictor
from repro.predictors.always_on import AlwaysOnPolicy
from repro.predictors.base import LocalPredictor, OmniscientPolicy
from repro.predictors.exponential_average import ExponentialAveragePredictor
from repro.predictors.learned import (
    LearnedSkiRentalVariant,
    PIControllerVariant,
    QDPMVariant,
)
from repro.predictors.learning_tree import LTVariant
from repro.predictors.oracle import OraclePolicy
from repro.predictors.previous_busy import PreviousBusyPredictor
from repro.predictors.stochastic import StochasticTimeoutPredictor
from repro.predictors.timeout import TimeoutPredictor
from repro.config import SimulationConfig


@dataclass(slots=True)
class PredictorSpec:
    """One runnable predictor configuration.

    Exactly one of ``local_factory`` / ``omniscient`` is set.
    """

    name: str
    local_factory: Optional[Callable[[int], LocalPredictor]] = None
    omniscient: Optional[OmniscientPolicy] = None
    #: Called at each application exit (table-reuse policy).
    end_execution_hook: Optional[Callable[[], None]] = None
    #: Current size of the shared prediction structure, if any.
    table_size_fn: Optional[Callable[[], int]] = None
    #: Declares that every predictor the factory builds is *stateless
    #: with a constant intent*: ``initial_intent`` and ``on_access``
    #: always return ``ShutdownIntent(delay=constant_intent_delay,
    #: source=PRIMARY)`` and ``on_idle_end`` is a no-op (the timeout
    #: predictor's contract).  The fused kernel
    #: (:mod:`repro.sim.fused`) uses this to run such lanes without
    #: materializing per-process predictor state; results stay
    #: bit-identical because the global ready time of a constant-delay
    #: predictor set is exactly ``max(anchors) + delay``.  Leave
    #: ``None`` for anything stateful.
    constant_intent_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.local_factory is None) == (self.omniscient is None):
            raise ConfigurationError(
                "spec needs exactly one of local_factory / omniscient"
            )

    @property
    def is_omniscient(self) -> bool:
        return self.omniscient is not None

    def on_execution_end(self) -> None:
        if self.end_execution_hook is not None:
            self.end_execution_hook()

    @property
    def table_size(self) -> Optional[int]:
        return self.table_size_fn() if self.table_size_fn else None


def tp_spec(
    config: SimulationConfig,
    timeout: Optional[float] = None,
    name: Optional[str] = None,
) -> PredictorSpec:
    """The timeout predictor; ``timeout`` overrides the config's timer
    (used for the breakeven-timeout variant of §6.3)."""
    value = config.timeout if timeout is None else timeout
    if name is None:
        name = "TP" if timeout is None else f"TP({value:.2f}s)"
    return PredictorSpec(
        name=name,
        local_factory=lambda pid: TimeoutPredictor(value),
        constant_intent_delay=value,
    )


def pcap_spec(
    config: SimulationConfig, variant: Optional[PCAPVariantConfig] = None
) -> PredictorSpec:
    """A PCAP family member (base variant by default)."""
    if variant is None:
        variant = pcap()
    resolved = PCAPVariantConfig(
        wait_window=config.wait_window,
        backup_timeout=config.timeout,
        history_length=variant.history_length,
        use_file_descriptor=variant.use_file_descriptor,
        reuse_table=variant.reuse_table,
        share_table_across_processes=variant.share_table_across_processes,
        use_confidence=variant.use_confidence,
        table_capacity=variant.table_capacity,
    )
    shared = PCAPVariant(resolved)
    return PredictorSpec(
        name=shared.name,
        local_factory=shared.create_local,
        end_execution_hook=shared.on_execution_end,
        table_size_fn=lambda: shared.table_size,
    )


def lt_spec(
    config: SimulationConfig,
    *,
    reuse_tree: bool = True,
    max_depth: Optional[int] = None,
) -> PredictorSpec:
    """Learning Tree (LT), or LTa when ``reuse_tree`` is False."""
    kwargs = {} if max_depth is None else {"max_depth": max_depth}
    shared = LTVariant(
        wait_window=config.wait_window,
        backup_timeout=config.timeout,
        reuse_tree=reuse_tree,
        **kwargs,
    )
    return PredictorSpec(
        name=shared.name,
        local_factory=shared.create_local,
        end_execution_hook=shared.on_execution_end,
        table_size_fn=lambda: shared.table_size,
    )


def oracle_spec(config: SimulationConfig) -> PredictorSpec:
    return PredictorSpec(
        name="Ideal", omniscient=OraclePolicy(config.breakeven)
    )


def base_spec() -> PredictorSpec:
    return PredictorSpec(name="Base", omniscient=AlwaysOnPolicy())


def exp_spec(config: SimulationConfig, alpha: float = 0.5) -> PredictorSpec:
    return PredictorSpec(
        name="EXP",
        local_factory=lambda pid: ExponentialAveragePredictor(
            config.breakeven, alpha=alpha, wait_window=config.wait_window
        ),
    )


def at_spec(config: SimulationConfig) -> PredictorSpec:
    return PredictorSpec(
        name="AT",
        local_factory=lambda pid: AdaptiveTimeoutPredictor(
            config.breakeven, initial_timeout=config.timeout
        ),
    )


def pb_spec(config: SimulationConfig, busy_threshold: float = 2.0) -> PredictorSpec:
    return PredictorSpec(
        name="PB",
        local_factory=lambda pid: PreviousBusyPredictor(
            busy_threshold=busy_threshold, wait_window=config.wait_window
        ),
    )


def st_spec(config: SimulationConfig) -> PredictorSpec:
    return PredictorSpec(
        name="ST",
        local_factory=lambda pid: StochasticTimeoutPredictor(config.disk),
    )


def qdpm_spec(
    config: SimulationConfig,
    *,
    epsilon: float = QDPMVariant.DEFAULT_EPSILON,
    learning_rate: float = QDPMVariant.DEFAULT_LEARNING_RATE,
    discount: float = QDPMVariant.DEFAULT_DISCOUNT,
    seed: int = QDPMVariant.DEFAULT_SEED,
    name: Optional[str] = None,
) -> PredictorSpec:
    """Q-DPM: tabular Q-learning with deterministic seeded exploration.

    Non-default hyperparameters are embedded in the spec name (and
    therefore in fused lane labels and artifact-cache variant
    fingerprints) unless an explicit ``name`` overrides it.
    """
    shared = QDPMVariant(
        config,
        epsilon=epsilon,
        learning_rate=learning_rate,
        discount=discount,
        seed=seed,
    )
    return PredictorSpec(
        name=shared.name if name is None else name,
        local_factory=shared.create_local,
        end_execution_hook=shared.on_execution_end,
        table_size_fn=lambda: shared.table_size,
    )


def ski_spec(
    config: SimulationConfig,
    *,
    lam: float = LearnedSkiRentalVariant.DEFAULT_LAMBDA,
    name: Optional[str] = None,
) -> PredictorSpec:
    """Learning-augmented ski rental over a PCAP advice table.

    ``lam`` is the Antoniadis et al. robustness parameter: 0 trusts the
    advice fully (pure PCAP, no backup), 1 ignores it (the breakeven
    timeout).  A non-default λ is embedded in the spec name.
    """
    shared = LearnedSkiRentalVariant(config, lam=lam)
    return PredictorSpec(
        name=shared.name if name is None else name,
        local_factory=shared.create_local,
        end_execution_hook=shared.on_execution_end,
        table_size_fn=lambda: shared.table_size,
    )


def pi_spec(
    config: SimulationConfig,
    *,
    setpoint: float = PIControllerVariant.DEFAULT_SETPOINT,
    kp: float = PIControllerVariant.DEFAULT_KP,
    ki: float = PIControllerVariant.DEFAULT_KI,
    smoothing: float = PIControllerVariant.DEFAULT_SMOOTHING,
    name: Optional[str] = None,
) -> PredictorSpec:
    """PI feedback controller steering its timeout to a slowdown setpoint.

    Non-default gains are embedded in the spec name (and therefore in
    fused lane labels and artifact-cache variant fingerprints).
    """
    shared = PIControllerVariant(
        config, setpoint=setpoint, kp=kp, ki=ki, smoothing=smoothing
    )
    return PredictorSpec(
        name=shared.name if name is None else name,
        local_factory=shared.create_local,
        end_execution_hook=shared.on_execution_end,
        table_size_fn=lambda: shared.table_size,
    )


#: Names accepted by :func:`make_spec`.
KNOWN_PREDICTORS = (
    "Base",
    "Ideal",
    "TP",
    "TP-BE",
    "LT",
    "LTa",
    "PCAP",
    "PCAPh",
    "PCAPf",
    "PCAPfh",
    "PCAPa",
    "PCAPc",
    "PCAPp",
    "EXP",
    "AT",
    "PB",
    "ST",
    "QDPM",
    "SKI",
    "PI",
)


def make_spec(name: str, config: SimulationConfig) -> PredictorSpec:
    """Build a fresh spec for a predictor by its report name."""
    builders: dict[str, Callable[[], PredictorSpec]] = {
        "Base": base_spec,
        "Ideal": lambda: oracle_spec(config),
        "TP": lambda: tp_spec(config),
        "TP-BE": lambda: tp_spec(config, timeout=config.breakeven, name="TP-BE"),
        "LT": lambda: lt_spec(config),
        "LTa": lambda: lt_spec(config, reuse_tree=False),
        "PCAP": lambda: pcap_spec(config, pcap()),
        "PCAPh": lambda: pcap_spec(config, pcap_h()),
        "PCAPf": lambda: pcap_spec(config, pcap_f()),
        "PCAPfh": lambda: pcap_spec(config, pcap_fh()),
        "PCAPa": lambda: pcap_spec(config, pcap_a()),
        "PCAPc": lambda: pcap_spec(config, pcap_c()),
        "PCAPp": lambda: pcap_spec(config, pcap_p()),
        "EXP": lambda: exp_spec(config),
        "AT": lambda: at_spec(config),
        "PB": lambda: pb_spec(config),
        "ST": lambda: st_spec(config),
        "QDPM": lambda: qdpm_spec(config),
        "SKI": lambda: ski_spec(config),
        "PI": lambda: pi_spec(config),
    }
    # Resolve the name *before* calling the builder: a KeyError raised
    # inside a builder must surface as the bug it is, not be misreported
    # as an unknown predictor name.
    builder = builders.get(name)
    if builder is None:
        close = get_close_matches(name, KNOWN_PREDICTORS, n=3, cutoff=0.4)
        hint = f"; did you mean {' or '.join(close)}?" if close else ""
        raise ConfigurationError(
            f"unknown predictor {name!r}{hint} "
            f"(known: {', '.join(KNOWN_PREDICTORS)})"
        )
    return builder()
