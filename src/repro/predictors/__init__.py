"""Shutdown predictors: the protocol, baselines, and classic schemes."""

from repro.predictors.adaptive_timeout import AdaptiveTimeoutPredictor
from repro.predictors.always_on import AlwaysOnPolicy, AlwaysOnPredictor
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    OmniscientPolicy,
    PredictorSource,
    ShutdownIntent,
    classify_gap,
)
from repro.predictors.exponential_average import ExponentialAveragePredictor
from repro.predictors.learning_tree import (
    PAPER_LT_HISTORY,
    LearningTree,
    LTPredictor,
    LTVariant,
)
from repro.predictors.oracle import OraclePolicy
from repro.predictors.previous_busy import PreviousBusyPredictor
from repro.predictors.stochastic import StochasticTimeoutPredictor
from repro.predictors.registry import (
    KNOWN_PREDICTORS,
    PredictorSpec,
    at_spec,
    base_spec,
    exp_spec,
    lt_spec,
    make_spec,
    oracle_spec,
    pb_spec,
    pcap_spec,
    st_spec,
    tp_spec,
)
from repro.predictors.timeout import PAPER_TIMEOUT, TimeoutPredictor

__all__ = [
    "AdaptiveTimeoutPredictor",
    "AlwaysOnPolicy",
    "AlwaysOnPredictor",
    "ExponentialAveragePredictor",
    "IdleClass",
    "IdleFeedback",
    "KNOWN_PREDICTORS",
    "LTPredictor",
    "LTVariant",
    "LearningTree",
    "LocalPredictor",
    "OmniscientPolicy",
    "OraclePolicy",
    "PreviousBusyPredictor",
    "StochasticTimeoutPredictor",
    "PAPER_LT_HISTORY",
    "PAPER_TIMEOUT",
    "PredictorSource",
    "PredictorSpec",
    "ShutdownIntent",
    "TimeoutPredictor",
    "at_spec",
    "base_spec",
    "classify_gap",
    "exp_spec",
    "lt_spec",
    "make_spec",
    "oracle_spec",
    "pb_spec",
    "st_spec",
    "pcap_spec",
    "tp_spec",
]
