"""Distribution-optimal stochastic timeout.

Background-section baseline (§2): the stochastic approaches (Benini et
al., Chung et al., Qiu & Pedram, Simunic et al.) model I/O arrivals as a
random process and *pre-compute* the policy that minimizes expected
energy; the paper notes they "usually require off-line preprocessing
... and problems may arise if the workload changes".

This implementation captures that family's essence in renewal form: it
maintains an empirical histogram of observed idle-period lengths and,
after each access, arms the timeout value that minimizes the *expected*
energy of the upcoming idle period under that distribution,

    E[energy(τ)] = Σ_L p(L) · [ P_idle·min(L,τ) + 1{L>τ}·E_cycle
                                + 1{L>τ}·P_sb·max(0, L−τ−T_tr) ]

re-optimized online (the "interpolation at runtime" of Chung et al.).
With no history yet it falls back to the breakeven timeout (Karlin's
2-competitive choice).
"""

from __future__ import annotations

import bisect

from repro.cache.filter import DiskAccess
from repro.disk.power_model import DiskPowerParameters
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)


class StochasticTimeoutPredictor(LocalPredictor):
    """Timeout re-derived online from the empirical idle distribution."""

    name = "ST"

    def __init__(
        self,
        disk: DiskPowerParameters,
        *,
        max_samples: int = 512,
        reoptimize_every: int = 8,
    ) -> None:
        if max_samples <= 0 or reoptimize_every <= 0:
            raise ConfigurationError(
                "sample and reoptimization counts must be positive"
            )
        self.disk = disk
        self.max_samples = max_samples
        self.reoptimize_every = reoptimize_every
        self._samples: list[float] = []
        self._since_optimize = 0
        self._timeout = disk.breakeven_time()

    @property
    def timeout(self) -> float:
        return self._timeout

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        return ShutdownIntent(
            delay=self._timeout, source=PredictorSource.PRIMARY
        )

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        return ShutdownIntent(
            delay=self._timeout, source=PredictorSource.PRIMARY
        )

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        bisect.insort(self._samples, feedback.length)
        if len(self._samples) > self.max_samples:
            # Drop the oldest by value-agnostic thinning: remove every
            # other sample, halving resolution but keeping the shape.
            self._samples = self._samples[::2]
        self._since_optimize += 1
        if self._since_optimize >= self.reoptimize_every:
            self._since_optimize = 0
            self._timeout = self._optimal_timeout()

    def expected_energy(self, timeout: float) -> float:
        """Expected idle-period energy when arming ``timeout``."""
        disk = self.disk
        total = 0.0
        for length in self._samples:
            if length <= timeout:
                total += disk.idle_power * length
            else:
                total += (
                    disk.idle_power * timeout
                    + disk.cycle_energy
                    + disk.standby_power
                    * max(0.0, length - timeout - disk.transition_time)
                )
        return total / len(self._samples)

    def _optimal_timeout(self) -> float:
        """Candidate timeouts need only be the observed lengths (the
        objective is piecewise linear between them) plus breakeven."""
        if not self._samples:
            return self.disk.breakeven_time()
        candidates = {0.0, self.disk.breakeven_time()}
        candidates.update(self._samples)
        candidates.add(self._samples[-1] + 1.0)  # "never" within horizon
        best = min(sorted(candidates), key=self.expected_energy)
        return max(best, 0.0)
