"""Learning-augmented and adaptive shutdown predictors.

The paper's claim is that PC-based prediction beats timeout- and
heuristic-based shutdown policies.  This package supplies the modern
field that claim is measured against (see ``docs/predictors.md``):

* :mod:`repro.predictors.learned.qdpm` — **Q-DPM**, tabular model-free
  Q-learning over a discretized idle-gap state with deterministic
  seeded exploration (Li et al., "Online Learning for DPM",
  arXiv:0710.4739);
* :mod:`repro.predictors.learned.ski_rental` — **LearnedSkiRental**,
  a learning-augmented ski-rental policy consuming PCAP's per-PC table
  as its advice source and hedging with a robustness parameter λ
  (Antoniadis et al., arXiv:2110.13116);
* :mod:`repro.predictors.learned.feedback` — **PI**, a
  control-theoretic feedback controller steering its timeout so the
  observed slowdown tracks a setpoint (Cerf et al., arXiv:2107.02426;
  implementation idiom of nrm-legacy's ``ddcmpolicy``).

All three are ordinary :class:`~repro.predictors.base.LocalPredictor`
families with application-level shared state (the PCAP pattern), so the
fused kernel's generic lane, the fleet engine, and every execution
substrate drive them unchanged and bit-identically.  Determinism is a
hard contract: no wall clock, no global RNG — Q-DPM's exploration is a
counter-indexed hash stream, so equal seeds give equal results across
serial, pooled, fused, store-backed, and crash-retried runs.
"""

from repro.predictors.learned.feedback import (
    PIControllerVariant,
    PIFeedbackPredictor,
)
from repro.predictors.learned.qdpm import (
    QDPMPredictor,
    QDPMVariant,
    exploration_draw,
)
from repro.predictors.learned.ski_rental import (
    LearnedSkiRentalPredictor,
    LearnedSkiRentalVariant,
    multistate_schedule,
)

__all__ = [
    "LearnedSkiRentalPredictor",
    "LearnedSkiRentalVariant",
    "PIControllerVariant",
    "PIFeedbackPredictor",
    "QDPMPredictor",
    "QDPMVariant",
    "exploration_draw",
    "multistate_schedule",
]
