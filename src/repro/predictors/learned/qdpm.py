"""Q-DPM — tabular model-free Q-learning over idle-gap states.

Li et al. ("Online Learning for Dynamic Power Management",
arXiv:0710.4739) frame shutdown policy selection as a reinforcement
learning problem: the controller observes a discretized idle-history
state, picks a shutdown delay from a small action ladder, and updates a
Q-table from the energy outcome of each finished gap.

This implementation keeps the discrete tabular shape but adapts it to
the library's event-driven predictor protocol:

* **State** — the idle classes of the last two finished (non
  sub-window) gaps of the owning process, each encoded as
  ``0`` (no history yet), ``1`` (short) or ``2`` (long): nine states
  plus the cold-start corner.
* **Actions** — a four-rung delay ladder derived from the simulation
  configuration: shut down at the wait-window (the aggressive
  PCAP-style rung), at the breakeven time (the ski-rental rung), at the
  backup timeout (the conservative TP rung), or never.
* **Reward** — computed from the realized gap length against the armed
  delay: ``+1`` for a shutdown whose device-off window beats breakeven,
  ``-1`` for a premature fire or a long gap slept through, ``+0.5`` for
  correctly staying up through a short gap (see :meth:`QDPMVariant.reward`).
* **Exploration** — ε-greedy, but the coin is a *counter-indexed
  splitmix64 hash stream* rather than a stateful RNG object: draw ``n``
  is a pure function of ``(seed, n)``.  Because the engine's call order
  is deterministic, every execution substrate (serial, pooled, fused,
  store-backed, resilient retry) consumes the identical stream — the
  bit-identity contract the fused kernel and the artifact cache rely
  on.

The Q-table is shared per *application* (the PCAP pattern, §4.2): all
processes and executions of one experiment cell learn into the same
table, and learning persists across executions within the cell.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.filter import DiskAccess
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)

_MASK64 = (1 << 64) - 1

#: Idle-class encoding of the state tuple components.
_NO_HISTORY = 0
_SHORT = 1
_LONG = 2


def exploration_draw(seed: int, counter: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` — splitmix64 of a counter.

    A pure function of ``(seed, counter)``: no RNG object, no hidden
    state, so replaying the same decision sequence reproduces the same
    draws no matter which execution substrate replays it.
    """
    x = (seed + (counter + 1) * 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0**64


class QDPMVariant:
    """Application-level Q-DPM state plus a per-process predictor factory.

    Owns the shared Q-table, the action ladder, and the exploration
    draw counter; manufactures the per-process :class:`QDPMPredictor`
    instances bound to it (the :class:`~repro.core.variants.PCAPVariant`
    pattern).
    """

    #: Default hyperparameters (also the bare-name ``QDPM`` spec).
    DEFAULT_EPSILON = 0.1
    DEFAULT_LEARNING_RATE = 0.2
    DEFAULT_DISCOUNT = 0.5
    DEFAULT_SEED = 0

    def __init__(
        self,
        config: SimulationConfig,
        *,
        epsilon: float = DEFAULT_EPSILON,
        learning_rate: float = DEFAULT_LEARNING_RATE,
        discount: float = DEFAULT_DISCOUNT,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError("learning rate must be in (0, 1]")
        if not 0.0 <= discount < 1.0:
            raise ConfigurationError("discount must be in [0, 1)")
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        self.discount = discount
        self.seed = int(seed)
        self.breakeven = config.breakeven
        #: Delay ladder: wait-window, breakeven, backup timeout, never.
        self.actions: tuple[Optional[float], ...] = (
            config.wait_window,
            config.breakeven,
            config.timeout,
            None,
        )
        #: Q-values, keyed by ``(state, action_index)``; absent = 0.0.
        self.q: dict[tuple[tuple[int, int], int], float] = {}
        #: Exploration draws consumed so far (shared across processes so
        #: the stream is a function of global decision order).
        self.draws = 0

    @property
    def name(self) -> str:
        """Report name; hyperparameter overrides are spelled out so
        sweep labels (and therefore artifact-cache variant fingerprints)
        pin the exact configuration."""
        if (
            self.epsilon == self.DEFAULT_EPSILON
            and self.learning_rate == self.DEFAULT_LEARNING_RATE
            and self.discount == self.DEFAULT_DISCOUNT
            and self.seed == self.DEFAULT_SEED
        ):
            return "QDPM"
        return (
            f"QDPM(eps={self.epsilon:g},lr={self.learning_rate:g},"
            f"g={self.discount:g},seed={self.seed})"
        )

    def create_local(self, pid: int) -> "QDPMPredictor":
        """A fresh per-process predictor sharing the application table."""
        return QDPMPredictor(self)

    def on_execution_end(self) -> None:
        """Table-reuse policy at application exit: keep learning."""

    @property
    def table_size(self) -> int:
        """Number of populated (state, action) Q-entries."""
        return len(self.q)

    # ------------------------------------------------------------------
    # Learning machinery (called by the per-process predictors)
    # ------------------------------------------------------------------

    def choose(self, state: tuple[int, int]) -> int:
        """ε-greedy action for ``state``; one deterministic draw.

        A single uniform draw decides both whether to explore and, if
        so, which rung to take: ``u < ε`` explores rung
        ``int(u / ε · |actions|)``, otherwise the greedy argmax wins
        (lowest rung index breaking ties).
        """
        u = exploration_draw(self.seed, self.draws)
        self.draws += 1
        if self.epsilon > 0.0 and u < self.epsilon:
            return min(
                int(u / self.epsilon * len(self.actions)),
                len(self.actions) - 1,
            )
        best_index = 0
        best_value = self.q.get((state, 0), 0.0)
        for index in range(1, len(self.actions)):
            value = self.q.get((state, index), 0.0)
            if value > best_value:
                best_index, best_value = index, value
        return best_index

    def reward(self, action: int, length: float) -> float:
        """Energy-shaped reward of ``action``'s delay for a gap ``length``."""
        delay = self.actions[action]
        if delay is None:
            # Stayed up: right for short gaps, a missed opportunity for
            # long ones.
            return 0.5 if length <= self.breakeven else -1.0
        if length > delay:
            # The timer fired; did the device-off window pay for the
            # spin-up?
            return 1.0 if length - delay > self.breakeven else -1.0
        # The timer never fired.  Correct restraint on a short gap; too
        # timid if the gap was long (only reachable for rungs above
        # breakeven).
        return 0.5 if length <= self.breakeven else -0.5

    def update(
        self,
        state: tuple[int, int],
        action: int,
        reward: float,
        next_state: tuple[int, int],
    ) -> None:
        """One tabular Q-learning step,
        ``Q[s,a] += α·(r + γ·max_a' Q[s',a'] − Q[s,a])``."""
        best_next = max(
            self.q.get((next_state, index), 0.0)
            for index in range(len(self.actions))
        )
        key = (state, action)
        current = self.q.get(key, 0.0)
        self.q[key] = current + self.learning_rate * (
            reward + self.discount * best_next - current
        )


class QDPMPredictor(LocalPredictor):
    """Per-process Q-DPM: idle-history state plus the armed action.

    The action chosen at each decision point stands until the next
    finished gap delivers its outcome; sub-window gaps are invisible to
    the state (the paper's §4.1.2 filter) but still re-arm the standing
    intent.
    """

    name = "QDPM"

    def __init__(self, shared: QDPMVariant) -> None:
        self.shared = shared
        self._state: tuple[int, int] = (_NO_HISTORY, _NO_HISTORY)
        self._action: Optional[int] = None
        self._intents: tuple[ShutdownIntent, ...] = tuple(
            ShutdownIntent(delay=delay, source=PredictorSource.PRIMARY)
            if delay is not None
            else ShutdownIntent.never()
            for delay in shared.actions
        )

    def _arm(self) -> ShutdownIntent:
        self._action = self.shared.choose(self._state)
        return self._intents[self._action]

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        """Choose the first action from the cold-start state."""
        return self._arm()

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        """Re-issue the standing intent (actions are chosen per gap)."""
        if self._action is None:
            return self._arm()
        return self._intents[self._action]

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        """Learn from the finished gap and choose the next action."""
        if feedback.idle_class == IdleClass.SUB_WINDOW:
            # Filtered at run time (§4.1.2): invisible to state and
            # learning; the armed action keeps standing.
            return
        if self._action is not None:
            reward = self.shared.reward(self._action, feedback.length)
            code = (
                _LONG if feedback.idle_class == IdleClass.LONG else _SHORT
            )
            next_state = (code, self._state[0])
            self.shared.update(self._state, self._action, reward, next_state)
            self._state = next_state
        self._arm()
