"""Control-theoretic shutdown timer — a PI controller on slowdown.

Cerf et al. ("When Machine Learning Meets Control Theory",
arXiv:2107.02426) argue for replacing hand-tuned power heuristics with
feedback control: pick a *setpoint* for the performance degradation you
are willing to pay, measure the degradation actually observed, and let
a proportional-integral controller steer the actuator until the error
vanishes.  The implementation idiom follows Argo NRM's legacy
``ddcmpolicy`` — a PI loop nudging a duty-cycle actuator toward a power
target, with clamped output and anti-windup on the integral term.

Here the actuator is the shutdown timeout and the measured signal is
the *irritation rate*: the exponentially-weighted fraction of finished
gaps whose shutdown fired prematurely (device-off window below the
breakeven time — the shutdowns that cost both energy and a spin-up
stall).  Each finished gap contributes one control step:

    error      = setpoint − ewma(irritation)
    integral  += error                       (clamped, anti-windup)
    timeout   −= (kp · error + ki · integral) · step   (clamped)

A positive error (fewer premature fires than budgeted) shortens the
timeout — more aggressive, more energy saved; a negative error backs
off.  The loop hovers where the observed irritation tracks the
setpoint, self-tuning per workload with no trace-specific constants.

The controller state is shared per application (all processes steer one
timer, as one device has one policy) and everything is arithmetic on
observed gap lengths — fully deterministic, so fused/pooled/resilient
replays stay bit-identical.
"""

from __future__ import annotations

from repro.cache.filter import DiskAccess
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)


class PIControllerVariant:
    """Application-level controller state plus a per-process factory.

    Owns the shared timeout, the integral accumulator, and the
    irritation EWMA; manufactures the per-process
    :class:`PIFeedbackPredictor` instances bound to it.
    """

    #: Default gains (also the bare-name ``PI`` spec).
    DEFAULT_SETPOINT = 0.05
    DEFAULT_KP = 4.0
    DEFAULT_KI = 1.0
    DEFAULT_SMOOTHING = 0.1

    #: Anti-windup clamp on the integral accumulator.
    INTEGRAL_LIMIT = 10.0

    def __init__(
        self,
        config: SimulationConfig,
        *,
        setpoint: float = DEFAULT_SETPOINT,
        kp: float = DEFAULT_KP,
        ki: float = DEFAULT_KI,
        smoothing: float = DEFAULT_SMOOTHING,
        min_timeout: float | None = None,
        max_timeout: float = 60.0,
    ) -> None:
        if not 0.0 <= setpoint < 1.0:
            raise ConfigurationError("setpoint must be in [0, 1)")
        if kp < 0 or ki < 0 or kp + ki == 0:
            raise ConfigurationError(
                "gains must be non-negative with kp + ki > 0"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in (0, 1]")
        resolved_min = (
            max(config.wait_window, 0.5) if min_timeout is None else min_timeout
        )
        if not 0 < resolved_min <= max_timeout:
            raise ConfigurationError(
                "need 0 < min_timeout <= max_timeout"
            )
        self.setpoint = setpoint
        self.kp = kp
        self.ki = ki
        self.smoothing = smoothing
        self.min_timeout = resolved_min
        self.max_timeout = max_timeout
        self.breakeven = config.breakeven
        #: Controller step size in seconds per unit control output.
        self.step = config.breakeven
        #: The actuator: current shutdown timeout, started at the
        #: configuration's TP timer.
        self.timeout = min(max(config.timeout, resolved_min), max_timeout)
        #: Integral accumulator (anti-windup clamped).
        self.integral = 0.0
        #: EWMA of the premature-fire indicator.
        self.irritation = 0.0
        #: Control steps taken (reported as the table size).
        self.updates = 0

    @property
    def name(self) -> str:
        """Report name; non-default gains are spelled out so sweep
        labels (and artifact-cache variant fingerprints) pin the exact
        configuration."""
        if (
            self.setpoint == self.DEFAULT_SETPOINT
            and self.kp == self.DEFAULT_KP
            and self.ki == self.DEFAULT_KI
            and self.smoothing == self.DEFAULT_SMOOTHING
        ):
            return "PI"
        return (
            f"PI(sp={self.setpoint:g},kp={self.kp:g},ki={self.ki:g},"
            f"b={self.smoothing:g})"
        )

    def create_local(self, pid: int) -> "PIFeedbackPredictor":
        """A fresh per-process predictor steering the shared timer."""
        return PIFeedbackPredictor(self)

    def on_execution_end(self) -> None:
        """Keep the controller state across executions (it is the
        learned artifact)."""

    @property
    def table_size(self) -> int:
        """Control steps taken so far (the learning-progress metric)."""
        return self.updates

    def observe(self, armed_delay: float, length: float) -> None:
        """One control step from a finished gap's outcome.

        ``armed_delay`` is the timeout that governed the gap; the gap
        was an irritating premature fire when the timer went off but the
        device-off window stayed below breakeven.
        """
        fired = length > armed_delay
        premature = fired and (length - armed_delay) <= self.breakeven
        sample = 1.0 if premature else 0.0
        self.irritation += self.smoothing * (sample - self.irritation)
        error = self.setpoint - self.irritation
        self.integral = min(
            self.INTEGRAL_LIMIT,
            max(-self.INTEGRAL_LIMIT, self.integral + error),
        )
        control = self.kp * error + self.ki * self.integral
        self.timeout = min(
            self.max_timeout,
            max(self.min_timeout, self.timeout - control * self.step * 0.01),
        )
        self.updates += 1


class PIFeedbackPredictor(LocalPredictor):
    """Per-process view of the shared PI-steered timeout.

    Each access re-arms the current shared timeout; each finished
    (non sub-window) gap feeds one control step back with the delay
    that actually governed it.
    """

    name = "PI"

    def __init__(self, shared: PIControllerVariant) -> None:
        self.shared = shared
        self._armed = shared.timeout

    def _arm(self) -> ShutdownIntent:
        self._armed = self.shared.timeout
        return ShutdownIntent(
            delay=self._armed, source=PredictorSource.PRIMARY
        )

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        """Arm the controller's current timeout before the first access."""
        return self._arm()

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        """Re-arm the (possibly re-tuned) shared timeout."""
        return self._arm()

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        """Feed the gap outcome back as one control step."""
        if feedback.idle_class == IdleClass.SUB_WINDOW:
            # Invisible to the controller, like every other dynamic
            # predictor's training filter (§4.1.2).
            return
        self.shared.observe(self._armed, feedback.length)
