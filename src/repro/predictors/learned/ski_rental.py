"""Learning-augmented ski rental — PCAP's table as untrusted advice.

Shutting a disk down is the ski-rental problem: keep paying idle power
("rent") or pay the spin-down/spin-up cycle energy ("buy").  Without
predictions the optimal deterministic policy buys at the breakeven time
(2-competitive); Antoniadis et al. ("Learning-Augmented Dynamic Power
Management with Multiple States via New Ski Rental Bounds",
arXiv:2110.13116) show how an untrusted per-gap prediction can be
consumed with a *robustness parameter* λ ∈ [0, 1] that trades
consistency (how close to optimal when the advice is right) against
robustness (the worst case when it is wrong):

* advice says the gap is **long**  → buy early, at ``λ · breakeven``;
* advice says the gap is **short** → hedge, buying only at
  ``breakeven / λ``.

``λ = 0`` trusts the advice completely (shut down at the wait-window on
a predicted-long gap, never otherwise — exactly PCAP with its backup
timeout disabled); ``λ = 1`` ignores it (both branches collapse to the
breakeven timeout, the classic 2-competitive ski-rental policy, TP-BE).

The advice source *is* the paper's PCAP machinery: a
:class:`~repro.core.variants.PCAPVariant` with the backup timeout
disabled provides the per-PC-signature long-gap prediction, trained
exactly as in §4 — so LearnedSkiRental is literally "PCAP's table,
consumed with provable robustness".  Prediction hits are attributed to
the PRIMARY source (the advice acted), hedge-timer shutdowns to BACKUP.

:func:`multistate_schedule` extends the same λ-hedging to a ladder of
intermediate power states (the Antoniadis et al. multi-state setting),
matching :mod:`repro.disk.multistate`'s low-power-idle extension.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.filter import DiskAccess
from repro.config import SimulationConfig
from repro.core.variants import PCAPVariant, PCAPVariantConfig
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)


def multistate_schedule(
    states: Sequence[tuple[float, float]],
    lam: float,
    *,
    advice_long: bool,
) -> list[float]:
    """λ-robust transition times for a ladder of low-power states.

    ``states`` lists the deeper states as ``(power_watts,
    transition_energy_joules)`` pairs, relative to a top idle state of
    power ``states[0][0]``-or-higher; the first entry is the top
    (highest-power) state with zero transition cost.  The classic
    deterministic multi-state policy drops into state *i* once the gap
    has lasted ``cᵢ / (p₀ − pᵢ)`` — the point where staying in the top
    state has cost as much as the transition.  Following Antoniadis et
    al., binary advice scales every threshold by ``λ`` when the gap is
    predicted long and ``1/λ`` when predicted short; ``λ = 1`` recovers
    the advice-free schedule.

    Returns the transition times for ``states[1:]``, non-decreasing.
    """
    if not 0.0 <= lam <= 1.0:
        raise ConfigurationError("lambda must be in [0, 1]")
    if len(states) < 2:
        return []
    top_power = states[0][0]
    schedule: list[float] = []
    previous = 0.0
    for power, transition_energy in states[1:]:
        if power >= top_power:
            raise ConfigurationError(
                "ladder states must strictly decrease in power"
            )
        if transition_energy < 0:
            raise ConfigurationError("transition energy must be non-negative")
        threshold = transition_energy / (top_power - power)
        if advice_long:
            threshold *= lam
        elif lam > 0.0:
            threshold /= lam
        else:
            threshold = float("inf")
        previous = max(previous, threshold)
        schedule.append(previous)
    return schedule


class LearnedSkiRentalVariant:
    """Application-level ski-rental state: the shared advice table.

    Wraps a :class:`~repro.core.variants.PCAPVariant` (backup timeout
    disabled — the advice must be pure table signal) and manufactures
    the per-process :class:`LearnedSkiRentalPredictor` instances.
    """

    #: Default robustness parameter (also the bare-name ``SKI`` spec).
    DEFAULT_LAMBDA = 0.5

    def __init__(
        self,
        config: SimulationConfig,
        *,
        lam: float = DEFAULT_LAMBDA,
    ) -> None:
        if not 0.0 <= lam <= 1.0:
            raise ConfigurationError("lambda must be in [0, 1]")
        self.lam = lam
        self.breakeven = config.breakeven
        self.wait_window = config.wait_window
        self.advice = PCAPVariant(
            PCAPVariantConfig(
                wait_window=config.wait_window, backup_timeout=None
            )
        )

    @property
    def name(self) -> str:
        """Report name; a non-default λ is spelled out so sweep labels
        (and artifact-cache variant fingerprints) pin the exact
        configuration."""
        if self.lam == self.DEFAULT_LAMBDA:
            return "SKI"
        return f"SKI(l={self.lam:g})"

    def create_local(self, pid: int) -> "LearnedSkiRentalPredictor":
        """A fresh per-process predictor sharing the advice table."""
        return LearnedSkiRentalPredictor(
            self.advice.create_local(pid),
            lam=self.lam,
            breakeven=self.breakeven,
            wait_window=self.wait_window,
        )

    def on_execution_end(self) -> None:
        """Apply the advice table's reuse policy at application exit."""
        self.advice.on_execution_end()

    @property
    def table_size(self) -> int:
        """Size of the shared advice (PCAP) table."""
        return self.advice.table_size


class LearnedSkiRentalPredictor(LocalPredictor):
    """Per-process λ-robust ski rental over a PCAP advice predictor.

    Every access is first shown to the inner PCAP predictor; whether its
    table matched decides which hedged intent stands for the following
    gap.  Training (``on_idle_end``) is delegated wholesale, so the
    advice learns exactly as §4's PCAP does.
    """

    name = "SKI"

    def __init__(
        self,
        advice: LocalPredictor,
        *,
        lam: float,
        breakeven: float,
        wait_window: float,
    ) -> None:
        if not 0.0 <= lam <= 1.0:
            raise ConfigurationError("lambda must be in [0, 1]")
        if breakeven <= 0:
            raise ConfigurationError("breakeven must be positive")
        if wait_window < 0:
            raise ConfigurationError("wait window must be non-negative")
        self.advice = advice
        self.lam = lam
        self.breakeven = breakeven
        self.wait_window = wait_window
        # Both hedged intents are parameter-determined: build them once.
        self._trust_intent = ShutdownIntent(
            delay=max(wait_window, lam * breakeven),
            source=PredictorSource.PRIMARY,
        )
        self._hedge_intent = (
            ShutdownIntent(delay=breakeven / lam, source=PredictorSource.BACKUP)
            if lam > 0.0
            else ShutdownIntent.never()
        )

    def bind_tracing(self, tracer, pid: int) -> None:
        """Attach a tracing sink to this wrapper and the advice source."""
        super().bind_tracing(tracer, pid)
        self.advice.bind_tracing(tracer, pid)

    def begin_execution(self, start_time: float) -> None:
        """Reset the advice predictor's per-execution state."""
        self.advice.begin_execution(start_time)

    def end_execution(self, end_time: float) -> None:
        """Forward the execution end to the advice predictor."""
        self.advice.end_execution(end_time)

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        """No advice before the first access: stand on the hedge timer."""
        self.advice.initial_intent(start_time)
        return self._hedge_intent

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        """Consume the advice for this access and hedge with λ."""
        if self.advice.on_access(access).predicts_shutdown:
            return self._trust_intent
        return self._hedge_intent

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        """Train the advice table on the finished gap (PCAP §4 rules)."""
        self.advice.on_idle_end(feedback)
