"""Local shutdown-predictor protocol.

Every predictor in this library — PCAP and all baselines — is a *local*
predictor attached to one process, driven by the simulation engine with
three kinds of calls:

* :meth:`LocalPredictor.initial_intent` when the process appears;
* :meth:`LocalPredictor.on_idle_end` when a request-free gap in the
  process's own disk-access stream ends (training feedback);
* :meth:`LocalPredictor.on_access` right after each of the process's disk
  accesses, returning the new standing :class:`ShutdownIntent`.

A :class:`ShutdownIntent` is the predictor's standing decision until its
process performs the next I/O: *"if the disk stays idle, shut it down
``delay`` seconds after this access completes"* (or never).  Immediate
predictors return the wait-window as the delay — an access arriving
inside the window cancels the shutdown, which is exactly the paper's
sliding wait-window filter.  Timeout predictors return their timeout.

``source`` distinguishes the *primary* mechanism (PCAP's table match, the
learning tree, the timer of a standalone timeout predictor) from the
*backup* timeout a training predictor falls back on; Figures 9 and 10
attribute hits and misses to whichever made the decision.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.cache.filter import DiskAccess


class PredictorSource(enum.Enum):
    """Which mechanism produced a shutdown decision."""

    PRIMARY = "primary"
    BACKUP = "backup"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PredictorSource.{self.name}"


class IdleClass(enum.Enum):
    """Paper taxonomy of a finished idle gap.

    ``SUB_WINDOW`` gaps (not longer than the wait-window) are invisible to
    history and training — they are filtered at run time (§4.1.2).
    ``SHORT`` gaps fall between the wait-window and the breakeven time
    (history bit 0).  ``LONG`` gaps exceed the breakeven time (history bit
    1) and are the shutdown opportunities of Table 1.
    """

    SUB_WINDOW = "sub_window"
    SHORT = "short"
    LONG = "long"


def classify_gap(
    length: float, wait_window: float, breakeven: float
) -> IdleClass:
    """Classify a finished gap per the paper taxonomy (see IdleClass)."""
    if length > breakeven:
        return IdleClass.LONG
    if length > wait_window:
        return IdleClass.SHORT
    return IdleClass.SUB_WINDOW


@dataclass(frozen=True, slots=True)
class IdleFeedback:
    """A finished gap in the process's own access stream."""

    start: float
    end: float
    idle_class: IdleClass

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ShutdownIntent:
    """Standing decision: shut down ``delay`` seconds after the triggering
    event (access completion, or process start for the initial intent)
    unless another I/O intervenes.

    ``delay`` of ``None`` means "keep the disk spinning".
    """

    delay: Optional[float]
    source: PredictorSource = PredictorSource.PRIMARY

    def __post_init__(self) -> None:
        if self.delay is not None and self.delay < 0:
            raise ValueError("shutdown delay must be non-negative")

    @staticmethod
    def never() -> "ShutdownIntent":
        return ShutdownIntent(delay=None)

    @property
    def predicts_shutdown(self) -> bool:
        return self.delay is not None


class OmniscientPolicy(ABC):
    """Gap-level policy with perfect knowledge of the gap it is deciding.

    Used for the Ideal predictor and the Base (always-on) system of
    Figure 8, which are not realizable online: the engine tells the
    policy the full gap length and asks where (if anywhere) to shut down.
    """

    #: Short identifier used in reports ("Ideal", "Base").
    name: str = "omniscient"

    @abstractmethod
    def shutdown_offset(self, gap_length: float) -> Optional[float]:
        """Offset from the gap start at which to shut down, or ``None``."""

    def shutdown_offsets(self, gap_lengths):
        """Vectorized :meth:`shutdown_offset` over an array of gaps.

        Returns a float64 array aligned with ``gap_lengths`` where NaN
        encodes the scalar hook's ``None``, or ``None`` when the policy
        has no vectorized form — the fused kernel then replays the
        scalar loop lane instead.  Implementations must mirror
        :meth:`shutdown_offset`'s float expressions exactly (the fused
        bit-identity contract, DESIGN §10).
        """
        return None


class LocalPredictor(ABC):
    """Per-process shutdown predictor.

    Instances may share state (PCAP's prediction table is associated with
    the *application* and shared by its processes and executions, §4.2);
    everything per-process (the current signature, history register,
    timers) lives in the instance.
    """

    #: Short identifier used in reports ("TP", "LT", "PCAP", ...).
    name: str = "base"

    #: Tracing sink and owning pid, bound by the driver when structured
    #: tracing is enabled (see :mod:`repro.sim.tracing`).  ``None`` means
    #: disabled — emit sites guard on it and pay only the check.
    tracer = None
    trace_pid: Optional[int] = None

    def bind_tracing(self, tracer, pid: int) -> None:
        """Attach a tracing sink; predictors emit decision events into it."""
        self.tracer = tracer
        self.trace_pid = pid

    def begin_execution(self, start_time: float) -> None:
        """A new execution of the owning application started."""

    def end_execution(self, end_time: float) -> None:
        """The owning application exited."""

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        """Standing intent before the process's first disk access.

        Default: behave like the backup timeout would — no information yet,
        so never predict.  Timeout-based predictors override this.
        """
        return ShutdownIntent.never()

    @abstractmethod
    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        """The process performed ``access``; return the new standing intent."""

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        """The gap preceding the process's next access just ended."""
