"""Exponential-average predictive shutdown — Hwang & Wu (TODAES 2000).

Background-section baseline (§2): the length of the next idle period is
predicted as a weighted average of the previous prediction and the
previous actual idle period,

    I_{n+1} = a * actual_n + (1 - a) * I_n .

When the predicted length exceeds the breakeven time the disk is shut
down as soon as it becomes idle (we apply the same sliding wait-window as
the other dynamic predictors, per the paper's remark that the filter "can
be applied to all dynamic predictors").
"""

from __future__ import annotations

from repro.cache.filter import DiskAccess
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)


class ExponentialAveragePredictor(LocalPredictor):
    """Hwang & Wu's exponentially-weighted idle-length predictor."""

    name = "EXP"

    def __init__(
        self,
        breakeven: float,
        *,
        alpha: float = 0.5,
        wait_window: float = 1.0,
        initial_prediction: float = 0.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if breakeven <= 0:
            raise ConfigurationError("breakeven must be positive")
        if wait_window < 0:
            raise ConfigurationError("wait window must be non-negative")
        self.breakeven = breakeven
        self.alpha = alpha
        self.wait_window = wait_window
        self.predicted_idle = initial_prediction

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        if self.predicted_idle > self.breakeven:
            return ShutdownIntent(
                delay=self.wait_window, source=PredictorSource.PRIMARY
            )
        return ShutdownIntent.never()

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        self.predicted_idle = (
            self.alpha * feedback.length
            + (1.0 - self.alpha) * self.predicted_idle
        )
