"""Turning dirty-block write-backs into disk accesses.

The flush daemon writes back many blocks at one wake-up; a real disk sees
a handful of clustered write requests, not one request per block.  We
coalesce the write-backs of one (wake-up time, process, file) triple into
a single disk access attributed to the kernel flush path
(:data:`~repro.traces.events.KERNEL_FLUSH_PC`), which is how flush
activity perturbs the idle-period structure without exploding the access
count.
"""

from __future__ import annotations

from typing import Iterable

from repro.cache.page_cache import WriteBack
from repro.traces.events import KERNEL_FLUSH_PC, AccessType


#: File descriptor recorded for kernel write-back accesses.
FLUSH_FD: int = -1


def coalesce_writebacks(writebacks: Iterable[WriteBack]) -> list[dict]:
    """Group write-backs by (time, pid, inode) into disk-access records.

    Returns plain dicts (time/pid/pc/fd/kind/inode/blocks) the cache
    filter turns into :class:`~repro.cache.filter.DiskAccess` objects;
    keeping this module free of the filter type avoids an import cycle.
    """
    grouped: dict[tuple[float, int, int], list[int]] = {}
    for writeback in writebacks:
        key = (writeback.time, writeback.pid, writeback.inode)
        grouped.setdefault(key, []).append(writeback.block)
    records = []
    for (time, pid, inode), blocks in sorted(grouped.items()):
        records.append(
            {
                "time": time,
                "pid": pid,
                "pc": KERNEL_FLUSH_PC,
                "fd": FLUSH_FD,
                "kind": AccessType.FLUSH,
                "inode": inode,
                "block_count": len(blocks),
            }
        )
    return records
