"""PC-based I/O prefetching — the other §7 "new direction".

"PCAP opens a new direction for the development of predictor-based
techniques suitable for many other aspects of the operating system,
such as file buffer management and **I/O prefetching**."

:class:`PCStridePredictor` is a classic stride predictor keyed on the
program counter: each I/O call site tends to walk files with a
characteristic stride (sequential readers stride by their request size;
index walkers stride irregularly and never gain confidence).

:class:`PrefetchingPageCache` consults the predictor on every read miss
and pulls the predicted next blocks into the cache as part of the same
disk request — turning mplayer-style sequential streams from a miss per
refill into one miss per ``depth`` refills.  Prefetched blocks that are
never touched before eviction count against accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.page_cache import CacheConfig, PageCache, WriteBack
from repro.errors import ConfigurationError


@dataclass(slots=True)
class _StrideEntry:
    last_block: int
    stride: int = 0
    confidence: int = 0


class PCStridePredictor:
    """Per-PC stride detection with a small confidence counter."""

    def __init__(self, *, confidence_threshold: int = 2,
                 max_confidence: int = 3) -> None:
        if not 0 < confidence_threshold <= max_confidence:
            raise ConfigurationError(
                "need 0 < confidence_threshold <= max_confidence"
            )
        self.confidence_threshold = confidence_threshold
        self.max_confidence = max_confidence
        self._entries: dict[int, _StrideEntry] = {}

    def observe(self, pc: int, block: int) -> None:
        """Record that ``pc`` accessed ``block`` (first block of the
        request)."""
        entry = self._entries.get(pc)
        if entry is None:
            self._entries[pc] = _StrideEntry(last_block=block)
            return
        stride = block - entry.last_block
        if stride == entry.stride and stride != 0:
            entry.confidence = min(self.max_confidence, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_block = block

    def predict(
        self, pc: int, block: int, depth: int, extent: int = 1
    ) -> list[int]:
        """Blocks ``pc`` will likely touch next (empty if unconfident).

        Each of the ``depth`` future requests is assumed to span
        ``extent`` blocks from its predicted start (requests read ranges,
        not single blocks).
        """
        entry = self._entries.get(pc)
        if (
            entry is None
            or entry.stride == 0
            or entry.confidence < self.confidence_threshold
        ):
            return []
        blocks: list[int] = []
        for k in range(1, depth + 1):
            start = block + entry.stride * k
            blocks.extend(range(start, start + extent))
        return blocks

    def __len__(self) -> int:
        return len(self._entries)


class PrefetchingPageCache(PageCache):
    """LRU page cache with PC-keyed stride prefetching.

    ``depth`` strides are prefetched per confident miss.  Prefetched
    blocks ride along with the demand request (no extra disk access is
    emitted — sequential blocks cost only transfer time, which the
    simulator's per-block service charge models).
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        *,
        predictor: PCStridePredictor | None = None,
        depth: int = 4,
    ) -> None:
        super().__init__(config)
        if depth <= 0:
            raise ConfigurationError("prefetch depth must be positive")
        self.predictor = predictor or PCStridePredictor()
        self.depth = depth
        self.prefetched_blocks = 0
        self.prefetch_hits = 0
        #: Blocks resident due to prefetch and not yet demanded.
        self._pending_prefetch: set[int] = set()

    def read(
        self, time: float, inode: int, blocks, pc: int = 0
    ) -> tuple[list[int], list[WriteBack]]:
        block_list = list(blocks)
        if block_list:
            self.predictor.observe(pc, block_list[0])
        # Demand hits on previously-prefetched blocks score accuracy.
        for block in block_list:
            if block in self._pending_prefetch and block in self._blocks:
                self._pending_prefetch.discard(block)
                self.prefetch_hits += 1
        missed, forced = super().read(time, inode, block_list, pc)
        if missed:
            forced = list(forced)
            extent = max(1, len(block_list))
            budget = max(1, self.config.capacity_blocks // 4)
            predicted = self.predictor.predict(
                pc, block_list[0], self.depth, extent=extent
            )[:budget]
            for block in predicted:
                if block in self._blocks:
                    continue
                from repro.cache.page_cache import CachedBlock

                evicted = self._blocks.put(block, CachedBlock(inode=inode))
                self.prefetched_blocks += 1
                self._pending_prefetch.add(block)
                if evicted is not None:
                    evicted_block, evicted_entry = evicted
                    self._pending_prefetch.discard(evicted_block)
                    if evicted_entry.dirty:
                        self.stats.flushed_blocks += 1
                        forced.append(
                            WriteBack(
                                time=time,
                                block=evicted_block,
                                inode=evicted_entry.inode,
                                pid=evicted_entry.dirty_pid,
                            )
                        )
        return missed, forced

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched blocks that were later demanded."""
        if self.prefetched_blocks == 0:
            return 0.0
        return self.prefetch_hits / self.prefetched_blocks
