"""A small, generic O(1) LRU mapping.

Python dicts preserve insertion order and support ``move_to_end``-style
manipulation via deletion/reinsertion, but :class:`collections.OrderedDict`
makes the intent explicit and gives O(1) ``popitem(last=False)`` for
evicting the least-recently-used entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Internal miss sentinel so ``get`` costs one dict probe on a miss and
#: two on a hit (the page cache calls it once per block touched).
_MISSING: object = object()


class LRUMapping(Generic[K, V]):
    """Mapping with least-recently-used eviction at a fixed capacity.

    ``get``/``put`` count as uses.  ``capacity`` of ``None`` disables
    eviction (unbounded), which the prediction table uses by default.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._entries: OrderedDict[K, V] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        """Keys from least to most recently used."""
        return iter(self._entries)

    def get(self, key: K) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), or ``None``."""
        entries = self._entries
        value = entries.get(key, _MISSING)
        if value is _MISSING:
            return None
        entries.move_to_end(key)
        return value  # type: ignore[return-value]

    def peek(self, key: K) -> Optional[V]:
        """Value for ``key`` without refreshing recency."""
        return self._entries.get(key)

    def touch(self, key: K) -> bool:
        """Refresh ``key``'s recency; True when present.

        One membership probe cheaper than ``get`` for membership-style
        values (the prediction table stores ``None`` values, so ``get``
        cannot distinguish a hit from a miss anyway).
        """
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return True
        return False

    def put(self, key: K, value: V) -> Optional[tuple[K, V]]:
        """Insert/update ``key``; returns the evicted ``(key, value)`` pair
        if the insertion overflowed the capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return None
        self._entries[key] = value
        if self.capacity is not None and len(self._entries) > self.capacity:
            self.evictions += 1
            return self._entries.popitem(last=False)
        return None

    def pop(self, key: K) -> Optional[V]:
        """Remove and return ``key``'s value, or ``None`` if absent."""
        return self._entries.pop(key, None)

    def items(self) -> list[tuple[K, V]]:
        """Snapshot of entries from least to most recently used."""
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()

    @property
    def lru_key(self) -> Optional[K]:
        """The key that would be evicted next, or ``None`` when empty."""
        return next(iter(self._entries), None)
