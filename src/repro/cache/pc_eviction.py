"""PC-based cache eviction — the paper's §7 "new direction".

The conclusion: "PCAP opens a new direction for the development of
predictor-based techniques suitable for many other aspects of the
operating system, such as file buffer management and I/O prefetching."
This module follows that direction (the line of work that became
PC-based buffer-cache classification): the *program counter that brings
a block into the cache* predicts the block's reuse behaviour.

:class:`PCReusePredictor` keeps a saturating counter per loading PC:

* when a cached block is re-referenced, its loading PC scores a reuse;
* when a block is evicted untouched since load, its PC scores a death.

:class:`PCAwarePageCache` consults the predictor on insertion: blocks
loaded by dead-on-arrival PCs (streaming reads — mplayer's refills,
mozilla's page downloads) are kept in a small probationary region and
evicted first, shielding the reused working set (libraries, indices)
from being flushed by every streaming burst.  The paper's 256 KB cache
makes the effect easy to see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lru import LRUMapping
from repro.cache.page_cache import (
    CacheConfig,
    CachedBlock,
    PageCache,
    WriteBack,
)
from repro.errors import ConfigurationError


class PCReusePredictor:
    """Per-PC saturating reuse counters (2-bit by default)."""

    def __init__(
        self, *, maximum: int = 3, threshold: int = 2, initial: int = 2
    ) -> None:
        if not 0 <= threshold <= maximum:
            raise ConfigurationError("need 0 <= threshold <= maximum")
        if not 0 <= initial <= maximum:
            raise ConfigurationError("need 0 <= initial <= maximum")
        self.maximum = maximum
        self.threshold = threshold
        self.initial = initial
        self._counters: dict[int, int] = {}

    def predicts_reuse(self, pc: int) -> bool:
        return self._counters.get(pc, self.initial) >= self.threshold

    def record_reuse(self, pc: int) -> None:
        current = self._counters.get(pc, self.initial)
        self._counters[pc] = min(self.maximum, current + 1)

    def record_death(self, pc: int) -> None:
        current = self._counters.get(pc, self.initial)
        self._counters[pc] = max(0, current - 1)

    def __len__(self) -> int:
        return len(self._counters)


@dataclass(slots=True)
class _PCBlock(CachedBlock):
    """Residency record extended with the loading PC and a touch flag."""

    loading_pc: int = 0
    reused: bool = False


class PCAwarePageCache(PageCache):
    """Page cache with PC-based dead-block-first eviction.

    Blocks predicted dead live in a probationary LRU capped at
    ``probation_fraction`` of the capacity; they are evicted before any
    predicted-reused block.  A probationary block that gets
    re-referenced is promoted to the protected region (and its loading
    PC credited).

    API matches :class:`PageCache` except reads take the loading ``pc``.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        *,
        predictor: PCReusePredictor | None = None,
        probation_fraction: float = 0.25,
    ) -> None:
        super().__init__(config)
        if not 0.0 < probation_fraction < 1.0:
            raise ConfigurationError(
                "probation fraction must be in (0, 1)"
            )
        self.predictor = predictor or PCReusePredictor()
        capacity = self.config.capacity_blocks
        self._probation_capacity = max(1, int(capacity * probation_fraction))
        self._protected_capacity = max(1, capacity - self._probation_capacity)
        self._probation: LRUMapping[int, _PCBlock] = LRUMapping()
        self._protected: LRUMapping[int, _PCBlock] = LRUMapping()

    # ------------------------------------------------------------------
    # PageCache API (pc-aware)
    # ------------------------------------------------------------------
    def read(
        self, time: float, inode: int, blocks, pc: int = 0
    ) -> tuple[list[int], list[WriteBack]]:
        missed: list[int] = []
        forced: list[WriteBack] = []
        for block in blocks:
            entry = self._touch(block)
            if entry is not None:
                self.stats.read_hits += 1
                continue
            self.stats.read_misses += 1
            missed.append(block)
            forced.extend(
                self._insert_pc(
                    time, block, _PCBlock(inode=inode, loading_pc=pc)
                )
            )
        return missed, forced

    def write(
        self, time: float, inode: int, blocks, pid: int, pc: int = 0
    ) -> list[WriteBack]:
        forced: list[WriteBack] = []
        for block in blocks:
            self.stats.writes += 1
            entry = self._touch(block)
            if entry is None:
                entry = _PCBlock(inode=inode, loading_pc=pc)
                forced.extend(self._insert_pc(time, block, entry))
            if not entry.dirty:
                entry.dirty = True
                entry.dirty_since = time
                entry.dirty_pid = pid
        return forced

    @property
    def dirty_block_count(self) -> int:
        return sum(
            1
            for region in (self._probation, self._protected)
            for _, entry in region.items()
            if entry.dirty
        )

    @property
    def resident_block_count(self) -> int:
        return len(self._probation) + len(self._protected)

    @property
    def protected_block_count(self) -> int:
        return len(self._protected)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _touch(self, block: int) -> _PCBlock | None:
        entry = self._protected.get(block)
        if entry is not None:
            entry.reused = True
            return entry
        entry = self._probation.pop(block)
        if entry is None:
            return None
        # Re-referenced probationary block: promote and credit its PC.
        entry.reused = True
        self.predictor.record_reuse(entry.loading_pc)
        self._promote(block, entry)
        return entry

    def _insert_pc(
        self, time: float, block: int, entry: _PCBlock
    ) -> list[WriteBack]:
        if self.predictor.predicts_reuse(entry.loading_pc):
            return self._promote(block, entry, time=time)
        self._probation.put(block, entry)
        return self._shrink(time)

    def _promote(
        self, block: int, entry: _PCBlock, time: float = 0.0
    ) -> list[WriteBack]:
        self._protected.put(block, entry)
        return self._shrink(time)

    def _shrink(self, time: float) -> list[WriteBack]:
        """Evict until both regions fit, probation first."""
        forced: list[WriteBack] = []
        while self.resident_block_count > self.config.capacity_blocks:
            if (
                len(self._probation) > 0
                and (
                    len(self._probation) > self._probation_capacity
                    or len(self._protected) <= self._protected_capacity
                )
            ):
                region = self._probation
            elif len(self._protected) > 0:
                region = self._protected
            else:
                region = self._probation
            victim_key = region.lru_key
            assert victim_key is not None
            victim = region.pop(victim_key)
            assert victim is not None
            if not victim.reused:
                self.predictor.record_death(victim.loading_pc)
            if victim.dirty:
                self.stats.flushed_blocks += 1
                forced.append(
                    WriteBack(
                        time=time,
                        block=victim_key,
                        inode=victim.inode,
                        pid=victim.dirty_pid,
                    )
                )
        return forced

    def _flush_all(self, time: float) -> list[WriteBack]:
        flushed: list[WriteBack] = []
        for region in (self._probation, self._protected):
            for block, entry in region.items():
                if entry.dirty:
                    flushed.append(
                        WriteBack(
                            time=time,
                            block=block,
                            inode=entry.inode,
                            pid=entry.dirty_pid,
                        )
                    )
                    entry.dirty = False
        self.stats.flushed_blocks += len(flushed)
        return flushed
