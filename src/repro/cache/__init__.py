"""File-cache substrate (paper §6: 256 KB Linux-like cache, LRU, 30 s
dirty-data flush timer)."""

from repro.cache.filter import (
    DiskAccess,
    FilterResult,
    filter_application,
    filter_execution,
)
from repro.cache.lru import LRUMapping
from repro.cache.pc_eviction import PCAwarePageCache, PCReusePredictor
from repro.cache.prefetch import PCStridePredictor, PrefetchingPageCache
from repro.cache.page_cache import (
    CacheConfig,
    CacheStats,
    CachedBlock,
    PageCache,
    WriteBack,
)
from repro.cache.writeback import FLUSH_FD, coalesce_writebacks

__all__ = [
    "CacheConfig",
    "CacheStats",
    "CachedBlock",
    "DiskAccess",
    "FLUSH_FD",
    "FilterResult",
    "LRUMapping",
    "PCAwarePageCache",
    "PCStridePredictor",
    "PCReusePredictor",
    "PageCache",
    "PrefetchingPageCache",
    "WriteBack",
    "coalesce_writebacks",
    "filter_application",
    "filter_execution",
]
