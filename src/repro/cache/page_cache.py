"""Linux-style file (page) cache simulator.

The paper filters its collected traces through a model of the Linux file
cache — 256 KB, LRU replacement, a 30-second timer between flushes of
dirty data — and treats only cache misses as actual disk accesses.  This
module reproduces that model at 4 KB block granularity:

* reads hit or miss per block; a miss inserts the block;
* writes dirty blocks in place (write-back: no immediate disk traffic);
* a flush daemon wakes every ``flush_interval`` seconds and writes back
  all dirty blocks (:mod:`repro.cache.writeback` turns the batches into
  disk accesses);
* evicting a dirty block forces an immediate write-back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cache.lru import LRUMapping
from repro.errors import ConfigurationError
from repro.units import kb


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Sizing and policy of the file cache (paper §6 defaults)."""

    capacity_bytes: int = kb(256)
    block_size: int = 4096
    flush_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigurationError("block size must be positive")
        if self.capacity_bytes < self.block_size:
            raise ConfigurationError("cache smaller than one block")
        if self.flush_interval <= 0:
            raise ConfigurationError("flush interval must be positive")

    @property
    def capacity_blocks(self) -> int:
        return self.capacity_bytes // self.block_size


@dataclass(slots=True)
class CachedBlock:
    """Residency record of one cached block."""

    inode: int
    dirty: bool = False
    dirty_since: float = 0.0
    dirty_pid: int = -1


@dataclass(frozen=True, slots=True)
class WriteBack:
    """One block forced to disk (by the flush daemon or dirty eviction)."""

    time: float
    block: int
    inode: int
    pid: int


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters of a cache instance."""

    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    flushed_blocks: int = 0

    @property
    def read_hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0


class PageCache:
    """Block-granular LRU file cache with write-back dirty data."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self._blocks: LRUMapping[int, CachedBlock] = LRUMapping(
            capacity=self.config.capacity_blocks
        )
        self.stats = CacheStats()
        self._next_flush = self.config.flush_interval

    def read(
        self, time: float, inode: int, blocks: Iterable[int], pc: int = 0
    ) -> tuple[list[int], list[WriteBack]]:
        """Read ``blocks`` of ``inode`` at ``time``.

        Returns ``(missed_blocks, forced_writebacks)``: the blocks that
        must be fetched from disk, plus any dirty blocks their insertion
        evicted.  ``pc`` (the loading call site) is ignored by the plain
        LRU cache; the PC-aware subclass keys its reuse predictor on it.
        """
        missed: list[int] = []
        forced: list[WriteBack] = []
        # Hot loop (once per block of every read): bind lookups to locals.
        blocks_get = self._blocks.get
        stats = self.stats
        insert = self._insert
        missed_append = missed.append
        hits = 0
        misses = 0
        for block in blocks:
            if blocks_get(block) is not None:
                hits += 1
                continue
            misses += 1
            missed_append(block)
            evicted = insert(time, block, CachedBlock(inode=inode))
            if evicted:
                forced.extend(evicted)
        stats.read_hits += hits
        stats.read_misses += misses
        return missed, forced

    def write(
        self, time: float, inode: int, blocks: Iterable[int], pid: int,
        pc: int = 0,
    ) -> list[WriteBack]:
        """Dirty ``blocks`` of ``inode`` at ``time`` (write-back).

        Returns dirty write-backs forced by eviction.  ``pc`` as in
        :meth:`read`.
        """
        forced: list[WriteBack] = []
        blocks_get = self._blocks.get
        insert = self._insert
        writes = 0
        for block in blocks:
            writes += 1
            entry = blocks_get(block)
            if entry is None:
                entry = CachedBlock(inode=inode)
                evicted = insert(time, block, entry)
                if evicted:
                    forced.extend(evicted)
            if not entry.dirty:
                entry.dirty = True
                entry.dirty_since = time
                entry.dirty_pid = pid
        self.stats.writes += writes
        return forced

    def advance(self, time: float) -> list[WriteBack]:
        """Run the flush daemon for every wake-up due at or before ``time``.

        Each wake-up writes back every block dirty at that moment, in
        block order, stamped with the wake-up time.
        """
        flushed: list[WriteBack] = []
        while self._next_flush <= time:
            wake = self._next_flush
            flushed.extend(self._flush_all(wake))
            self._next_flush += self.config.flush_interval
        return flushed

    def flush_now(self, time: float) -> list[WriteBack]:
        """Force an immediate flush of all dirty data (e.g. at app exit)."""
        return self._flush_all(time)

    @property
    def dirty_block_count(self) -> int:
        return sum(1 for _, entry in self._blocks.items() if entry.dirty)

    @property
    def resident_block_count(self) -> int:
        return len(self._blocks)

    def _flush_all(self, time: float) -> list[WriteBack]:
        flushed: list[WriteBack] = []
        for block, entry in self._blocks.items():
            if entry.dirty:
                flushed.append(
                    WriteBack(
                        time=time,
                        block=block,
                        inode=entry.inode,
                        pid=entry.dirty_pid,
                    )
                )
                entry.dirty = False
        self.stats.flushed_blocks += len(flushed)
        return flushed

    def _insert(
        self, time: float, block: int, entry: CachedBlock
    ) -> list[WriteBack]:
        evicted = self._blocks.put(block, entry)
        if evicted is None:
            return []
        evicted_block, evicted_entry = evicted
        if not evicted_entry.dirty:
            return []
        self.stats.flushed_blocks += 1
        return [
            WriteBack(
                time=time,
                block=evicted_block,
                inode=evicted_entry.inode,
                pid=evicted_entry.dirty_pid,
            )
        ]
