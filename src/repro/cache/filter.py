"""Trace → disk-access filtering pipeline.

The paper: "the collected traces of I/O operations are filtered through
our file cache, and only cache misses are treated as actual disk
accesses."  :func:`filter_execution` implements exactly that step: it
replays an :class:`~repro.traces.trace.ExecutionTrace` through a
:class:`~repro.cache.page_cache.PageCache` and emits the time-ordered
:class:`DiskAccess` stream the predictors and the energy simulator see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.page_cache import CacheConfig, CacheStats, PageCache, WriteBack
from repro.cache.writeback import coalesce_writebacks
from repro.traces.events import AccessType, IOEvent
from repro.traces.trace import ExecutionTrace


@dataclass(frozen=True, slots=True)
class DiskAccess:
    """One request that actually reached the disk (post-cache)."""

    time: float
    pid: int
    pc: int
    fd: int
    kind: AccessType
    inode: int
    #: Number of blocks moved (1+ for reads; coalesced count for flushes).
    block_count: int = 1

    @property
    def is_flush(self) -> bool:
        return self.kind == AccessType.FLUSH


@dataclass(slots=True)
class FilterResult:
    """Disk accesses of one execution plus cache statistics."""

    application: str
    execution_index: int
    accesses: list[DiskAccess] = field(default_factory=list)
    cache_stats: CacheStats = field(default_factory=CacheStats)

    def per_process(self) -> dict[int, list[DiskAccess]]:
        grouped: dict[int, list[DiskAccess]] = {}
        for access in self.accesses:
            grouped.setdefault(access.pid, []).append(access)
        return grouped

    @property
    def access_times(self) -> list[float]:
        return [access.time for access in self.accesses]


def _flush_records_to_accesses(writebacks: list[WriteBack]) -> list[DiskAccess]:
    return [DiskAccess(**record) for record in coalesce_writebacks(writebacks)]


def filter_execution(
    execution: ExecutionTrace,
    config: Optional[CacheConfig] = None,
    *,
    flush_on_exit: bool = True,
    cache: Optional[PageCache] = None,
) -> FilterResult:
    """Replay one execution through a fresh file cache.

    Each execution gets its own cache instance: the paper traced each
    application separately, and a cold cache per run conservatively models
    the unknown inter-run cache contents.

    ``flush_on_exit`` forces remaining dirty data to disk at the trace end
    (the kernel eventually writes it back; doing it at the end keeps the
    perturbation of idle periods minimal).  ``cache`` substitutes a
    custom cache instance (e.g. the PC-aware eviction extension).
    """
    if cache is None:
        cache = PageCache(config)
    result = FilterResult(
        application=execution.application,
        execution_index=execution.execution_index,
    )
    for event in execution.events:
        if not isinstance(event, IOEvent):
            continue
        daemon_writebacks = cache.advance(event.time)
        result.accesses.extend(_flush_records_to_accesses(daemon_writebacks))
        if event.kind in (AccessType.READ, AccessType.OPEN):
            missed, forced = cache.read(
                event.time, event.inode, event.blocks, pc=event.pc
            )
            result.accesses.extend(_flush_records_to_accesses(forced))
            if missed:
                result.accesses.append(
                    DiskAccess(
                        time=event.time,
                        pid=event.pid,
                        pc=event.pc,
                        fd=event.fd,
                        kind=event.kind,
                        inode=event.inode,
                        block_count=len(missed),
                    )
                )
        elif event.kind == AccessType.WRITE:
            forced = cache.write(
                event.time, event.inode, event.blocks, event.pid,
                pc=event.pc,
            )
            result.accesses.extend(_flush_records_to_accesses(forced))
        elif event.kind == AccessType.SYNC_WRITE:
            # Write-through: straight to disk, cached clean.
            missed, forced = cache.read(
                event.time, event.inode, event.blocks, pc=event.pc
            )
            result.accesses.extend(_flush_records_to_accesses(forced))
            result.accesses.append(
                DiskAccess(
                    time=event.time,
                    pid=event.pid,
                    pc=event.pc,
                    fd=event.fd,
                    kind=event.kind,
                    inode=event.inode,
                    block_count=max(1, event.block_count),
                )
            )
        # CLOSE (and blockless events) generate no disk traffic.
    if flush_on_exit and execution.events:
        final = cache.flush_now(execution.end_time)
        result.accesses.extend(_flush_records_to_accesses(final))
    result.accesses.sort(key=lambda access: access.time)
    result.cache_stats = cache.stats
    return result


def filter_application(
    trace, config: Optional[CacheConfig] = None
) -> list[FilterResult]:
    """Filter every execution of an application trace (fresh cache each)."""
    return [filter_execution(execution, config) for execution in trace]
