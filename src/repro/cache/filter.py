"""Trace → disk-access filtering pipeline.

The paper: "the collected traces of I/O operations are filtered through
our file cache, and only cache misses are treated as actual disk
accesses."  :func:`filter_execution` implements exactly that step: it
replays an execution through a :class:`~repro.cache.page_cache.PageCache`
and emits the time-ordered :class:`DiskAccess` stream the predictors and
the energy simulator see.  The replay consumes the execution through the
:class:`~repro.traces.trace.ExecutionLike` streaming protocol, so an
in-memory :class:`~repro.traces.trace.ExecutionTrace` and an on-disk
:class:`~repro.traces.store.StoredExecution` (which decodes one chunk at
a time) produce bit-identical results.

Because the same :class:`FilterResult` is replayed many times (once per
predictor, per sweep point, per figure), it memoizes its derived views —
the per-process grouping, the access-time list, and the columnar
(:mod:`repro.sim.columnar`) representation the engine's hot loops
consume.  The memos are dropped on pickling (workers and the artifact
cache rebuild them lazily).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.cache.page_cache import CacheConfig, CacheStats, PageCache, WriteBack
from repro.cache.writeback import coalesce_writebacks
from repro.traces.events import AccessType, IOEvent
from repro.traces.trace import ExecutionLike

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.sim.columnar import ColumnarAccesses


@dataclass(frozen=True, slots=True)
class DiskAccess:
    """One request that actually reached the disk (post-cache)."""

    time: float
    pid: int
    pc: int
    fd: int
    kind: AccessType
    inode: int
    #: Number of blocks moved (1+ for reads; coalesced count for flushes).
    block_count: int = 1

    def __reduce__(self):
        # Positional reconstruction: same rationale as the trace events
        # (filtered streams are pickled by workers and the artifact
        # cache; the generic slots-dataclass path is far slower).
        return (
            DiskAccess,
            (
                self.time, self.pid, self.pc, self.fd, self.kind,
                self.inode, self.block_count,
            ),
        )

    @property
    def is_flush(self) -> bool:
        return self.kind == AccessType.FLUSH


#: The fields of :class:`FilterResult` that constitute its value; the
#: remaining slots are lazily-built memos (dropped on pickling).
_FILTER_RESULT_STATE = (
    "application",
    "execution_index",
    "accesses",
    "cache_stats",
)


@dataclass(slots=True, eq=False)
class FilterResult:
    """Disk accesses of one execution plus cache statistics."""

    application: str
    execution_index: int
    accesses: list[DiskAccess] = field(default_factory=list)
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: Memoized derived views (see module docstring).  Never part of the
    #: value: excluded from pickling and equality.
    _per_process: Optional[dict[int, list[DiskAccess]]] = field(
        default=None, repr=False
    )
    _access_times: Optional[list[float]] = field(default=None, repr=False)
    _columnar: Optional["ColumnarAccesses"] = field(default=None, repr=False)
    #: Merged engine schedule memo: (execution, schedule) — see
    #: :func:`repro.sim.engine.merged_schedule`.  Holding the execution
    #: reference keeps the pairing unambiguous.
    _schedule: Optional[tuple[ExecutionLike, list]] = field(
        default=None, repr=False
    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FilterResult):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in _FILTER_RESULT_STATE
        )

    def __getstate__(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in _FILTER_RESULT_STATE}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name in _FILTER_RESULT_STATE:
            setattr(self, name, state[name])
        self._per_process = None
        self._access_times = None
        self._columnar = None
        self._schedule = None

    def per_process(self) -> dict[int, list[DiskAccess]]:
        """Accesses grouped by pid, in stream order (memoized)."""
        if self._per_process is None:
            grouped: dict[int, list[DiskAccess]] = {}
            for access in self.accesses:
                grouped.setdefault(access.pid, []).append(access)
            self._per_process = grouped
        return self._per_process

    @property
    def access_times(self) -> list[float]:
        """Arrival times of the stream (memoized; do not mutate)."""
        if self._access_times is None:
            self._access_times = [access.time for access in self.accesses]
        return self._access_times

    def columnar(self) -> "ColumnarAccesses":
        """The columnar view of the stream (built once, memoized)."""
        if self._columnar is None:
            from repro.sim.columnar import ColumnarAccesses

            self._columnar = ColumnarAccesses.from_accesses(self.accesses)
        return self._columnar


def _flush_records_to_accesses(writebacks: list[WriteBack]) -> list[DiskAccess]:
    return [DiskAccess(**record) for record in coalesce_writebacks(writebacks)]


def _filter_store_columns(
    execution: Any,
    cache: PageCache,
    accesses: list[DiskAccess],
    *,
    flush_on_exit: bool,
) -> None:
    """Replay a store-backed execution straight off its column chunks.

    Zero-copy fast path for :class:`~repro.traces.store.StoredExecution`:
    the memmapped column slices from ``iter_column_chunks`` are consumed
    directly, so no :class:`~repro.traces.events.IOEvent` objects are
    ever materialized.  Every cache call is made with the exact same
    arguments, in the exact same order, as the event-object loop in
    :func:`filter_execution` — the two paths are row-for-row identical.
    """
    append = accesses.append
    extend = accesses.extend
    advance = cache.advance
    cache_read = cache.read
    cache_write = cache.write
    by_code = tuple(AccessType)
    read_code = AccessType.READ
    open_code = AccessType.OPEN
    write_code = AccessType.WRITE
    sync_code = AccessType.SYNC_WRITE
    for chunk in execution.iter_column_chunks():
        etypes = chunk["etype"].tolist()
        times = chunk["time"].tolist()
        pids = chunk["pid"].tolist()
        pcs = chunk["pc"].tolist()
        fds = chunk["fd"].tolist()
        kinds = chunk["kind"].tolist()
        inodes = chunk["inode"].tolist()
        block_starts = chunk["block_start"].tolist()
        block_counts = chunk["block_count"].tolist()
        for i in range(len(etypes)):
            if etypes[i] != 0:
                continue  # fork/exit rows generate no disk traffic
            time = times[i]
            daemon_writebacks = advance(time)
            if daemon_writebacks:
                extend(_flush_records_to_accesses(daemon_writebacks))
            kind = by_code[kinds[i]]
            inode = inodes[i]
            pc = pcs[i]
            block_start = block_starts[i]
            block_count = block_counts[i]
            blocks = range(block_start, block_start + block_count)
            if kind is read_code or kind is open_code:
                missed, forced = cache_read(time, inode, blocks, pc=pc)
                if forced:
                    extend(_flush_records_to_accesses(forced))
                if missed:
                    append(
                        DiskAccess(
                            time=time,
                            pid=pids[i],
                            pc=pc,
                            fd=fds[i],
                            kind=kind,
                            inode=inode,
                            block_count=len(missed),
                        )
                    )
            elif kind is write_code:
                forced = cache_write(time, inode, blocks, pids[i], pc=pc)
                if forced:
                    extend(_flush_records_to_accesses(forced))
            elif kind is sync_code:
                # Write-through: straight to disk, cached clean.
                missed, forced = cache_read(time, inode, blocks, pc=pc)
                if forced:
                    extend(_flush_records_to_accesses(forced))
                append(
                    DiskAccess(
                        time=time,
                        pid=pids[i],
                        pc=pc,
                        fd=fds[i],
                        kind=kind,
                        inode=inode,
                        block_count=max(1, block_count),
                    )
                )
            # CLOSE (and blockless events) generate no disk traffic.
    if flush_on_exit and execution.event_count > 0:
        final = cache.flush_now(execution.end_time)
        if final:
            extend(_flush_records_to_accesses(final))


def filter_execution(
    execution: ExecutionLike,
    config: Optional[CacheConfig] = None,
    *,
    flush_on_exit: bool = True,
    cache: Optional[PageCache] = None,
) -> FilterResult:
    """Replay one execution through a fresh file cache.

    Each execution gets its own cache instance: the paper traced each
    application separately, and a cold cache per run conservatively models
    the unknown inter-run cache contents.

    ``flush_on_exit`` forces remaining dirty data to disk at the trace end
    (the kernel eventually writes it back; doing it at the end keeps the
    perturbation of idle periods minimal).  ``cache`` substitutes a
    custom cache instance (e.g. the PC-aware eviction extension).
    """
    if cache is None:
        cache = PageCache(config)
    result = FilterResult(
        application=execution.application,
        execution_index=execution.execution_index,
    )
    accesses = result.accesses
    # Store-backed executions expose their rows as memmapped column
    # chunks; replaying those directly skips event-object decoding
    # entirely while making bitwise-identical cache calls.
    if getattr(execution, "iter_column_chunks", None) is not None:
        _filter_store_columns(
            execution, cache, accesses, flush_on_exit=flush_on_exit
        )
        accesses.sort(key=lambda access: access.time)
        result.cache_stats = cache.stats
        return result
    # Hot loop: bound methods and the accesses list are bound to locals,
    # and the (overwhelmingly common) empty write-back batches skip the
    # coalescing machinery entirely.
    append = accesses.append
    extend = accesses.extend
    advance = cache.advance
    cache_read = cache.read
    cache_write = cache.write
    read_kinds = (AccessType.READ, AccessType.OPEN)
    saw_events = False
    for event in execution.iter_events():
        saw_events = True
        if not isinstance(event, IOEvent):
            continue
        daemon_writebacks = advance(event.time)
        if daemon_writebacks:
            extend(_flush_records_to_accesses(daemon_writebacks))
        kind = event.kind
        if kind in read_kinds:
            missed, forced = cache_read(
                event.time, event.inode, event.blocks, pc=event.pc
            )
            if forced:
                extend(_flush_records_to_accesses(forced))
            if missed:
                append(
                    DiskAccess(
                        time=event.time,
                        pid=event.pid,
                        pc=event.pc,
                        fd=event.fd,
                        kind=kind,
                        inode=event.inode,
                        block_count=len(missed),
                    )
                )
        elif kind == AccessType.WRITE:
            forced = cache_write(
                event.time, event.inode, event.blocks, event.pid,
                pc=event.pc,
            )
            if forced:
                extend(_flush_records_to_accesses(forced))
        elif kind == AccessType.SYNC_WRITE:
            # Write-through: straight to disk, cached clean.
            missed, forced = cache_read(
                event.time, event.inode, event.blocks, pc=event.pc
            )
            if forced:
                extend(_flush_records_to_accesses(forced))
            append(
                DiskAccess(
                    time=event.time,
                    pid=event.pid,
                    pc=event.pc,
                    fd=event.fd,
                    kind=kind,
                    inode=event.inode,
                    block_count=max(1, event.block_count),
                )
            )
        # CLOSE (and blockless events) generate no disk traffic.
    if flush_on_exit and saw_events:
        final = cache.flush_now(execution.end_time)
        if final:
            extend(_flush_records_to_accesses(final))
    accesses.sort(key=lambda access: access.time)
    result.cache_stats = cache.stats
    return result


def filter_application(
    trace, config: Optional[CacheConfig] = None
) -> list[FilterResult]:
    """Filter every execution of an application trace (fresh cache each)."""
    return [filter_execution(execution, config) for execution in trace]
