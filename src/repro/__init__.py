"""repro — reproduction of *Program Counter Based Techniques for Dynamic
Power Management* (Gniady, Hu & Lu, HPCA 2004).

The package implements PCAP — the Program-Counter Access Predictor — and
everything its evaluation stands on: the simulated disk power model, a
Linux-style file cache, strace-like trace containers with synthetic
workload generators for the paper's six applications, baseline
predictors (timeout, Learning Tree, ideal oracle, and classic schemes),
the trace-driven simulation engine, and the analysis layer that rebuilds
every table and figure of the paper's evaluation.

Quick start::

    from repro import ExperimentRunner, build_suite

    runner = ExperimentRunner(build_suite(scale=0.2))
    result = runner.run_global("mozilla", "PCAP")
    print(result.stats.hit_fraction, result.ledger.total)

Subpackages:

* :mod:`repro.core` — PCAP and the Global Shutdown Predictor;
* :mod:`repro.predictors` — the predictor protocol and baselines;
* :mod:`repro.disk` — disk power model (paper Table 2);
* :mod:`repro.cache` — file cache and trace filtering;
* :mod:`repro.traces` — trace records, containers, serialization;
* :mod:`repro.workloads` — the six-application synthetic suite;
* :mod:`repro.sim` — simulation engine, metrics, experiment runner;
* :mod:`repro.analysis` — tables, figures, paper comparison.
"""

from repro.cache import CacheConfig, DiskAccess, PageCache, filter_execution
from repro.core import (
    GlobalShutdownPredictor,
    PCAPPredictor,
    PCAPVariant,
    PredictionTable,
)
from repro.disk import (
    DiskPowerParameters,
    EnergyBreakdown,
    SimulatedDisk,
    fujitsu_mhf2043at,
)
from repro.predictors import (
    KNOWN_PREDICTORS,
    LocalPredictor,
    PredictorSpec,
    ShutdownIntent,
    make_spec,
)
from repro.sim import (
    ApplicationResult,
    ExperimentRunner,
    ParallelExperimentRunner,
    PredictionStats,
    SimulationConfig,
    paper_config,
)
from repro.traces import ApplicationTrace, ExecutionTrace, IOEvent
from repro.workloads import APPLICATIONS, build_application, build_suite

__version__ = "1.0.0"

__all__ = [
    "APPLICATIONS",
    "ApplicationResult",
    "ApplicationTrace",
    "CacheConfig",
    "DiskAccess",
    "DiskPowerParameters",
    "EnergyBreakdown",
    "ExecutionTrace",
    "ExperimentRunner",
    "GlobalShutdownPredictor",
    "IOEvent",
    "KNOWN_PREDICTORS",
    "LocalPredictor",
    "PCAPPredictor",
    "PCAPVariant",
    "PageCache",
    "ParallelExperimentRunner",
    "PredictionStats",
    "PredictionTable",
    "PredictorSpec",
    "ShutdownIntent",
    "SimulatedDisk",
    "SimulationConfig",
    "__version__",
    "build_application",
    "build_suite",
    "filter_execution",
    "fujitsu_mhf2043at",
    "make_spec",
    "paper_config",
]
