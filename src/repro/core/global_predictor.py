"""Global Shutdown Predictor (paper §5, Figure 5).

Real systems run many processes; the disk may be shut down only when
*every* live process predicts an idle period.  Each process owns a
private local predictor that refreshes its standing intent after each of
its own disk accesses; the global predictor combines them:

* the global ready time is the **latest** of the live processes' ready
  times (all must agree before the disk spins down);
* a process whose local predictor returns "no idle" blocks the shutdown
  entirely until its next access changes its mind;
* the shutdown is *attributed* to the predictor type (primary or backup)
  of the process that decided last — the paper's §6.4 convention;
* no synchronization is needed: the currently running process always
  makes the last prediction (§5).

Per-process idle feedback (training, history bits) is computed from each
process's **own** access stream — the paper's "local number of idle
periods" — while the actual disk gaps are those of the merged stream,
handled by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro._tracing import ProcessExited, ProcessStarted
from repro.cache.filter import DiskAccess
from repro.errors import SimulationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
    classify_gap,
)


@dataclass(slots=True)
class _ProcessSlot:
    predictor: LocalPredictor
    #: Absolute time the standing intent becomes ready (None = never).
    ready_time: Optional[float]
    source: PredictorSource
    #: Completion time of the process's last access (None before first).
    last_busy_end: Optional[float]
    started_at: float


@dataclass(frozen=True, slots=True)
class GlobalDecision:
    """Earliest moment all live processes agree to shut down."""

    ready_time: float
    source: PredictorSource


class GlobalShutdownPredictor:
    """AND-combination of per-process local predictors."""

    def __init__(
        self,
        predictor_factory: Callable[[int], LocalPredictor],
        *,
        wait_window: float,
        breakeven: float,
        tracer=None,
    ) -> None:
        self._factory = predictor_factory
        self.wait_window = wait_window
        self.breakeven = breakeven
        self.tracer = tracer
        self._slots: dict[int, _ProcessSlot] = {}

    @property
    def live_pids(self) -> set[int]:
        return set(self._slots)

    def is_live(self, pid: int) -> bool:
        """Whether ``pid`` currently has a slot (no set is materialized —
        this is the hot-path liveness check of the engine's replay loop)."""
        return pid in self._slots

    def local_predictor(self, pid: int) -> LocalPredictor:
        return self._slots[pid].predictor

    def process_started(self, time: float, pid: int) -> None:
        if pid in self._slots:
            raise SimulationError(f"pid {pid} started twice")
        predictor = self._factory(pid)
        if self.tracer is not None:
            predictor.bind_tracing(self.tracer, pid)
            self.tracer.emit(ProcessStarted(time=time, pid=pid))
        intent = predictor.initial_intent(time)
        self._slots[pid] = _ProcessSlot(
            predictor=predictor,
            ready_time=self._absolute(intent, time),
            source=intent.source,
            last_busy_end=None,
            started_at=time,
        )

    def process_exited(self, time: float, pid: int) -> None:
        slot = self._slots.pop(pid, None)
        if slot is None:
            raise SimulationError(f"exit of unknown pid {pid}")
        if self.tracer is not None:
            self.tracer.emit(ProcessExited(time=time, pid=pid))
        # Deliver the final idle period (last access → exit) so trailing
        # gaps train: the table is saved at application exit (§4.2), by
        # which time an idle period longer than breakeven has been
        # observed.  mplayer's buffer-drain periods are exactly this.
        gap_start = (
            slot.last_busy_end
            if slot.last_busy_end is not None
            else slot.started_at
        )
        gap_length = time - gap_start
        if gap_length > 1e-9:
            slot.predictor.on_idle_end(
                IdleFeedback(
                    start=gap_start,
                    end=time,
                    idle_class=classify_gap(
                        gap_length, self.wait_window, self.breakeven
                    ),
                )
            )

    def on_access(self, access: DiskAccess, busy_end: float) -> None:
        """Feed one disk access to its process's local predictor.

        ``busy_end`` is the completion time of the access (arrival plus
        service, after serialization); intents are anchored to it.
        """
        slot = self._slots.get(access.pid)
        if slot is None:
            raise SimulationError(
                f"access from pid {access.pid} which is not live"
            )
        predictor = slot.predictor
        last_busy_end = slot.last_busy_end
        gap_start = (
            last_busy_end if last_busy_end is not None else slot.started_at
        )
        time = access.time
        gap_length = time - gap_start
        if gap_length > 1e-9:
            # classify_gap inlined: this runs once per disk access.
            if gap_length > self.breakeven:
                idle_class = IdleClass.LONG
            elif gap_length > self.wait_window:
                idle_class = IdleClass.SHORT
            else:
                idle_class = IdleClass.SUB_WINDOW
            predictor.on_idle_end(
                IdleFeedback(start=gap_start, end=time, idle_class=idle_class)
            )
        intent = predictor.on_access(access)
        delay = intent.delay
        slot.ready_time = None if delay is None else busy_end + delay
        slot.source = intent.source
        slot.last_busy_end = busy_end

    def decision(self) -> Optional[GlobalDecision]:
        """Current global decision given the standing per-process intents.

        ``None`` while any live process predicts "no idle".  With no live
        processes the disk may be shut down immediately — represented by
        a ready time of minus infinity that the engine clamps to the
        interval start.
        """
        slots = self._slots
        if not slots:
            return GlobalDecision(
                ready_time=float("-inf"), source=PredictorSource.PRIMARY
            )
        latest_time: Optional[float] = None
        latest_source = PredictorSource.PRIMARY
        for slot in slots.values():
            ready = slot.ready_time
            if ready is None:
                return None
            if latest_time is None or ready > latest_time:
                latest_time = ready
                latest_source = slot.source
        return GlobalDecision(ready_time=latest_time, source=latest_source)

    @staticmethod
    def _absolute(intent: ShutdownIntent, anchor: float) -> Optional[float]:
        if intent.delay is None:
            return None
        return anchor + intent.delay
