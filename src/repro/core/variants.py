"""PCAP variant configurations (§4, §6.4).

The paper evaluates a family of PCAP configurations:

* **PCAP**   — base path-signature predictor;
* **PCAPh**  — + idle-period history (length 6);
* **PCAPf**  — + file descriptor;
* **PCAPfh** — + both;
* **PCAPa**  — base PCAP that *discards* its table at application exit
  (the table-reuse ablation of Figure 10);
* **PCAPc**  — our confidence-counter extension (not in the paper).

A :class:`PCAPVariant` owns the application-level shared state (the
prediction table and, for PCAPc, the confidence estimator) and
manufactures the per-process :class:`~repro.core.pcap.PCAPPredictor`
instances bound to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.confidence import ConfidenceEstimator
from repro.core.pcap import PCAPPredictor
from repro.core.table import PredictionTable

#: The history length the paper found to maximize savings (§6.4.1).
PAPER_HISTORY_LENGTH = 6


@dataclass(frozen=True, slots=True)
class PCAPVariantConfig:
    """Immutable description of one PCAP configuration."""

    wait_window: float = 1.0
    backup_timeout: Optional[float] = 10.0
    history_length: Optional[int] = None
    use_file_descriptor: bool = False
    #: Keep the table across executions (§4.2)?  False = PCAPa-style.
    reuse_table: bool = True
    #: Share one table among the application's processes (the paper's
    #: design: "it associates the prediction table with a particular
    #: application")?  False gives each process a private table — the
    #: ablation quantifying why application-level association matters.
    share_table_across_processes: bool = True
    use_confidence: bool = False
    table_capacity: Optional[int] = None

    @property
    def name(self) -> str:
        # Paper order: PCAPf, PCAPh, PCAPfh.
        suffix = ""
        if self.use_file_descriptor:
            suffix += "f"
        if self.history_length:
            suffix += "h"
        if self.use_confidence:
            suffix += "c"
        if not self.reuse_table:
            suffix += "a"
        if not self.share_table_across_processes:
            suffix += "p"
        return "PCAP" + suffix


class PCAPVariant:
    """Application-level PCAP state plus a per-process predictor factory."""

    def __init__(self, config: PCAPVariantConfig) -> None:
        self.config = config
        self.table = PredictionTable(capacity=config.table_capacity)
        #: Private per-process tables (only when sharing is disabled).
        self._private_tables: dict[int, PredictionTable] = {}
        self.confidence = (
            ConfidenceEstimator() if config.use_confidence else None
        )

    @property
    def name(self) -> str:
        return self.config.name

    def create_local(self, pid: int) -> PCAPPredictor:
        """A fresh per-process predictor sharing the application table
        (or bound to the pid's private table for the PCAPp ablation)."""
        if self.config.share_table_across_processes:
            table = self.table
        else:
            table = self._private_tables.setdefault(
                pid, PredictionTable(capacity=self.config.table_capacity)
            )
        return PCAPPredictor(
            table,
            wait_window=self.config.wait_window,
            backup_timeout=self.config.backup_timeout,
            history_length=self.config.history_length,
            use_file_descriptor=self.config.use_file_descriptor,
            confidence=self.confidence,
        )

    def on_execution_end(self) -> None:
        """Apply the table-reuse policy at application exit."""
        if not self.config.reuse_table:
            self.table.clear()
            for table in self._private_tables.values():
                table.clear()
            if self.confidence is not None:
                self.confidence.clear()

    @property
    def table_size(self) -> int:
        if self.config.share_table_across_processes:
            return len(self.table)
        return sum(len(table) for table in self._private_tables.values())


def pcap(**overrides) -> PCAPVariantConfig:
    """Base PCAP (paper defaults)."""
    return PCAPVariantConfig(**overrides)


def pcap_h(history_length: int = PAPER_HISTORY_LENGTH, **overrides) -> PCAPVariantConfig:
    """PCAPh: idle-period history added to the key."""
    return PCAPVariantConfig(history_length=history_length, **overrides)


def pcap_f(**overrides) -> PCAPVariantConfig:
    """PCAPf: file descriptor added to the key."""
    return PCAPVariantConfig(use_file_descriptor=True, **overrides)


def pcap_fh(history_length: int = PAPER_HISTORY_LENGTH, **overrides) -> PCAPVariantConfig:
    """PCAPfh: history and file descriptor combined."""
    return PCAPVariantConfig(
        history_length=history_length, use_file_descriptor=True, **overrides
    )


def pcap_a(**overrides) -> PCAPVariantConfig:
    """PCAPa: table discarded at application exit (Figure 10 ablation)."""
    return PCAPVariantConfig(reuse_table=False, **overrides)


def pcap_c(**overrides) -> PCAPVariantConfig:
    """PCAPc: confidence-counter extension (ours, not the paper's)."""
    return PCAPVariantConfig(use_confidence=True, **overrides)


def pcap_p(**overrides) -> PCAPVariantConfig:
    """PCAPp: private per-process tables (ablation of the paper's
    application-level table association)."""
    return PCAPVariantConfig(share_table_across_processes=False, **overrides)
