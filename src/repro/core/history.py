"""Idle-period history register (§4.1.2, PCAPh).

The history optimization appends a bit-vector of recent idle period
classes to the prediction-table key: a period between the wait-window and
the breakeven time is recorded as ``0``, a period longer than breakeven
as ``1``; periods shorter than the wait-window are filtered at run time
and never recorded.  The paper uses a history length of six.
"""

from __future__ import annotations

from repro.predictors.base import IdleClass


class IdleHistoryRegister:
    """Shift register of the last ``length`` idle-period class bits.

    The register starts empty at each execution: until ``length`` periods
    have been observed the key is the (shorter) sequence seen so far,
    which simply means early-execution signatures train separate entries —
    the extra training the paper attributes to PCAPh.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError("history length must be positive")
        self.length = length
        self._bits: tuple[int, ...] = ()
        self._packed = 1

    def record(self, idle_class: IdleClass) -> None:
        """Record one finished idle period (sub-window periods ignored)."""
        if idle_class == IdleClass.SUB_WINDOW:
            return
        bit = 1 if idle_class == IdleClass.LONG else 0
        self._bits = (self._bits + (bit,))[-self.length :]
        self._packed = self._pack()

    @property
    def bits(self) -> tuple[int, ...]:
        """Current history, oldest first (length 0..``length``)."""
        return self._bits

    def _pack(self) -> int:
        value = 1  # sentinel high bit encodes the length
        for bit in self._bits:
            value = (value << 1) | bit
        return value

    def as_int(self) -> int:
        """The bits packed into an integer with a length marker.

        Packing ``(len, bits)`` into one int keeps keys hashable and
        distinguishes e.g. history ``(0,)`` from ``(0, 0)``.  Maintained
        incrementally: the register is read once per access but written
        only once per idle period, so the packed value is cached.
        """
        return self._packed

    def clear(self) -> None:
        self._bits = ()
        self._packed = 1
