"""Path signatures: the paper's encoding of PC paths (§3.2).

A *path* is the sequence of program counters that triggered I/O
operations since the last long idle period.  Storing and comparing
arbitrary-length paths is expensive, so the paper encodes a path by
**arithmetically adding its PCs into a 4-byte variable** (following Lai &
Falsafi's last-touch predictor).  The encoding is order-insensitive —
``{PC1, PC2, PC1}`` and ``{PC1, PC1, PC2}`` alias — but the paper observed
no aliasing in practice and kept the cheap encoding; we do the same and
expose the aliasing property to tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Signatures are 4-byte variables (§3.2).
SIGNATURE_BITS = 32
SIGNATURE_MASK = (1 << SIGNATURE_BITS) - 1


def fold_pc(signature: int, pc: int) -> int:
    """Add one PC into a signature, wrapping at 32 bits."""
    return (signature + pc) & SIGNATURE_MASK


def signature_of_path(pcs: Iterable[int]) -> int:
    """Signature of a whole path (left fold of :func:`fold_pc` from 0)."""
    signature = 0
    for pc in pcs:
        signature = fold_pc(signature, pc)
    return signature


@dataclass(slots=True)
class PathSignature:
    """Mutable per-process "current signature" register (§3.2, Figure 4).

    The kernel keeps one 4-byte current-signature variable in each
    process's status structure.  After an idle period longer than the
    breakeven time, the *next* I/O's PC **overwrites** the register;
    every subsequent I/O's PC is added in.
    """

    value: int = 0
    _restart_pending: bool = True

    def observe(self, pc: int) -> int:
        """Fold the PC of a new I/O; returns the updated signature."""
        if self._restart_pending:
            self.value = pc & SIGNATURE_MASK
            self._restart_pending = False
        else:
            self.value = fold_pc(self.value, pc)
        return self.value

    def restart(self) -> None:
        """A long idle period ended the current path: the next I/O's PC
        starts a fresh signature."""
        self._restart_pending = True

    def reset(self) -> None:
        """Full reset (new execution)."""
        self.value = 0
        self._restart_pending = True

    @property
    def path_open(self) -> bool:
        """True when at least one PC has been folded since the restart."""
        return not self._restart_pending
