"""Confidence counters — an extension beyond the paper's base design.

The paper's PCAP inserts a signature after one long idle period and never
unlearns it; a signature that aliases both long and short idle behaviour
keeps mispredicting.  Borrowing the 2-bit saturating counters of classic
branch predictors, :class:`ConfidenceEstimator` gates predictions on a
per-key counter trained by actual outcomes.  PCAP with confidence
("PCAPc") trades a little coverage for fewer repeat mispredictions; the
ablation bench quantifies the trade.
"""

from __future__ import annotations


class ConfidenceEstimator:
    """Per-key saturating counters gating shutdown predictions.

    A key predicts shutdown only while its counter is at or above
    ``threshold``.  Counters start at ``initial`` when a key is first
    trained (so a fresh entry predicts, like base PCAP), increase on
    confirmed long idle periods and decrease on mispredictions.
    """

    def __init__(
        self, *, threshold: int = 2, maximum: int = 3, initial: int = 2
    ) -> None:
        if not 0 <= threshold <= maximum:
            raise ValueError("need 0 <= threshold <= maximum")
        if not 0 <= initial <= maximum:
            raise ValueError("need 0 <= initial <= maximum")
        self.threshold = threshold
        self.maximum = maximum
        self.initial = initial
        self._counters: dict = {}

    def allows(self, key) -> bool:
        """True when ``key`` is confident enough to predict shutdown."""
        return self._counters.get(key, self.initial) >= self.threshold

    def record(self, key, *, long_idle: bool) -> None:
        """Train ``key`` with the actual outcome of its prediction window."""
        current = self._counters.get(key, self.initial)
        if long_idle:
            current = min(self.maximum, current + 1)
        else:
            current = max(0, current - 1)
        self._counters[key] = current

    def counter(self, key) -> int:
        return self._counters.get(key, self.initial)

    def clear(self) -> None:
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._counters)
