"""The paper's contribution: PCAP and the Global Shutdown Predictor."""

from repro.core.confidence import ConfidenceEstimator
from repro.core.global_predictor import (
    GlobalDecision,
    GlobalShutdownPredictor,
)
from repro.core.history import IdleHistoryRegister
from repro.core.pcap import PCAPPredictor
from repro.core.persistence import (
    dump_table,
    load_table,
    load_table_file,
    save_table_file,
)
from repro.core.signature import (
    SIGNATURE_BITS,
    SIGNATURE_MASK,
    PathSignature,
    fold_pc,
    signature_of_path,
)
from repro.core.table import PredictionTable, TableStats, storage_bytes
from repro.core.variants import (
    PAPER_HISTORY_LENGTH,
    PCAPVariant,
    PCAPVariantConfig,
    pcap,
    pcap_a,
    pcap_c,
    pcap_f,
    pcap_fh,
    pcap_h,
    pcap_p,
)

__all__ = [
    "ConfidenceEstimator",
    "GlobalDecision",
    "GlobalShutdownPredictor",
    "IdleHistoryRegister",
    "PAPER_HISTORY_LENGTH",
    "PCAPPredictor",
    "PCAPVariant",
    "PCAPVariantConfig",
    "PathSignature",
    "PredictionTable",
    "SIGNATURE_BITS",
    "SIGNATURE_MASK",
    "TableStats",
    "dump_table",
    "fold_pc",
    "load_table",
    "load_table_file",
    "pcap",
    "pcap_a",
    "pcap_c",
    "pcap_f",
    "pcap_fh",
    "pcap_h",
    "pcap_p",
    "save_table_file",
    "signature_of_path",
    "storage_bytes",
]
