"""The PCAP prediction table (§3.2, §4.2).

The table is a set of *keys* that were each observed immediately before
an idle period longer than the breakeven time.  For base PCAP a key is
just the 32-bit path signature; the PCAPh/PCAPf/PCAPfh variants extend the
key with the idle-history register and/or the file descriptor
(:mod:`repro.core.variants`).

The paper's table is unbounded in the studied workloads (at most 139
entries, Table 3) but §4.2 prescribes LRU replacement under a storage
limit; :class:`PredictionTable` supports an optional capacity with LRU
eviction, and counts insertions/lookups for the Table-3 analysis.

One table is associated with each *application* and shared by its
processes; with table reuse enabled it also persists across executions
(:mod:`repro.core.persistence`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.cache.lru import LRUMapping

#: A prediction-table key.  Base PCAP: ``int`` signature; variants use
#: tuples of hashable features.
TableKey = Hashable


@dataclass(slots=True)
class TableStats:
    """Lifetime counters of one prediction table."""

    lookups: int = 0
    matches: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def match_ratio(self) -> float:
        return self.matches / self.lookups if self.lookups else 0.0


class PredictionTable:
    """Set of trained keys with optional LRU-bounded capacity."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._entries: LRUMapping[TableKey, None] = LRUMapping(capacity)
        self.stats = TableStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TableKey) -> bool:
        return key in self._entries

    def lookup(self, key: TableKey) -> bool:
        """True when ``key`` is trained (refreshes LRU recency)."""
        stats = self.stats
        stats.lookups += 1
        found = self._entries.touch(key)
        if found:
            stats.matches += 1
        return found

    def train(self, key: TableKey) -> bool:
        """Insert ``key``; returns True when it was new."""
        if key in self._entries:
            self._entries.get(key)  # refresh recency
            return False
        evicted = self._entries.put(key, None)
        self.stats.insertions += 1
        if evicted is not None:
            self.stats.evictions += 1
        return True

    def forget(self, key: TableKey) -> bool:
        """Remove ``key`` (used by the confidence extension)."""
        had = key in self._entries
        self._entries.pop(key)
        return had

    def keys(self) -> list[TableKey]:
        """Trained keys, least recently used first."""
        return [key for key, _ in self._entries.items()]

    def clear(self) -> None:
        """Discard all training (the PCAPa/LTa ablation at app exit)."""
        self._entries.clear()

    @property
    def capacity(self) -> Optional[int]:
        return self._entries.capacity


def storage_bytes(table: PredictionTable, bytes_per_entry: int = 4) -> int:
    """Paper's storage estimate: each entry encodes into a 4-byte word."""
    return len(table) * bytes_per_entry


def merge_tables(tables: Iterable[PredictionTable]) -> PredictionTable:
    """Union of several tables (utility for analyses)."""
    merged = PredictionTable()
    for table in tables:
        for key in table.keys():
            merged.train(key)
    return merged
