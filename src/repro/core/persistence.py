"""Prediction-table persistence (§4.2, "Reusing prediction tables").

The paper saves the trained table into the application's initialization
file at exit and reloads it at the next start, carrying predictions
across executions.  Inside the simulator the table object simply stays
alive between executions; this module provides the on-disk counterpart so
real deployments (and the examples) can round-trip tables exactly like
the paper describes.

Keys are ints or (nested) tuples of ints; the JSON schema records tuples
as lists and restores them losslessly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Union

from repro import faults
from repro.core.table import PredictionTable, TableKey
from repro.errors import PersistenceError

#: Schema version written into every file.
FORMAT_VERSION = 1

#: Transient ``OSError`` attempts per file operation.  Initialization
#: files live on ordinary filesystems where EIO/EAGAIN are almost always
#: momentary; a short bounded retry masks them without hiding a dead
#: disk (the final failure still surfaces as :class:`PersistenceError`).
IO_ATTEMPTS = 3
_IO_RETRY_DELAY = 0.01

_JsonKey = Union[int, list]


def _key_to_json(key: TableKey) -> _JsonKey:
    if isinstance(key, bool) or not isinstance(key, (int, tuple)):
        raise PersistenceError(
            f"table keys must be ints or tuples of ints, got {key!r}"
        )
    if isinstance(key, int):
        return key
    return [_key_to_json(part) for part in key]


def _key_from_json(raw: _JsonKey) -> TableKey:
    if isinstance(raw, int):
        return raw
    if isinstance(raw, list):
        return tuple(_key_from_json(part) for part in raw)
    raise PersistenceError(f"malformed key {raw!r} in saved table")


def dump_table(table: PredictionTable, application: str) -> str:
    """Serialize a table to the JSON text of an "initialization file"."""
    payload = {
        "format": FORMAT_VERSION,
        "application": application,
        "capacity": table.capacity,
        "entries": [_key_to_json(key) for key in table.keys()],
    }
    return json.dumps(payload)


def load_table(text: str) -> tuple[PredictionTable, str]:
    """Parse :func:`dump_table` output; returns (table, application)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError("saved table is not valid JSON") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_VERSION:
        raise PersistenceError("unsupported table format")
    try:
        application = str(payload["application"])
        entries = payload["entries"]
        capacity = payload.get("capacity")
    except KeyError as exc:
        raise PersistenceError("saved table is missing fields") from exc
    table = PredictionTable(capacity=capacity)
    if not isinstance(entries, list):
        raise PersistenceError("saved entries must be a list")
    for raw in entries:
        table.train(_key_from_json(raw))
    return table, application


def _retry_io(path: Union[str, Path], operation: str, action):
    """Run ``action`` with up to :data:`IO_ATTEMPTS` transient retries.

    ``faults.persistence_gate`` is consulted before every attempt so a
    fault plan can inject transient (or persistent) ``OSError`` at this
    site; real ``OSError`` from the filesystem retries identically.
    """
    last: OSError | None = None
    for attempt in range(1, IO_ATTEMPTS + 1):
        try:
            faults.persistence_gate(path, operation)
            return action()
        except OSError as exc:
            last = exc
            if attempt < IO_ATTEMPTS:
                time.sleep(_IO_RETRY_DELAY * attempt)
    raise PersistenceError(
        f"cannot {operation} table file {path} "
        f"after {IO_ATTEMPTS} attempts"
    ) from last


def save_table_file(
    table: PredictionTable, application: str, path: Union[str, Path]
) -> None:
    """Write the table to ``path`` (the app's initialization file).

    Transient ``OSError`` is retried up to :data:`IO_ATTEMPTS` times;
    a persistent failure raises :class:`PersistenceError`.
    """
    text = dump_table(table, application)
    _retry_io(
        path, "write", lambda: Path(path).write_text(text, encoding="utf-8")
    )


def load_table_file(path: Union[str, Path]) -> tuple[PredictionTable, str]:
    """Read a table saved by :func:`save_table_file`.

    Transient ``OSError`` is retried up to :data:`IO_ATTEMPTS` times;
    a persistent failure raises :class:`PersistenceError`.
    """
    text = _retry_io(
        path, "read", lambda: Path(path).read_text(encoding="utf-8")
    )
    return load_table(text)
