"""PCAP — the Program-Counter Access Predictor (paper §3–§4).

Runtime behaviour (Figure 4):

1. Each process keeps a 4-byte *current signature*.  After an idle period
   longer than the breakeven time, the PC of the first I/O **overwrites**
   the signature; each subsequent I/O's PC is arithmetically added.
2. After every update the signature (extended with the optional history
   bits and file descriptor) is looked up in the application's prediction
   table.  A match predicts a long idle period: the disk is shut down
   once the sliding wait-window passes with no further I/O.
3. No match implies "no idle"; the backup timeout predictor covers the
   period instead (§4.3) — the only time the timeout overrides PCAP.
4. When an idle period longer than breakeven actually ends and its
   signature was not in the table, the signature is recorded (training).

One :class:`PCAPPredictor` instance is attached to one process; the
:class:`~repro.core.table.PredictionTable` is shared per *application*
(across processes and, with table reuse, across executions — §4.2).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.cache.filter import DiskAccess
from repro.core.confidence import ConfidenceEstimator
from repro.core.history import IdleHistoryRegister
from repro.core.signature import PathSignature
from repro.core.table import PredictionTable
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)
from repro._tracing import HistoryUpdate, SignatureLookup, TableTrain


class PCAPPredictor(LocalPredictor):
    """Per-process PCAP with optional history / file-descriptor context.

    Parameters
    ----------
    table:
        The application's shared prediction table.
    wait_window:
        Sliding wait-window (§4.1.1); the delay between a matched
        signature and the actual shutdown.  Paper value: 1 s.
    backup_timeout:
        Backup timeout predictor (§4.3); ``None`` disables the backup.
        Paper value: 10 s.
    history_length:
        Length of the idle-period history bit-vector (PCAPh, §4.1.2);
        ``None`` disables history.  Paper value: 6.
    use_file_descriptor:
        Append the triggering I/O's fd to the table key (PCAPf, §4.1.2).
    confidence:
        Optional :class:`ConfidenceEstimator` gating predictions (the
        PCAPc extension; not part of the paper's design).
    """

    def __init__(
        self,
        table: PredictionTable,
        *,
        wait_window: float = 1.0,
        backup_timeout: Optional[float] = 10.0,
        history_length: Optional[int] = None,
        use_file_descriptor: bool = False,
        confidence: Optional[ConfidenceEstimator] = None,
    ) -> None:
        if wait_window < 0:
            raise ConfigurationError("wait window must be non-negative")
        if backup_timeout is not None and backup_timeout <= 0:
            raise ConfigurationError("backup timeout must be positive")
        self.table = table
        self.wait_window = wait_window
        self.backup_timeout = backup_timeout
        self.use_file_descriptor = use_file_descriptor
        self.confidence = confidence
        self._signature = PathSignature()
        self._history = (
            IdleHistoryRegister(history_length) if history_length else None
        )
        #: Key in effect when the current idle gap began — the training
        #: target if that gap turns out to be long.
        self._pending_key: Optional[Hashable] = None
        #: Whether the standing intent is a primary (table-match) shutdown;
        #: used to train the confidence estimator on actual outcomes.
        self._pending_primary = False
        # Intents are immutable and parameter-determined: build each once
        # instead of once per access (the engine hot path).
        self._primary_intent = ShutdownIntent(
            delay=wait_window, source=PredictorSource.PRIMARY
        )
        self._backup = (
            ShutdownIntent.never()
            if backup_timeout is None
            else ShutdownIntent(
                delay=backup_timeout, source=PredictorSource.BACKUP
            )
        )

    @property
    def name(self) -> str:  # type: ignore[override]
        suffix = ""
        if self.use_file_descriptor:
            suffix += "f"
        if self._history is not None:
            suffix += "h"
        if self.confidence is not None:
            suffix += "c"
        return "PCAP" + suffix

    @property
    def history_length(self) -> Optional[int]:
        return self._history.length if self._history else None

    def begin_execution(self, start_time: float) -> None:
        self._signature.reset()
        if self._history is not None:
            self._history.clear()
        self._pending_key = None
        self._pending_primary = False

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        return self._backup_intent()

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        signature = self._signature.observe(access.pc)
        # Inlined _make_key: this runs once per disk access and the key
        # shape is fixed at construction time.
        history = self._history
        if history is None:
            key: Hashable = (
                (signature, access.fd)
                if self.use_file_descriptor
                else signature
            )
        elif self.use_file_descriptor:
            key = (signature, history.as_int(), access.fd)
        else:
            key = (signature, history.as_int())
        self._pending_key = key
        matched = self.table.lookup(key)
        if self.tracer is not None:
            self.tracer.emit(
                SignatureLookup(
                    time=access.time,
                    pid=self.trace_pid if self.trace_pid is not None else access.pid,
                    key=key,
                    hit=matched,
                )
            )
        if matched and (self.confidence is None or self.confidence.allows(key)):
            self._pending_primary = True
            return self._primary_intent
        self._pending_primary = False
        return self._backup

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        if feedback.idle_class == IdleClass.SUB_WINDOW:
            # Filtered at run time: the wait-window cancelled any pending
            # shutdown and the path keeps accumulating (§4.1.1).
            self._pending_primary = False
            return
        if feedback.idle_class == IdleClass.LONG:
            if self._pending_key is not None:
                inserted = self.table.train(self._pending_key)
                if self.tracer is not None:
                    self.tracer.emit(
                        TableTrain(
                            time=feedback.end,
                            pid=self.trace_pid or 0,
                            key=self._pending_key,
                            inserted=inserted,
                        )
                    )
                if self.confidence is not None:
                    self.confidence.record(self._pending_key, long_idle=True)
            # Prediction verified (or training complete): path restarts,
            # and the trained key is consumed — a further idle period with
            # no intervening I/O (the trailing gap) must not retrain it.
            self._signature.restart()
            self._pending_key = None
        else:  # SHORT: a shutdown issued here would have been a miss.
            if (
                self.confidence is not None
                and self._pending_primary
                and self._pending_key is not None
            ):
                self.confidence.record(self._pending_key, long_idle=False)
        if self._history is not None:
            self._history.record(feedback.idle_class)
            if self.tracer is not None:
                self.tracer.emit(
                    HistoryUpdate(
                        time=feedback.end,
                        pid=self.trace_pid or 0,
                        bit=1 if feedback.idle_class == IdleClass.LONG else 0,
                        register=self._history.as_int(),
                    )
                )
        self._pending_primary = False

    def _make_key(self, signature: int, access: DiskAccess) -> Hashable:
        if self._history is None and not self.use_file_descriptor:
            return signature
        key: tuple = (signature,)
        if self._history is not None:
            key += (self._history.as_int(),)
        if self.use_file_descriptor:
            key += (access.fd,)
        return key

    def _backup_intent(self) -> ShutdownIntent:
        return self._backup
