"""Units, constants, and small numeric helpers.

The whole library measures **time in seconds** (float), **power in watts**
and **energy in joules**.  These helpers exist so magnitudes are written
with intent (``ms(35)`` instead of ``0.035``) and so floating-point
comparisons are made consistently everywhere.
"""

from __future__ import annotations

import math

#: Tolerance used for float comparisons of times and energies throughout
#: the simulator.  Events closer together than this are considered
#: simultaneous.
EPSILON: float = 1e-9


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / 1000.0


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * 60.0


def kb(value: float) -> int:
    """Convert kibibytes to bytes."""
    return int(value * 1024)


def mb(value: float) -> int:
    """Convert mebibytes to bytes."""
    return int(value * 1024 * 1024)


def approx_equal(a: float, b: float, tol: float = EPSILON) -> bool:
    """True when ``a`` and ``b`` are within ``tol`` absolutely or 1e-9
    relatively; suitable for energies accumulated over many events."""
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=tol)


def non_negative(value: float) -> float:
    """Clamp tiny negative float noise to exactly zero.

    Energy and duration arithmetic can produce values like ``-1e-15``;
    clamping keeps ledgers clean.  Genuinely negative values are a bug and
    raise ``ValueError``.
    """
    if value < -1e-6:
        raise ValueError(f"expected a non-negative quantity, got {value!r}")
    return max(0.0, value)
