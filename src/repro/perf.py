"""Performance measurement and the regression gate (``repro bench``).

The repository's throughput promises — the columnar hot path of the
simulation engine, the page-cache filter, and the cold→warm speedup of
the artifact cache — are protected by a machine-readable benchmark
report, ``BENCH_engine.json``:

* :func:`run_benchmarks` measures the hot paths and returns a
  :class:`PerfReport`;
* :func:`compare_reports` checks a fresh report against a committed
  baseline with a relative tolerance band and reports regressions;
* the ``repro bench`` CLI subcommand wires both together and exits
  non-zero on a regression, which is what CI's perf-smoke job runs.

Gating uses each benchmark's **best** round (highest observed
throughput): the minimum time of N rounds is far less sensitive to
scheduler noise than the mean, which matters on shared CI runners.  The
mean is still reported for humans.  Baselines are only comparable
between same-``mode`` runs on comparable hardware; the committed
baseline tracks the quick mode that CI executes.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Report schema version (bump on layout changes).
REPORT_SCHEMA = 1

#: Default relative throughput-drop tolerance of the regression gate.
DEFAULT_TOLERANCE = 0.30

#: Workload scale per mode: quick keeps CI runs in seconds; full matches
#: the paper-scale workload of benchmarks/bench_engine_throughput.py.
QUICK_SCALE = 0.4
FULL_SCALE = 1.0

#: Minimum fused-over-per-cell sweep speedup the gate demands.  A
#: within-report ratio of best rounds, so it is machine-insensitive:
#: both paths run on the same box in the same process.  The committed
#: baseline additionally holds the fused path's absolute throughput
#: under the regular tolerance band.
FUSED_SPEEDUP_FLOOR = 3.2

#: Minimum batched-fleet-over-per-device-loop speedup the gate demands
#: at :data:`FLEET_DEVICES` devices.  Like the fused floor it is a
#: within-report ratio of best rounds; the per-device loop is measured
#: on a :data:`FLEET_LOOP_SAMPLE`-device sample and projected linearly
#: (exact, because the loop is independent identical runs — device
#: count is a pure multiplier on its work).
FLEET_SPEEDUP_FLOOR = 5.0

#: Fleet size of the ``fleet_sim`` benchmark.
FLEET_DEVICES = 1000

#: Devices actually timed in the per-device reference loop; timing all
#: :data:`FLEET_DEVICES` would spend minutes proving a linear scaling
#: the loop has by construction.
FLEET_LOOP_SAMPLE = 8


@dataclass(slots=True)
class BenchResult:
    """One benchmark's measurement (seconds per round, rounds)."""

    name: str
    mean_s: float
    best_s: float
    rounds: int
    #: Work items processed per round (accesses, events, ...), for
    #: context in reports; 0 when not meaningful.
    items: int = 0

    @property
    def ops(self) -> float:
        """Mean rounds per second."""
        return 1.0 / self.mean_s if self.mean_s > 0 else 0.0

    @property
    def best_ops(self) -> float:
        """Best-round throughput — the gated metric."""
        return 1.0 / self.best_s if self.best_s > 0 else 0.0


@dataclass(slots=True)
class PerfReport:
    """A full benchmark run, serializable to ``BENCH_engine.json``."""

    mode: str
    scale: float
    results: dict[str, BenchResult] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "schema": REPORT_SCHEMA,
            "mode": self.mode,
            "scale": self.scale,
            "benchmarks": {
                name: {
                    "mean_s": result.mean_s,
                    "best_s": result.best_s,
                    "rounds": result.rounds,
                    "items": result.items,
                }
                for name, result in self.results.items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_json(text: str) -> "PerfReport":
        payload = json.loads(text)
        report = PerfReport(
            mode=payload["mode"], scale=float(payload["scale"])
        )
        for name, entry in payload["benchmarks"].items():
            report.results[name] = BenchResult(
                name=name,
                mean_s=float(entry["mean_s"]),
                best_s=float(entry["best_s"]),
                rounds=int(entry["rounds"]),
                items=int(entry.get("items", 0)),
            )
        return report


@dataclass(frozen=True, slots=True)
class Regression:
    """One gated metric that fell outside the tolerance band."""

    name: str
    baseline_ops: float
    current_ops: float

    @property
    def drop(self) -> float:
        if self.baseline_ops <= 0:
            return 0.0
        return 1.0 - self.current_ops / self.baseline_ops


def _measure(
    fn: Callable[[], object], *, rounds: int, warmup: int = 2
) -> tuple[float, float]:
    """(mean, best) seconds per round of ``fn`` over ``rounds`` rounds."""
    for _ in range(warmup):
        fn()
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return sum(timings) / len(timings), min(timings)


#: Every entry :func:`run_benchmarks` can produce, in run order
#: (``repro bench --only`` validates against this list).
BENCHMARK_NAMES = (
    "cache_filter",
    "global_simulation",
    "learned_predictors",
    "tape_build",
    "fused_vector_lanes",
    "sweep_per_cell",
    "fused_sweep",
    "fleet_sim",
    "fleet_per_device_loop",
    "artifact_cache_warm",
    "artifact_cache_cold",
)


def run_benchmarks(
    *,
    quick: bool = False,
    cache_dir: Optional[str] = None,
    only: Optional[list[str]] = None,
) -> PerfReport:
    """Measure the hot paths and return a report.

    ``quick`` shrinks the workload (CI's perf-smoke mode).  The
    artifact-cache benchmark uses ``cache_dir`` as scratch space
    (a private temporary directory by default, removed afterwards).
    ``only`` restricts the run to the named entries (any subset of
    :data:`BENCHMARK_NAMES`; unknown names raise ``ValueError``) — the
    report then contains just those entries, and
    :func:`compare_reports` skips the absent ones.
    """
    from repro.cache.filter import filter_execution
    from repro.config import SimulationConfig
    from repro.predictors.registry import make_spec
    from repro.sim.engine import build_replay_tape, run_global_execution
    from repro.sim.fused import replay_execution
    from repro.workloads import build_application

    if only is not None:
        unknown = sorted(set(only) - set(BENCHMARK_NAMES))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s): {', '.join(unknown)}; "
                f"known: {', '.join(BENCHMARK_NAMES)}"
            )
    wanted = set(BENCHMARK_NAMES if only is None else only)

    def want(name: str) -> bool:
        return name in wanted

    scale = QUICK_SCALE if quick else FULL_SCALE
    rounds = 20 if quick else 50
    config = SimulationConfig()
    execution = build_application("mozilla", scale=scale).executions[0]
    filtered = filter_execution(execution, config.cache)

    report = PerfReport(mode="quick" if quick else "full", scale=scale)

    if want("cache_filter"):

        def bench_filter() -> None:
            filter_execution(execution, config.cache)

        mean_s, best_s = _measure(bench_filter, rounds=rounds)
        report.results["cache_filter"] = BenchResult(
            name="cache_filter",
            mean_s=mean_s,
            best_s=best_s,
            rounds=rounds,
            items=len(execution.io_events),
        )

    if want("global_simulation"):

        def bench_global() -> None:
            spec = make_spec("PCAPfh", config)
            run_global_execution(execution, filtered, spec, config)

        mean_s, best_s = _measure(bench_global, rounds=rounds)
        report.results["global_simulation"] = BenchResult(
            name="global_simulation",
            mean_s=mean_s,
            best_s=best_s,
            rounds=rounds,
            items=len(filtered.accesses),
        )

    if want("learned_predictors"):
        # The learned-predictor family (Q-DPM, learning-augmented ski
        # rental, PI feedback controller) over the same execution: all
        # three are generic stateful lanes, so this bounds the per-access
        # callback cost the fused kernel pays for them.

        def bench_learned() -> None:
            for name in ("QDPM", "SKI", "PI"):
                spec = make_spec(name, config)
                run_global_execution(execution, filtered, spec, config)

        mean_s, best_s = _measure(bench_learned, rounds=rounds)
        report.results["learned_predictors"] = BenchResult(
            name="learned_predictors",
            mean_s=mean_s,
            best_s=best_s,
            rounds=rounds,
            items=3 * len(filtered.accesses),
        )

    if want("tape_build"):
        # One columnar-tape construction (the vectorized builder on this
        # trace) — the per-execution cost every fused pass pays once and
        # the tape cache then amortizes away.

        def bench_tape_build() -> None:
            build_replay_tape(execution, filtered, config)

        mean_s, best_s = _measure(bench_tape_build, rounds=rounds)
        report.results["tape_build"] = BenchResult(
            name="tape_build",
            mean_s=mean_s,
            best_s=best_s,
            rounds=rounds,
            items=len(filtered.accesses),
        )

    if want("fused_vector_lanes"):
        # The whole-tape array programs alone: every constant-intent and
        # omniscient lane of the sweep set replayed over one prebuilt
        # tape (the stateful lanes keep the generic loop and are covered
        # by fused_sweep).
        tape = build_replay_tape(execution, filtered, config)
        vector_specs = [
            spec
            for spec in sweep_variant_specs(config)
            if spec.is_omniscient or spec.constant_intent_delay is not None
        ]

        def bench_vector_lanes() -> None:
            for spec in vector_specs:
                replay_execution(tape, spec, config)

        mean_s, best_s = _measure(bench_vector_lanes, rounds=rounds)
        report.results["fused_vector_lanes"] = BenchResult(
            name="fused_vector_lanes",
            mean_s=mean_s,
            best_s=best_s,
            rounds=rounds,
            items=len(vector_specs) * len(filtered.accesses),
        )

    sweep_rounds = max(5, rounds // 4)
    needs_runner = wanted & {
        "sweep_per_cell", "fused_sweep", "fleet_sim",
        "fleet_per_device_loop",
    }
    if needs_runner:
        # The fused-sweep pair: the paper's predictor comparison (a TP
        # timeout sweep plus the PCAP family and the Base baseline) over
        # the mozilla trace history, per-cell vs one fused streaming
        # pass.  Both use the same prewarmed runner, so the ratio
        # isolates simulation work; the equivalence of their outputs is
        # CI's fused-equivalence step, not this benchmark's concern.
        from repro.sim.experiment import ExperimentRunner
        from repro.sim.fused import run_fused_application
        from repro.workloads import build_suite

        suite = build_suite(scale=scale, applications=("mozilla",))
        runner = ExperimentRunner(suite, config)
        lanes = 0
        for _execution, s_filtered in runner.iter_filtered("mozilla"):
            lanes += len(s_filtered.accesses)
        variant_count = len(sweep_variant_specs(config))

    if want("sweep_per_cell"):

        def bench_sweep_per_cell() -> None:
            for spec in sweep_variant_specs(config):
                runner.run_global("mozilla", spec)

        mean_s, best_s = _measure(bench_sweep_per_cell, rounds=sweep_rounds)
        report.results["sweep_per_cell"] = BenchResult(
            name="sweep_per_cell",
            mean_s=mean_s,
            best_s=best_s,
            rounds=sweep_rounds,
            items=lanes * variant_count,
        )

    if want("fused_sweep"):

        def bench_fused_sweep() -> None:
            run_fused_application(
                runner, "mozilla", sweep_variant_specs(config)
            )

        mean_s, best_s = _measure(bench_fused_sweep, rounds=sweep_rounds)
        report.results["fused_sweep"] = BenchResult(
            name="fused_sweep",
            mean_s=mean_s,
            best_s=best_s,
            rounds=sweep_rounds,
            items=lanes * variant_count,
        )

    # The fleet pair: a 1000-device single-application fleet through the
    # device-batched engine (one fused replay scattered across the
    # device rows) vs the naive per-device Python loop (one run_global
    # per device, timed on a small sample and projected linearly by
    # fleet_speedup()).  Same prewarmed runner for both, so the ratio
    # isolates the batching; the fleet's bit-identity to the loop is
    # CI's fleet-smoke step, not this benchmark's concern.
    if wanted & {"fleet_sim", "fleet_per_device_loop"}:
        from repro.sim.fleet import replicate_devices, run_fleet

        fleet_devices = replicate_devices(("mozilla",), FLEET_DEVICES)
        sample_devices = fleet_devices[:FLEET_LOOP_SAMPLE]

    if want("fleet_sim"):

        def bench_fleet() -> None:
            run_fleet(runner, fleet_devices, ("PCAP",))

        mean_s, best_s = _measure(bench_fleet, rounds=sweep_rounds)
        report.results["fleet_sim"] = BenchResult(
            name="fleet_sim",
            mean_s=mean_s,
            best_s=best_s,
            rounds=sweep_rounds,
            items=FLEET_DEVICES,
        )

    if want("fleet_per_device_loop"):

        def bench_fleet_loop() -> None:
            for device in sample_devices:
                runner.run_global(device.application, "PCAP")

        mean_s, best_s = _measure(bench_fleet_loop, rounds=sweep_rounds)
        report.results["fleet_per_device_loop"] = BenchResult(
            name="fleet_per_device_loop",
            mean_s=mean_s,
            best_s=best_s,
            rounds=sweep_rounds,
            items=FLEET_LOOP_SAMPLE,
        )

    if wanted & {"artifact_cache_warm", "artifact_cache_cold"}:
        cold_s, warm_s = _artifact_cache_times(scale, cache_dir)
        if want("artifact_cache_warm"):
            report.results["artifact_cache_warm"] = BenchResult(
                name="artifact_cache_warm",
                mean_s=warm_s,
                best_s=warm_s,
                rounds=1,
                items=0,
            )
        # The cold/warm ratio is informational (rounds=1 each, so
        # noisy); the gate watches the warm pipeline's absolute
        # throughput above.
        if want("artifact_cache_cold"):
            report.results["artifact_cache_cold"] = BenchResult(
                name="artifact_cache_cold",
                mean_s=cold_s,
                best_s=cold_s,
                rounds=1,
                items=0,
            )
    return report


def _artifact_cache_times(
    scale: float, cache_dir: Optional[str]
) -> tuple[float, float]:
    """(cold, warm) wall-clock of the cached suite pipeline at ``scale``.

    The pipeline is trace generation plus page-cache filtering of every
    suite application — the two stages the artifact cache persists.
    """
    import repro.workloads.suite as suite_module
    from repro.config import SimulationConfig
    from repro.sim.artifact_cache import (
        ArtifactCache,
        generated_suite_fingerprints,
    )
    from repro.sim.experiment import ExperimentRunner
    from repro.workloads import build_suite

    scratch = cache_dir or tempfile.mkdtemp(prefix="repro-bench-cache-")

    def pipeline() -> float:
        suite_module._cached_suite.cache_clear()
        cache = ArtifactCache(scratch)
        start = time.perf_counter()
        suite = build_suite(scale=scale, cache=cache)
        runner = ExperimentRunner(
            suite, SimulationConfig(), artifact_cache=cache
        )
        runner.declare_fingerprints(
            generated_suite_fingerprints(scale, tuple(suite))
        )
        for name in suite:
            runner.filtered(name)
        return time.perf_counter() - start

    try:
        cold = pipeline()
        warm = pipeline()
    finally:
        if cache_dir is None:
            shutil.rmtree(scratch, ignore_errors=True)
        suite_module._cached_suite.cache_clear()
    return cold, warm


def sweep_variant_specs(config) -> list:
    """The fused-sweep benchmark's variant set (fresh, stateful specs).

    The full-suite comparison a sweep actually runs: the paper's TP
    timeout ladder, the breakeven timeout, LT, the four main PCAP
    variants, and the Base baseline — 13 lanes.
    """
    from repro.predictors.registry import make_spec, tp_spec

    specs = [
        tp_spec(config, timeout=value, name=f"TP({value:g}s)")
        for value in (0.5, 1.0, 2.0, 5.0, 10.0, 20.0)
    ]
    specs.append(make_spec("TP-BE", config))
    for name in ("LT", "PCAP", "PCAPh", "PCAPf", "PCAPfh", "Base"):
        specs.append(make_spec(name, config))
    return specs


def fused_speedup(report: PerfReport) -> Optional[float]:
    """Best-round fused-over-per-cell sweep speedup, or ``None`` when the
    report lacks either entry (e.g. an old baseline)."""
    per_cell = report.results.get("sweep_per_cell")
    fused = report.results.get("fused_sweep")
    if per_cell is None or fused is None or fused.best_s <= 0:
        return None
    return per_cell.best_s / fused.best_s


def fleet_speedup(report: PerfReport) -> Optional[float]:
    """Best-round batched-fleet speedup over the per-device loop, or
    ``None`` when the report lacks either entry (e.g. an old baseline).

    The loop entry covers ``items`` sampled devices; its cost at the
    fleet entry's device count is the linear projection
    ``best_s / items × fleet_items`` (exact — the loop is independent
    identical runs).
    """
    fleet = report.results.get("fleet_sim")
    loop = report.results.get("fleet_per_device_loop")
    if (
        fleet is None
        or loop is None
        or fleet.best_s <= 0
        or loop.items <= 0
    ):
        return None
    projected_loop_s = loop.best_s / loop.items * fleet.items
    return projected_loop_s / fleet.best_s


#: Benchmarks whose throughput the regression gate enforces.  The
#: artifact-cache timings are single-shot and I/O-bound — reported for
#: humans, not gated.
GATED_BENCHMARKS = (
    "cache_filter",
    "global_simulation",
    "learned_predictors",
    "tape_build",
    "fused_vector_lanes",
    "sweep_per_cell",
    "fused_sweep",
    "fleet_sim",
)


def compare_reports(
    current: PerfReport,
    baseline: PerfReport,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[Regression]:
    """Gated benchmarks whose throughput dropped more than ``tolerance``.

    Returns an empty list when everything is within the band.  Raises
    ``ValueError`` when the reports are not comparable (different mode
    or scale — a baseline from another mode says nothing).

    Beyond the per-benchmark band, the fused sweep kernel's speedup
    claim is gated directly: the *current* report's fused-over-per-cell
    best-round ratio must stay at or above
    :data:`FUSED_SPEEDUP_FLOOR` (a within-report ratio, immune to the
    runner being faster or slower than the baseline machine).  The
    fleet engine's batching claim is gated the same way: the
    fleet-over-per-device-loop ratio (:func:`fleet_speedup`) must stay
    at or above :data:`FLEET_SPEEDUP_FLOOR`.
    """
    if current.mode != baseline.mode or current.scale != baseline.scale:
        raise ValueError(
            f"incomparable reports: current is {current.mode}@"
            f"{current.scale}, baseline is {baseline.mode}@{baseline.scale}"
        )
    regressions: list[Regression] = []
    for name in GATED_BENCHMARKS:
        if name not in current.results or name not in baseline.results:
            continue
        base_ops = baseline.results[name].best_ops
        cur_ops = current.results[name].best_ops
        if base_ops <= 0:
            continue
        if 1.0 - cur_ops / base_ops > tolerance:
            regressions.append(
                Regression(
                    name=name, baseline_ops=base_ops, current_ops=cur_ops
                )
            )
    speedup = fused_speedup(current)
    if speedup is not None and speedup < FUSED_SPEEDUP_FLOOR:
        regressions.append(
            Regression(
                name="fused_speedup_floor",
                baseline_ops=FUSED_SPEEDUP_FLOOR,
                current_ops=speedup,
            )
        )
    batched = fleet_speedup(current)
    if batched is not None and batched < FLEET_SPEEDUP_FLOOR:
        regressions.append(
            Regression(
                name="fleet_speedup_floor",
                baseline_ops=FLEET_SPEEDUP_FLOOR,
                current_ops=batched,
            )
        )
    return regressions


def render_report(
    report: PerfReport, baseline: Optional[PerfReport] = None
) -> str:
    """A human-readable summary of a report (vs a baseline, if given)."""
    lines = [f"benchmarks ({report.mode} mode, scale {report.scale}):"]
    for name, result in sorted(report.results.items()):
        line = (
            f"  {name:22s} mean {result.mean_s * 1e3:9.3f} ms   "
            f"best {result.best_s * 1e3:9.3f} ms   {result.rounds} rounds"
        )
        if baseline is not None and name in baseline.results:
            base = baseline.results[name]
            if base.best_ops > 0:
                delta = result.best_ops / base.best_ops - 1.0
                line += f"   {delta:+.1%} vs baseline"
        lines.append(line)
    cold = report.results.get("artifact_cache_cold")
    warm = report.results.get("artifact_cache_warm")
    if cold is not None and warm is not None and warm.mean_s > 0:
        lines.append(
            f"  artifact cache cold→warm speedup: "
            f"{cold.mean_s / warm.mean_s:.2f}x"
        )
    speedup = fused_speedup(report)
    if speedup is not None:
        lines.append(
            f"  fused sweep speedup: {speedup:.2f}x over per-cell "
            f"(gate floor {FUSED_SPEEDUP_FLOOR:.1f}x)"
        )
    batched = fleet_speedup(report)
    if batched is not None:
        fleet = report.results["fleet_sim"]
        lines.append(
            f"  fleet speedup at {fleet.items} devices: {batched:.1f}x "
            f"over the per-device loop "
            f"(gate floor {FLEET_SPEEDUP_FLOOR:.1f}x)"
        )
    return "\n".join(lines)


def render_markdown_delta(
    current: PerfReport, baseline: Optional[PerfReport]
) -> str:
    """A GitHub-flavoured markdown table of committed-vs-current deltas.

    Written into ``$GITHUB_STEP_SUMMARY`` by ``repro bench`` so
    perf-smoke regressions are diagnosable from the Actions UI without
    a local reproduction.
    """
    lines = [
        f"### Benchmarks ({current.mode} mode, scale {current.scale})",
        "",
        "| benchmark | best (ms) | mean (ms) | committed best (ms) "
        "| Δ best throughput | gated |",
        "| --- | ---: | ---: | ---: | ---: | :---: |",
    ]
    for name, result in sorted(current.results.items()):
        base_cell = delta_cell = "—"
        if baseline is not None and name in baseline.results:
            base = baseline.results[name]
            base_cell = f"{base.best_s * 1e3:.3f}"
            if base.best_ops > 0:
                delta_cell = f"{result.best_ops / base.best_ops - 1.0:+.1%}"
        gated = "yes" if name in GATED_BENCHMARKS else "no"
        lines.append(
            f"| `{name}` | {result.best_s * 1e3:.3f} "
            f"| {result.mean_s * 1e3:.3f} | {base_cell} "
            f"| {delta_cell} | {gated} |"
        )
    speedup = fused_speedup(current)
    if speedup is not None:
        lines.append("")
        lines.append(
            f"Fused sweep speedup: **{speedup:.2f}x** over per-cell "
            f"(gate floor {FUSED_SPEEDUP_FLOOR:.1f}x)."
        )
    batched = fleet_speedup(current)
    if batched is not None:
        fleet = current.results["fleet_sim"]
        lines.append("")
        lines.append(
            f"Fleet speedup at {fleet.items} devices: **{batched:.1f}x** "
            f"over the per-device loop "
            f"(gate floor {FLEET_SPEEDUP_FLOOR:.1f}x)."
        )
    return "\n".join(lines) + "\n"
