"""Mozilla workload model.

Paper (§6): "Mozilla is a web browser and the user spends time reading
the page content and following the links.  The I/O behavior depends on
the content of the page and the interests of the user" — and "some pages
require loading additional libraries (additional I/Os) to decode the
multimedia context and some do not", the paper's own example of subpath
aliasing.

Model: every page visit performs the same page-load burst (stable PCs);
visits differ in what follows — an immediate next click (sub-window
typing gap), a reading pause (browse/away think), or a multimedia page
whose codec libraries load only *after* a short pause (the aliasing
continuation).  Two cookie/cache helper processes piggyback on most
visits, giving the paper's ~2.7× local-to-global idle-period ratio.

Table 1 targets: 49 executions, ~90 843 I/Os (~1 850 per execution),
~7.4 global long idle periods per execution.
"""

from __future__ import annotations

from repro.traces.events import AccessType
from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    read_loop,
)
from repro.workloads.base import ApplicationSpec


def _page_load(final_fd: int = 5, content: str = "html") -> tuple[IOStep, ...]:
    """The canonical page-visit burst (~32 I/Os, ~4 disk accesses).

    ``final_fd`` is the fd of the content read that ends the burst — the
    feature PCAPf keys on; media-site visits use fd 7.  ``content``
    selects the content-type render path ("html", "script", "image"):
    different page kinds execute different code, so the disk-level PC
    paths of a browsing run depend on the mix of pages visited — the
    content-dependence the paper attributes to mozilla.
    """
    return (
        IOStep(function="page_open", file="pagecache", fd=final_fd, blocks=1, fresh=True),
        read_loop("gtk_theme_read", "libgtk", 3, count=11, fresh=False),
        read_loop("cache_index_lookup", "cacheidx", 4, count=13, fresh=False),
        read_loop("font_glyph_read", "fonts", 6, count=8, fresh=False),
        IOStep(function=f"content_read_{content}", file="pagecache", fd=final_fd, blocks=4, fresh=True, repeat=3),
        read_loop("history_check", "history", 8, count=2, fresh=False),
    )


def _media_load() -> tuple[IOStep, ...]:
    """Codec/plugin libraries loaded for multimedia pages (~26 I/Os)."""
    return (
        read_loop("codec_lib_load", "libcodec", 7, count=12, fresh=False),
        IOStep(function="media_stream_read", file="mediacache", fd=7, blocks=8, fresh=True, repeat=4),
        read_loop("plugin_scan", "plugins", 3, count=10, fresh=False),
    )


def _startup() -> Routine:
    """Browser launch: shared libraries, profile, bookmarks (~240 I/Os)."""
    return Routine(
        name="startup",
        phases=(
            Phase(
                steps=(
                    read_loop("ld_load_libxul", "libxul", 3, count=90, fresh=False),
                    read_loop("ld_load_libgtk", "libgtk", 3, count=40, fresh=False),
                    IOStep(function="profile_read", file="profile", fd=4, blocks=2, fresh=True, repeat=6),
                    read_loop("bookmarks_load", "bookmarks", 5, count=30, fresh=False),
                    read_loop("cache_index_build", "cacheidx", 4, count=70, fresh=False),
                ),
                think=Think.TYPING,
            ),
        ),
    )


def _routines() -> RoutineMix:
    mix = RoutineMix(cluster=0.58)
    # Quick surfing: next link within the wait-window.
    mix.add(Routine("click_link_html", (Phase(_page_load(content="html"), Think.TYPING),)), 24)
    mix.add(Routine("click_link_script", (Phase(_page_load(content="script"), Think.TYPING),)), 16)
    mix.add(Routine("click_link_image", (Phase(_page_load(content="image"), Think.TYPING),)), 12)
    # Reload / back-button: half a page burst, immediate continuation.
    mix.add(
        Routine(
            "reload_page",
            (Phase((IOStep(function="content_read", file="pagecache", fd=5, blocks=4, fresh=True, repeat=3),), Think.TYPING),),
        ),
        14,
    )
    # Reading pauses: the browse-length opportunities TP sleeps through.
    mix.add(Routine("read_page", (Phase(_page_load(), Think.BROWSE),)), 4.2)
    # Walking away after a page: the long opportunities.
    mix.add(Routine("study_page", (Phase(_page_load(), Think.AWAY),)), 2.2)
    # Multimedia pages: the page burst aliases the trained paths, then
    # after a short pause the codec libraries load — subpath aliasing.
    mix.add(
        Routine(
            "open_media_news",
            (Phase(_page_load(final_fd=5), Think.PAUSE), Phase(_media_load(), Think.AWAY)),
        ),
        1,
    )
    mix.add(
        Routine(
            "open_media_site",
            (Phase(_page_load(final_fd=7), Think.PAUSE), Phase(_media_load(), Think.AWAY)),
        ),
        1,
    )
    # Skimming: find-in-page traffic followed by a short pause — the
    # visible short idle periods (history bit 0) and a subpath-aliasing
    # source when a trained path count coincides.
    mix.add(
        Routine(
            "skim_page",
            (Phase((
                IOStep(function="find_in_page_read", file="pagecache", fd=5, blocks=2, fresh=True, repeat=2),
                read_loop("font_glyph_read", "fonts", 6, count=4, fresh=False),
            ), Think.PAUSE),),
        ),
        5,
    )
    # Occasional very long hesitation in the TP-miss band.
    mix.add(Routine("hesitate", (Phase(_page_load(), Think.HESITATE),)), 0.4)
    # Bookmarking: small write burst, immediate continuation.
    mix.add(
        Routine(
            "bookmark_page",
            (Phase((IOStep(function="bookmark_write", file="bookmarks", fd=5, blocks=1, kind=AccessType.WRITE, repeat=2),), Think.TYPING),),
        ),
        3,
    )
    return mix


def _helpers() -> tuple[HelperProcess, ...]:
    return (
        HelperProcess(
            name="cookie_daemon",
            steps=(
                IOStep(function="cookie_db_read", file="cookies", fd=10, blocks=2, fresh=True),
            ),
            participation=0.86,
            delay=0.30,
        ),
        HelperProcess(
            name="cache_writer",
            steps=(
                IOStep(function="cache_store", file="diskcache", fd=11, blocks=3, fresh=True),
            ),
            participation=0.84,
            delay=0.55,
        ),
    )


def spec() -> ApplicationSpec:
    """The mozilla application model (Table 1 row 1)."""
    return ApplicationSpec(
        name="mozilla",
        executions=49,
        startup=_startup(),
        closing=None,
        mix=_routines(),
        think_model=ThinkTimeModel(away_median=110.0, away_sigma=0.8),
        helpers=_helpers(),
        actions_mean=48.0,
        actions_sd=8.0,
        novel_probability=0.03,
    )
