"""OpenOffice Impress workload model.

Paper (§6): "Impress is also an Open Office application and is used to
prepare presentation slides" — the heaviest I/O consumer of the suite
(graphic filters, clipart galleries, slide renders), with long
slide-design pauses between bursts.

Model: Office-scale startup, slide editing bursts with gallery and
filter traffic, slide renders, and an ``insert_image`` routine whose
gallery-browse burst aliases the trained slide-design path before the
graphic filter loads (subpath aliasing).  Two helper processes (render
and thumbnail daemons) give the ~2.7× local-to-global ratio.

Table 1 targets: 19 executions, ~220 455 I/Os (~11 600 per execution),
~4.6 global long idle periods per execution.
"""

from __future__ import annotations

from repro.traces.events import AccessType
from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    read_loop,
)
from repro.workloads.base import ApplicationSpec


def _edit_burst(kind: str = "text") -> tuple[IOStep, ...]:
    """Editing one slide: shapes, fonts, undo traffic (~210 I/Os).

    ``kind`` selects the slide-element code path ("text", "shape",
    "chart"): editing different elements pages in different fresh data.
    """
    kinds = {
        "text": "slide_text_cache_read",
        "shape": "slide_shape_cache_read",
        "chart": "slide_chart_cache_read",
    }
    return (
        read_loop("shape_lib_read", "libshapes", 3, count=70, fresh=False),
        read_loop("font_metrics", "fonts", 4, count=55, fresh=False),
        read_loop("style_sheet_read", "styles", 5, count=54, fresh=False),
        IOStep(function=kinds[kind], file="slidecache", fd=7, blocks=4, fresh=True, repeat=4),
        read_loop("gallery_index_read", "galleryidx", 8, count=27, fresh=False),
    )


def _render_burst() -> tuple[IOStep, ...]:
    """Rendering the slide preview (~160 I/Os)."""
    return (
        read_loop("render_lib_read", "librender", 3, count=60, fresh=False),
        read_loop("texture_read", "textures", 10, count=85, fresh=False),
        IOStep(function="preview_meta_read", file="previews", fd=9, blocks=1, fresh=True, repeat=15),
    )


def _gallery_browse() -> tuple[IOStep, ...]:
    """Browsing the clipart gallery (~120 I/Os)."""
    return (
        read_loop("gallery_index_read", "galleryidx", 8, count=40, fresh=False),
        IOStep(function="thumbnail_read", file="gallery", fd=11, blocks=2, fresh=True, repeat=30),
        read_loop("font_metrics", "fonts", 4, count=50, fresh=False),
    )


def _filter_load() -> tuple[IOStep, ...]:
    """Graphic import filter libraries (~130 I/Os)."""
    return (
        read_loop("filter_lib_load", "libgraphfilter", 3, count=75, fresh=False),
        IOStep(function="image_import_read", file="images", fd=12, blocks=16, fresh=True, repeat=4),
        read_loop("color_profile_read", "iccprofiles", 13, count=51, fresh=False),
    )


def _startup() -> Routine:
    """Office suite + Impress component launch (~3 100 I/Os)."""
    return Routine(
        name="startup",
        phases=(
            Phase(
                steps=(
                    read_loop("ld_load_soffice", "libsoffice", 3, count=820, fresh=False),
                    read_loop("ld_load_impress", "libimpress", 3, count=540, fresh=False),
                    read_loop("registry_read", "registry", 4, count=380, fresh=False),
                    IOStep(function="presentation_open", file="presentation", fd=14, blocks=8, fresh=True, repeat=20),
                    read_loop("template_gallery_scan", "templates", 5, count=700, fresh=False),
                    read_loop("font_cache_build", "fonts", 6, count=500, fresh=False),
                ),
                think=Think.TYPING,
            ),
        ),
    )


def _routines() -> RoutineMix:
    mix = RoutineMix(cluster=0.72)
    mix.add(Routine("edit_text", (Phase(_edit_burst("text"), Think.TYPING),)), 18)
    mix.add(Routine("edit_shape", (Phase(_edit_burst("shape"), Think.TYPING),)), 13)
    mix.add(Routine("edit_chart", (Phase(_edit_burst("chart"), Think.TYPING),)), 9)
    mix.add(
        Routine(
            "zoom_and_pause",
            (Phase(_edit_burst("text") + (IOStep(function="zoom_reposition", file="previews", fd=9, blocks=2, fresh=True),), Think.PAUSE),),
        ),
        3,
    )
    mix.add(Routine("render_preview", (Phase(_render_burst(), Think.BROWSE),)), 3.0)
    # Designing: the long creative pauses after an edit burst.
    mix.add(Routine("design_think", (Phase(_edit_burst("text"), Think.AWAY),)), 0.9)
    # Aliasing: gallery browse pauses briefly, then the filter loads.
    mix.add(
        Routine(
            "insert_image",
            (
                Phase(_gallery_browse(), Think.PAUSE),
                Phase(_filter_load(), Think.AWAY),
            ),
        ),
        0.7,
    )
    # Plain gallery browse ending in a long look at the result.
    mix.add(Routine("browse_gallery", (Phase(_gallery_browse(), Think.AWAY),)), 0.4)
    mix.add(Routine("hesitate", (Phase(_edit_burst("text"), Think.HESITATE),)), 0.25)
    mix.add(
        Routine(
            "save_presentation",
            (
                Phase(
                    (
                        IOStep(function="pres_write", file="presentation", fd=14, blocks=8, kind=AccessType.SYNC_WRITE, repeat=6),
                        read_loop("filter_lib_load", "libgraphfilter", 3, count=30, fresh=False),
                    ),
                    Think.TYPING,
                ),
            ),
        ),
        2,
    )
    return mix


def _helpers() -> tuple[HelperProcess, ...]:
    """Two identical render-worker instances.

    Office spawns interchangeable worker processes running the same
    code, so both workers execute the same functions on the same queue —
    the case where the paper's application-level prediction table pays
    off: one worker's training covers its twin (§5, "some of them may
    be from a single application").
    """
    worker_steps = (
        IOStep(function="render_queue_read", file="renderqueue", fd=15, blocks=2, fresh=True),
    )
    return (
        HelperProcess(
            name="render_worker_1",
            steps=worker_steps,
            participation=0.85,
            delay=0.45,
        ),
        HelperProcess(
            name="render_worker_2",
            steps=worker_steps,
            participation=0.82,
            delay=0.7,
        ),
    )


def spec() -> ApplicationSpec:
    """The impress application model (Table 1 row 3)."""
    return ApplicationSpec(
        name="impress",
        executions=19,
        startup=_startup(),
        closing=Routine(
            "final_save",
            (
                Phase(
                    (IOStep(function="pres_write", file="presentation", fd=14, blocks=8, kind=AccessType.SYNC_WRITE, repeat=6),),
                    Think.TYPING,
                ),
            ),
        ),
        mix=_routines(),
        think_model=ThinkTimeModel(away_median=120.0, away_sigma=0.8),
        helpers=_helpers(),
        actions_mean=42.0,
        actions_sd=7.0,
        novel_probability=0.02,
    )
