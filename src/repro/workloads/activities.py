"""Primitives of the workload behaviour models.

An application's I/O behaviour is modelled as a repertoire of
**routines** — user actions such as "load a web page" or "save the
document".  A routine is a sequence of **phases**; each phase is a burst
of :class:`IOStep` operations followed by a **think time** drawn from one
of a handful of think-time classes.  Routines reference code locations by
*function name* (mapped to stable PCs) and files by *logical name*
(mapped to stable inodes/blocks), which is what makes PC paths repeat
across executions — the structure PCAP exploits.

Think-time classes and their role in the reproduction:

* ``TYPING``    — sub-wait-window pauses (< 1 s): invisible to predictors;
* ``PAUSE``     — short idle periods (1.5–5 s): shutdown here is a miss;
* ``BROWSE``    — 7–10 s reading pauses: opportunities a 10 s timeout
  predictor sleeps through but dynamic predictors harvest;
* ``HESITATE``  — 10.5–15 s: the narrow band where a 10 s timeout fires
  but the remaining off-window is below breakeven (a TP miss);
* ``AWAY``      — heavy-tailed long absences (> 15.5 s): everyone's
  bread-and-butter opportunity.

User think times are strongly bimodal (quick interactions vs walking
away), which is why the paper's 10-second TP has very few mispredictions:
the HESITATE band is nearly empty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.events import AccessType
from repro.workloads.rng import lognormal, uniform


class Think(enum.Enum):
    """Think-time class following a phase."""

    NONE = "none"  # phases glued together (same burst)
    TYPING = "typing"
    PAUSE = "pause"
    BROWSE = "browse"
    HESITATE = "hesitate"
    AWAY = "away"


@dataclass(frozen=True, slots=True)
class ThinkTimeModel:
    """Per-application think-time distribution parameters (seconds)."""

    typing: tuple[float, float] = (0.12, 0.9)
    pause: tuple[float, float] = (1.6, 4.8)
    browse: tuple[float, float] = (7.0, 10.0)
    hesitate: tuple[float, float] = (10.5, 15.0)
    away_median: float = 40.0
    away_sigma: float = 0.85
    away_min: float = 15.6
    away_max: float = 900.0

    def sample(self, think: Think, rng: np.random.Generator) -> float:
        if think == Think.NONE:
            return 0.0
        if think == Think.TYPING:
            return uniform(rng, *self.typing)
        if think == Think.PAUSE:
            return uniform(rng, *self.pause)
        if think == Think.BROWSE:
            return uniform(rng, *self.browse)
        if think == Think.HESITATE:
            return uniform(rng, *self.hesitate)
        return lognormal(
            rng,
            self.away_median,
            self.away_sigma,
            low=self.away_min,
            high=self.away_max,
        )


@dataclass(frozen=True, slots=True)
class IOStep:
    """One I/O operation inside a burst.

    ``function`` names the code location (stable PC); ``file`` names the
    logical file (stable inode).  ``fresh`` steps read never-before-seen
    blocks (cache-cold content: page downloads, media streams);
    non-fresh steps re-read the file's first blocks (cache-hot libraries
    and configuration).
    """

    function: str
    file: str
    fd: int
    blocks: int = 1
    kind: AccessType = AccessType.READ
    pre_gap: float = 0.008
    fresh: bool = False
    #: Repeat the step this many times (loop reading a file).
    repeat: int = 1
    #: Run on the named helper process instead of the main process
    #: (thread-level I/O inside a routine, e.g. mplayer's audio thread).
    process: str | None = None

    def __post_init__(self) -> None:
        if self.blocks < 0 or self.repeat < 1:
            raise ConfigurationError("blocks >= 0 and repeat >= 1 required")
        if self.pre_gap < 0:
            raise ConfigurationError("pre_gap must be non-negative")


@dataclass(frozen=True, slots=True)
class Phase:
    """A burst of I/O steps followed by a think time."""

    steps: tuple[IOStep, ...]
    think: Think


@dataclass(frozen=True, slots=True)
class Routine:
    """A repeatable user action: one or more phases.

    Multi-phase routines with non-final ``PAUSE`` thinks are the source
    of subpath aliasing (§4.1): the PC path up to an intermediate pause
    can equal a trained full path, triggering a mispredicted shutdown.
    """

    name: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"routine {self.name!r} has no phases")

    @property
    def io_count(self) -> int:
        return sum(
            step.repeat for phase in self.phases for step in phase.steps
        )


def burst(*steps: IOStep, think: Think = Think.AWAY) -> Phase:
    """Convenience constructor for a single phase."""
    return Phase(steps=tuple(steps), think=think)


def routine(name: str, *phases: Phase) -> Routine:
    return Routine(name=name, phases=tuple(phases))


def read_loop(
    function: str,
    file: str,
    fd: int,
    *,
    count: int,
    blocks: int = 1,
    fresh: bool = True,
    pre_gap: float = 0.006,
) -> IOStep:
    """A tight loop of ``count`` reads (one step with ``repeat``)."""
    return IOStep(
        function=function,
        file=file,
        fd=fd,
        blocks=blocks,
        fresh=fresh,
        pre_gap=pre_gap,
        repeat=count,
    )


@dataclass(frozen=True, slots=True)
class HelperProcess:
    """A helper process that piggybacks on the main process's routines.

    With probability ``participation`` it performs its ``steps`` shortly
    (``delay`` seconds) after a routine that ends in a reading/away
    pause — helper daemons do their disk work when the user pauses —
    and with probability ``background_participation`` after any other
    routine.  This shadows the main process's idle-period structure,
    giving the paper's multi-process applications (mozilla, writer,
    impress) their >1 local-to-global idle-period ratios without
    flooding the disk with short helper gaps.
    """

    name: str
    steps: tuple[IOStep, ...]
    participation: float = 0.9
    background_participation: float = 0.02
    delay: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.participation <= 1.0:
            raise ConfigurationError("participation must be in [0, 1]")
        if not 0.0 <= self.background_participation <= 1.0:
            raise ConfigurationError(
                "background participation must be in [0, 1]"
            )
        if self.delay < 0:
            raise ConfigurationError("delay must be non-negative")


@dataclass(frozen=True, slots=True)
class WeightedRoutine:
    routine: Routine
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("routine weight must be positive")


@dataclass(slots=True)
class RoutineMix:
    """Weighted repertoire plus phase-clustering behaviour.

    ``cluster`` is the probability of repeating the previous routine
    choice (a first-order Markov "phase" structure): users do the same
    kind of action in runs.  Clustering is what gives the idle-history
    register (PCAPh) and the learning tree their predictive signal.
    """

    entries: list[WeightedRoutine] = field(default_factory=list)
    cluster: float = 0.0

    def add(self, routine_: Routine, weight: float) -> "RoutineMix":
        self.entries.append(WeightedRoutine(routine_, weight))
        return self

    def choose(
        self, rng: np.random.Generator, previous: Routine | None
    ) -> Routine:
        if not self.entries:
            raise ConfigurationError("empty routine mix")
        if previous is not None and self.cluster > 0:
            if rng.random() < self.cluster:
                return previous
        weights = np.array([e.weight for e in self.entries], dtype=float)
        weights /= weights.sum()
        index = int(rng.choice(len(self.entries), p=weights))
        return self.entries[index].routine
