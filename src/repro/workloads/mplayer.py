"""MPlayer workload model.

Paper (§6): "Mplayer is a media player and the user usually watches a
media clip and then exits the player" — and "mplayer ... requires
continuous stream of video and therefore has limited idle time.  Mplayer
loads the movie into its own memory buffer and maintains the buffer full
until the movie ends.  At this time the I/O activity stops and the movie
finishes playing from the buffer" — the idle energy is the buffer drain
at the end.

Model: playback is a sequence of fixed-size *chapters* of 80 buffer
refills; every refill performs the same burst (a fresh 64 KB stream read
plus hot demux traffic, with the audio thread's reads interleaved), with
sub-wait-window gaps between refills so the disk never idles long during
playback.  The user occasionally pauses at a chapter boundary (the rare
mid-playback long idle); the movie always ends with the buffer-drain
idle period before exit.  Fixed chapter sizes keep the disk-level PC
paths countable, which is why PCAP needs only a couple of idle periods
to learn mplayer (Table 3: 24 entries).

Table 1 targets: 31 executions, ~512 433 I/Os (~16 500 per execution),
~1.6 global long idle periods per execution.
"""

from __future__ import annotations

from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    read_loop,
)
from repro.workloads.base import ApplicationSpec

#: Buffer refills per chapter (fixed so PC-path sums are countable).
REFILLS_PER_CHAPTER = 80


def _refill_steps() -> tuple[IOStep, ...]:
    """One buffer refill (~40 I/Os, ~2 disk accesses)."""
    return (
        IOStep(function="stream_read", file="movie", fd=3, blocks=16, fresh=True),
        read_loop("demux_packet_parse", "demuxbuf", 4, count=24, fresh=False),
        IOStep(function="audio_stream_read", file="movie", fd=3, blocks=4, fresh=True, process="audio_thread"),
        read_loop("audio_decode_read", "audiobuf", 5, count=8, fresh=False, pre_gap=0.004),
        read_loop("avsync_index_read", "avindex", 6, count=6, fresh=False),
    )


def _chapter(name: str, final_think: Think) -> Routine:
    """A chapter: 80 refills glued by sub-window gaps, then the final
    think (typing = playback continues; away = user paused)."""
    refill = Phase(_refill_steps(), Think.TYPING)
    phases = tuple([refill] * (REFILLS_PER_CHAPTER - 1)) + (
        Phase(_refill_steps(), final_think),
    )
    return Routine(name=name, phases=phases)


def _startup() -> Routine:
    """Player launch: codecs, fonts, movie headers (~520 I/Os)."""
    return Routine(
        name="startup",
        phases=(
            Phase(
                steps=(
                    read_loop("ld_load_mplayer", "mplayerbin", 3, count=150, fresh=False),
                    read_loop("codec_conf_read", "codecsconf", 4, count=120, fresh=False),
                    IOStep(function="movie_header_read", file="movie", fd=3, blocks=8, fresh=True, repeat=6),
                    read_loop("font_read", "fonts", 5, count=140, fresh=False),
                    IOStep(function="buffer_prefill_read", file="movie", fd=3, blocks=16, fresh=True, repeat=12),
                ),
                think=Think.TYPING,
            ),
        ),
    )


def _closing() -> Routine:
    """End of movie: final refill tail, then the buffer-drain idle
    period (the paper's 8 MB buffer emptying), then exit."""
    return Routine(
        name="end_of_movie",
        phases=(
            Phase(
                steps=(
                    IOStep(function="stream_final_read", file="movie", fd=3, blocks=16, fresh=True, repeat=3),
                    read_loop("index_finalize", "avindex", 6, count=10, fresh=False),
                ),
                think=Think.AWAY,
            ),
        ),
    )


def _routines() -> RoutineMix:
    mix = RoutineMix(cluster=0.0)
    mix.add(_chapter("play_chapter", Think.TYPING), 80)
    mix.add(_chapter("chapter_then_pause", Think.AWAY), 20)
    return mix


def spec() -> ApplicationSpec:
    """The mplayer application model (Table 1 row 6)."""
    return ApplicationSpec(
        name="mplayer",
        executions=31,
        startup=_startup(),
        closing=_closing(),
        mix=_routines(),
        think_model=ThinkTimeModel(
            typing=(0.18, 0.45),  # refill cadence: sub-wait-window
            away_median=120.0,
            away_sigma=0.5,
        ),
        helpers=(
            HelperProcess(name="audio_thread", steps=(), participation=0.0),
        ),
        actions_mean=5.0,
        actions_sd=1.0,
        novel_probability=0.0,
    )
