"""Streaming generation of workload suites straight into a trace store.

:func:`repro.workloads.suite.build_suite` materializes every execution of
every application before returning — exactly what the trace store exists
to avoid.  Generation is deterministic *per execution*
(:func:`repro.workloads.base.build_execution` seeds its RNG from the
(application, index) pair alone), so this module generates executions one
at a time and hands each to a :class:`~repro.traces.store.StoreWriter`,
discarding it before the next is built.  Peak memory is one execution
plus one chunk buffer regardless of ``scale`` — the scale knob that makes
10x-suite packs feasible where an in-memory build is not.
"""

from __future__ import annotations

import os
from typing import Iterator, Sequence

from repro.traces.store import (
    DEFAULT_CHUNK_ROWS,
    StoreWriter,
    TraceStore,
)
from repro.traces.trace import ExecutionTrace
from repro.workloads.base import build_execution, execution_count
from repro.workloads.suite import APPLICATIONS, application_spec


def iter_application_executions(
    name: str, *, scale: float = 1.0
) -> Iterator[ExecutionTrace]:
    """Generate one application's executions lazily, oldest first."""
    spec = application_spec(name)
    for index in range(execution_count(spec, scale=scale)):
        yield build_execution(spec, index, scale=scale)


def iter_suite_executions(
    *,
    scale: float = 1.0,
    applications: Sequence[str] = APPLICATIONS,
) -> Iterator[ExecutionTrace]:
    """Generate the whole suite lazily, application by application."""
    for name in applications:
        yield from iter_application_executions(name, scale=scale)


def pack_generated(
    path: str | os.PathLike[str],
    *,
    scale: float = 1.0,
    applications: Sequence[str] = APPLICATIONS,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> TraceStore:
    """Generate a suite directly into a trace store at ``path``.

    Returns the opened store.  The packed events are identical to a
    :func:`~repro.workloads.suite.build_suite` build at the same scale
    (generation is deterministic), but only one execution is ever held
    in memory.
    """
    with StoreWriter(path, chunk_rows=chunk_rows) as writer:
        for execution in iter_suite_executions(
            scale=scale, applications=applications
        ):
            writer.write_execution(execution)
    return TraceStore(path)
