"""OpenOffice Writer workload model.

Paper (§6): "Writer is a word processor from the Open Office suite and
the user mostly composes the text and also does some quick fixes after
proofreading"; office applications "require additional libraries like
dictionaries or graphic filters that require more I/O time".

Model: heavy startup (the Office suite loads an enormous library set),
typing bursts touching dictionaries and fonts, proofreading pauses, and
document saves.  The paper's own aliasing example — *"the user opens a
file, performs 'save as' to a different file, opens another file, and
edits it"* vs the same sequence ending in another 'save as' — appears as
the ``save_then_continue`` routine whose save burst aliases the trained
``save_document`` path.  Three Office helper processes (autosave, layout
and font renderers) give the ~3.2× local-to-global ratio.

Table 1 targets: 33 executions, ~133 016 I/Os (~4 030 per execution),
~3.4 global long idle periods per execution.
"""

from __future__ import annotations

from repro.traces.events import AccessType
from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    read_loop,
)
from repro.workloads.base import ApplicationSpec


def _typing_burst(aid: str = "prose") -> tuple[IOStep, ...]:
    """Dictionary / font / language-aid traffic while composing (~69 I/Os).

    ``aid`` selects which language aid pages in fresh data ("prose" →
    thesaurus, "spell" → dictionary supplements, "layout" → hyphenation
    tables): what the user writes determines which code paths touch the
    disk, so the PC paths of a composing run depend on the text.
    """
    aids = {
        "prose": ("thesaurus_page_in", "thesaurus"),
        "spell": ("spelling_page_in", "spellext"),
        "layout": ("hyphen_page_in", "hyphenation"),
    }
    function, file = aids[aid]
    return (
        read_loop("dict_lookup", "dictionary", 3, count=30, fresh=False),
        read_loop("font_metrics", "fonts", 4, count=22, fresh=False),
        read_loop("autotext_scan", "autotext", 5, count=16, fresh=False),
        IOStep(function=function, file=file, fd=7, blocks=2, fresh=True),
    )


def _save_burst(fd: int = 8) -> tuple[IOStep, ...]:
    """Writing the document to disk (~46 I/Os)."""
    return (
        read_loop("filter_lib_load", "libfilter", 3, count=14, fresh=False),
        IOStep(function="doc_write", file="document", fd=fd, blocks=4, kind=AccessType.SYNC_WRITE, repeat=8),
        IOStep(function="doc_backup_write", file="docbackup", fd=fd, blocks=4, kind=AccessType.SYNC_WRITE, repeat=4),
        read_loop("template_reread", "template", 5, count=20, fresh=False),
    )


def _startup() -> Routine:
    """Office suite launch (~1 480 I/Os)."""
    return Routine(
        name="startup",
        phases=(
            Phase(
                steps=(
                    read_loop("ld_load_soffice", "libsoffice", 3, count=420, fresh=False),
                    read_loop("ld_load_vcl", "libvcl", 3, count=260, fresh=False),
                    read_loop("registry_read", "registry", 4, count=240, fresh=False),
                    IOStep(function="doc_open_read", file="document", fd=8, blocks=4, fresh=True, repeat=12),
                    read_loop("dict_preload", "dictionary", 5, count=310, fresh=False),
                    read_loop("font_cache_build", "fonts", 6, count=240, fresh=False),
                ),
                think=Think.TYPING,
            ),
        ),
    )


def _routines() -> RoutineMix:
    mix = RoutineMix(cluster=0.72)
    mix.add(Routine("type_prose", (Phase(_typing_burst("prose"), Think.TYPING),)), 22)
    mix.add(Routine("type_spell", (Phase(_typing_burst("spell"), Think.TYPING),)), 15)
    mix.add(Routine("type_layout", (Phase(_typing_burst("layout"), Think.TYPING),)), 11)
    mix.add(
        Routine(
            "scroll_and_pause",
            (Phase(_typing_burst("prose") + (IOStep(function="scroll_reposition", file="document", fd=8, blocks=2, fresh=True),), Think.PAUSE),),
        ),
        3,
    )
    # Proofreading: browse-length reading of what was written.
    mix.add(Routine("proofread", (Phase(_typing_burst("prose"), Think.BROWSE),)), 3.0)
    # Composing thought: walk-away-length pauses mid-document.
    mix.add(Routine("compose_think", (Phase(_typing_burst("prose"), Think.AWAY),)), 0.8)
    # Plain save followed by more work or a long pause.
    mix.add(Routine("save_document", (Phase(_save_burst(), Think.AWAY),)), 0.9)
    # The paper's aliasing case: the same save burst, but the user pauses
    # briefly and then continues with a different-file save-as.
    mix.add(
        Routine(
            "save_then_continue",
            (
                Phase(_save_burst(), Think.PAUSE),
                Phase(_save_burst(fd=9), Think.AWAY),
            ),
        ),
        0.7,
    )
    mix.add(Routine("hesitate_over_text", (Phase(_typing_burst("prose"), Think.HESITATE),)), 0.25)
    return mix


def _helpers() -> tuple[HelperProcess, ...]:
    return (
        HelperProcess(
            name="autosave",
            steps=(
                IOStep(function="autosave_state_read", file="autosave", fd=12, blocks=2, fresh=True),
            ),
            participation=0.50,
            delay=0.4,
        ),
        HelperProcess(
            name="layout_engine",
            steps=(
                IOStep(function="layout_cache_read", file="layoutcache", fd=13, blocks=2, fresh=True),
            ),
            participation=0.85,
            delay=0.25,
        ),
        HelperProcess(
            name="font_renderer",
            steps=(
                IOStep(function="glyph_cache_read", file="glyphcache", fd=14, blocks=2, fresh=True),
            ),
            participation=0.80,
            delay=0.6,
        ),
    )


def spec() -> ApplicationSpec:
    """The writer application model (Table 1 row 2)."""
    return ApplicationSpec(
        name="writer",
        executions=33,
        startup=_startup(),
        closing=Routine("final_save", (Phase(_save_burst(), Think.TYPING),)),
        mix=_routines(),
        think_model=ThinkTimeModel(away_median=100.0, away_sigma=0.8),
        helpers=_helpers(),
        actions_mean=34.0,
        actions_sd=6.0,
        novel_probability=0.02,
    )
