"""Deterministic randomness for workload generation.

Every generated trace must be exactly reproducible: seeds are derived by
hashing stable strings (application name, execution index, stream role),
never from global state.  The derivation uses SHA-256 so adding new
streams never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """A 64-bit seed derived deterministically from ``parts``."""
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(*parts: object) -> np.random.Generator:
    """A numpy Generator seeded from :func:`stable_seed`."""
    return np.random.default_rng(stable_seed(*parts))


def stable_pc(application: str, function: str) -> int:
    """A stable 32-bit "program counter" for a named code location.

    The same (application, function) pair maps to the same PC in every
    execution — the property PCAP's cross-execution table reuse relies on
    (§4.2: "the program counters that create a particular I/O operation
    remain the same in different executions").  PCs are 16-byte aligned
    like real call-site return addresses.
    """
    digest = hashlib.sha256(
        f"pc\x1f{application}\x1f{function}".encode("utf-8")
    ).digest()
    return (int.from_bytes(digest[:4], "little") & 0xFFFFFFF0) or 0x10


def lognormal(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    *,
    low: float | None = None,
    high: float | None = None,
) -> float:
    """A lognormal draw parameterized by its median, optionally clipped."""
    value = float(median * np.exp(sigma * rng.standard_normal()))
    if low is not None:
        value = max(low, value)
    if high is not None:
        value = min(high, value)
    return value


def uniform(rng: np.random.Generator, low: float, high: float) -> float:
    return float(rng.uniform(low, high))
