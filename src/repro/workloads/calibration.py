"""Calibration of the synthetic suite against the paper's Table 1.

The workload models are tuned so the generated traces match the paper's
trace-collection statistics.  :func:`calibration_report` measures the
live suite against those targets and flags rows outside tolerance —
used by the Table 1 benchmark and by anyone modifying the workload
models (``python tools/calibrate.py`` wraps it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.paper_data import PAPER_TABLE1
from repro.sim.experiment import ExperimentRunner
from repro.sim.idle_periods import stream_gaps

#: Acceptable measured/paper ratios at scale 1.0 (synthetic traces are
#: calibrated for shape, not exact counts).
DEFAULT_TOLERANCE = (0.5, 1.7)


@dataclass(frozen=True, slots=True)
class CalibrationRow:
    """Measured-vs-paper statistics of one application."""

    application: str
    executions: int
    paper_executions: int
    global_idle: int
    paper_global_idle: int
    local_idle: int
    paper_local_idle: int
    total_ios: int
    paper_total_ios: int

    @property
    def global_ratio(self) -> float:
        return self.global_idle / self.paper_global_idle

    @property
    def local_ratio(self) -> float:
        return self.local_idle / self.paper_local_idle

    @property
    def io_ratio(self) -> float:
        return self.total_ios / self.paper_total_ios

    def within(self, low: float, high: float) -> bool:
        return all(
            low <= ratio <= high
            for ratio in (self.global_ratio, self.local_ratio, self.io_ratio)
        )


def calibration_report(
    runner: ExperimentRunner,
) -> list[CalibrationRow]:
    """Measure each suite application against its Table 1 row.

    Only meaningful at (or near) scale 1.0 — the paper's counts scale
    with the number of executions and actions.
    """
    config = runner.config
    rows: list[CalibrationRow] = []
    for application, trace in runner.suite.items():
        paper = PAPER_TABLE1.get(application)
        if paper is None:
            continue
        paper_exec, paper_global, paper_local, paper_ios = paper
        global_count = 0
        local_count = 0
        for execution, filtered in zip(trace, runner.filtered(application)):
            gaps = stream_gaps(
                [a.time for a in filtered.accesses],
                config.service_time,
                start_time=execution.start_time,
                end_time=execution.end_time,
            )
            global_count += sum(
                1 for gap in gaps if gap.length > config.breakeven
            )
            per_process = filtered.per_process()
            for pid, (start, end) in execution.lifetimes().items():
                accesses = per_process.get(pid, [])
                if not accesses:
                    continue
                process_gaps = stream_gaps(
                    [a.time for a in accesses],
                    config.service_time,
                    start_time=start,
                    end_time=end,
                )
                local_count += sum(
                    1 for gap in process_gaps
                    if gap.length > config.breakeven
                )
        rows.append(
            CalibrationRow(
                application=application,
                executions=len(trace),
                paper_executions=paper_exec,
                global_idle=global_count,
                paper_global_idle=paper_global,
                local_idle=local_count,
                paper_local_idle=paper_local,
                total_ios=trace.total_io_count,
                paper_total_ios=paper_ios,
            )
        )
    return rows


def render_calibration(rows: list[CalibrationRow]) -> str:
    lines = [
        "Suite calibration vs paper Table 1 (ratios measured/paper)",
        f"  {'app':9s} {'exec':>9s} {'global':>7s} {'local':>7s} "
        f"{'I/Os':>7s}  status",
    ]
    low, high = DEFAULT_TOLERANCE
    for row in rows:
        status = "ok" if row.within(low, high) else "OUT OF TOLERANCE"
        lines.append(
            f"  {row.application:9s} {row.executions:4d}/{row.paper_executions:<4d} "
            f"{row.global_ratio:7.2f} {row.local_ratio:7.2f} "
            f"{row.io_ratio:7.2f}  {status}"
        )
    return "\n".join(lines)
