"""NEdit workload model.

Paper (§6): "nedit is primarily used to quickly open correct/modify
source code during compilation or bug fixes.  Nedit does not show
repetitive behavior since once a file is modified it is saved and nedit
is closed.  Nedit is the only application with single process."  Table 1
shows exactly one long idle period per execution (29 in 29 runs) — the
single editing pause between opening the file and saving it.

Model: small startup, one open-file burst followed by the long edit
think, a couple of quick fix bursts, then save-and-exit.  No helper
processes; local and global idle counts coincide.

Table 1 targets: 29 executions, ~6 663 I/Os (~230 per execution),
1 global long idle period per execution.
"""

from __future__ import annotations

from repro.traces.events import AccessType
from repro.workloads.activities import (
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    read_loop,
)
from repro.workloads.base import ApplicationSpec


def _quick_fix() -> Routine:
    """A short correction: tiny hot traffic, sub-window pauses."""
    return Routine(
        name="quick_fix",
        phases=(
            Phase(
                steps=(
                    read_loop("search_buffer", "sources", 4, count=6, fresh=False),
                    IOStep(function="undo_append", file="undolog", fd=5, blocks=1, kind=AccessType.WRITE),
                ),
                think=Think.TYPING,
            ),
        ),
    )


def _startup() -> Routine:
    """NEdit launch and file open, then the one long edit pause.

    Making the edit pause part of the fixed startup routine guarantees
    exactly one long idle period per execution — Table 1's 29 idle
    periods in 29 executions.
    """
    return Routine(
        name="startup",
        phases=(
            Phase(
                steps=(
                    read_loop("ld_load_nedit", "neditbin", 3, count=90, fresh=False),
                    read_loop("xresources_read", "xresources", 4, count=50, fresh=False),
                    IOStep(function="prefs_read", file="prefs", fd=5, blocks=1, fresh=True, repeat=3),
                    read_loop("font_read", "fonts", 6, count=37, fresh=False),
                ),
                think=Think.TYPING,
            ),
            Phase(
                steps=(
                    IOStep(function="file_open", file="sources", fd=4, blocks=1, fresh=True),
                    IOStep(function="file_read", file="sources", fd=4, blocks=4, fresh=True, repeat=4),
                    read_loop("syntax_patterns_read", "patterns", 3, count=12, fresh=False),
                ),
                think=Think.AWAY,
            ),
        ),
    )


def _closing() -> Routine:
    """Save the fixed file and exit."""
    return Routine(
        name="save_and_exit",
        phases=(
            Phase(
                steps=(
                    IOStep(function="buffer_write", file="sources", fd=4, blocks=4, kind=AccessType.SYNC_WRITE, repeat=3),
                    IOStep(function="backup_write", file="backups", fd=7, blocks=4, kind=AccessType.SYNC_WRITE),
                ),
                think=Think.TYPING,
            ),
        ),
    )


def _routines() -> RoutineMix:
    mix = RoutineMix(cluster=0.3)
    mix.add(_quick_fix(), 1)
    return mix


def spec() -> ApplicationSpec:
    """The nedit application model (Table 1 row 5)."""
    return ApplicationSpec(
        name="nedit",
        executions=29,
        startup=_startup(),
        closing=_closing(),
        mix=_routines(),
        # Bug-fix edits are minutes-long but rarely much more.
        think_model=ThinkTimeModel(away_median=45.0, away_sigma=1.0, away_min=6.5),
        helpers=(),
        actions_mean=4.0,
        actions_sd=1.0,
        novel_probability=0.0,
        novel_steps=3,
    )
