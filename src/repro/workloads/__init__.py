"""Synthetic workload substrate: behaviour models of the paper's six
traced applications (Table 1), plus the generator machinery."""

from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    burst,
    read_loop,
    routine,
)
from repro.workloads.aliasing import build_pc_alias
from repro.workloads.extremes import (
    build_chaos,
    build_clockwork,
    build_extremes,
    build_shapeshifter,
)
from repro.workloads.calibration import (
    CalibrationRow,
    calibration_report,
    render_calibration,
)
from repro.workloads.base import (
    ApplicationSpec,
    FileSpace,
    TraceBuilder,
    build_application_trace,
    build_execution,
    execution_count,
)
from repro.workloads.rng import lognormal, make_rng, stable_pc, stable_seed
from repro.workloads.streaming import (
    iter_application_executions,
    iter_suite_executions,
    pack_generated,
)
from repro.workloads.suite import (
    APPLICATIONS,
    application_spec,
    build_application,
    build_suite,
)

__all__ = [
    "APPLICATIONS",
    "ApplicationSpec",
    "CalibrationRow",
    "FileSpace",
    "HelperProcess",
    "IOStep",
    "Phase",
    "Routine",
    "RoutineMix",
    "Think",
    "ThinkTimeModel",
    "TraceBuilder",
    "application_spec",
    "build_application",
    "build_application_trace",
    "build_execution",
    "build_chaos",
    "build_clockwork",
    "build_extremes",
    "build_pc_alias",
    "build_shapeshifter",
    "build_suite",
    "burst",
    "calibration_report",
    "execution_count",
    "iter_application_executions",
    "iter_suite_executions",
    "lognormal",
    "make_rng",
    "pack_generated",
    "read_loop",
    "render_calibration",
    "routine",
    "stable_pc",
    "stable_seed",
]
