"""Synthetic extreme workloads — PCAP's best and worst cases.

The paper's premise is that "a history of events is likely to repeat in
the future due to repetitive behavior of the applications" (§2.1).
These models characterize the predictor's envelope outside the desktop
suite:

* ``clockwork``  — perfectly periodic behaviour: one fixed PC path, one
  fixed think time.  Everything a path predictor could wish for; PCAP's
  coverage approaches 100 % after one training period.
* ``chaos``      — adversarial behaviour: every burst uses fresh, never
  repeated PCs and i.i.d. think times.  Signatures never recur, so
  PCAP's primary predictor learns nothing and the backup timeout is all
  there is — PCAP degrades *to* TP, never below it (the §4.3 safety
  argument).
* ``shapeshifter`` — regime change: clockwork behaviour whose PC paths
  are replaced wholesale halfway through the trace history (the paper's
  recompilation / changed-user-behaviour scenario, §4.2: "the old
  entries can be replaced ... a simple LRU mechanism would be
  sufficient").

Used by the predictor-envelope benchmark and available to users probing
their own predictors.
"""

from __future__ import annotations

from repro.traces.events import AccessType, ExitEvent, IOEvent
from repro.traces.trace import ApplicationTrace, ExecutionTrace
from repro.workloads.rng import make_rng, stable_pc

#: One execution's structure: bursts of I/O separated by think times.
_BURST_LENGTH = 6
_BURSTS_PER_EXECUTION = 10
_THINK_SECONDS = 40.0
_MAIN_PID = 1000


def _execution(
    name: str,
    index: int,
    pcs_for_burst,
    think_for_burst,
) -> ExecutionTrace:
    events: list = []
    t = 0.5
    block = index * 10_000_000
    for burst in range(_BURSTS_PER_EXECUTION):
        for step, pc in enumerate(pcs_for_burst(index, burst)):
            t += 0.05
            block += 2
            events.append(
                IOEvent(
                    time=t, pid=_MAIN_PID, pc=pc, fd=3,
                    kind=AccessType.READ,
                    inode=7, block_start=block, block_count=2,
                )
            )
        t += think_for_burst(index, burst)
    events.append(ExitEvent(time=t + 0.01, pid=_MAIN_PID))
    execution = ExecutionTrace(
        name, index, events, initial_pids=frozenset({_MAIN_PID})
    )
    execution.validate()
    return execution


def build_clockwork(executions: int = 12) -> ApplicationTrace:
    """Perfectly periodic: fixed PC path, fixed think time."""
    path = [stable_pc("clockwork", f"step{i}") for i in range(_BURST_LENGTH)]

    def pcs(index: int, burst: int):
        return path

    def think(index: int, burst: int) -> float:
        return _THINK_SECONDS

    return ApplicationTrace(
        "clockwork",
        [
            _execution("clockwork", index, pcs, think)
            for index in range(executions)
        ],
    )


def build_chaos(executions: int = 12) -> ApplicationTrace:
    """Adversarial: never-repeating PCs, i.i.d. lognormal think times."""

    def pcs(index: int, burst: int):
        return [
            stable_pc("chaos", f"{index}/{burst}/{i}")
            for i in range(_BURST_LENGTH)
        ]

    def think(index: int, burst: int) -> float:
        rng = make_rng("chaos-think", index, burst)
        return float(
            _THINK_SECONDS * rng.lognormal(mean=0.0, sigma=0.6)
        )

    return ApplicationTrace(
        "chaos",
        [
            _execution("chaos", index, pcs, think)
            for index in range(executions)
        ],
    )


def build_shapeshifter(executions: int = 12) -> ApplicationTrace:
    """Clockwork whose code is 'recompiled' halfway through history."""
    first = [stable_pc("shape-v1", f"step{i}") for i in range(_BURST_LENGTH)]
    second = [stable_pc("shape-v2", f"step{i}") for i in range(_BURST_LENGTH)]
    switch = executions // 2

    def pcs(index: int, burst: int):
        return first if index < switch else second

    def think(index: int, burst: int) -> float:
        return _THINK_SECONDS

    return ApplicationTrace(
        "shapeshifter",
        [
            _execution("shapeshifter", index, pcs, think)
            for index in range(executions)
        ],
    )


def build_extremes(executions: int = 12) -> dict[str, ApplicationTrace]:
    """The envelope workloads as a suite (including the PC-aliasing
    adversary of :mod:`repro.workloads.aliasing`)."""
    # Late import: aliasing reuses this module's _execution builder.
    from repro.workloads.aliasing import build_pc_alias

    return {
        "clockwork": build_clockwork(executions),
        "chaos": build_chaos(executions),
        "shapeshifter": build_shapeshifter(executions),
        "pc_alias": build_pc_alias(executions),
    }
