"""Adversarial PC-aliasing stress workload.

PCAP's path signature is the *arithmetic sum* of the program counters
observed since the last long idle period (§4.1, Figure 4) — cheap, but
commutative: two different control paths that execute the same call
sites in a different order produce the **same** signature.  The paper's
premise ("a particular path ... leads to the same idle behaviour") is
exactly what this workload is built to break:

* **routine A** — six call sites executed in program order, followed by
  a *long* think time (a real shutdown opportunity);
* **routine B** — the *same six call sites in reverse order* (a
  different control path, different idle behaviour), followed by a
  *short* think time just above the wait-window.

The two bursts alias to one signature, so once PCAP trains "long" on
routine A it fires its primary predictor on every routine B gap — a
systematic premature shutdown the backup-timeout safety argument (§4.3)
cannot catch, because the primary (not the backup) is doing the
damage.  Robust consumers of the same table — the learning-augmented
ski-rental predictor hedging with λ — keep their premature fires
bounded on this trace, which is the head-to-head comparison the
predictor-envelope benchmark draws.

The alternation is also *state-predictable* (long and short gaps strictly
alternate), so idle-history predictors such as Q-DPM can learn the
pattern the signature cannot express.
"""

from __future__ import annotations

from repro.traces.trace import ApplicationTrace
from repro.workloads.extremes import _execution
from repro.workloads.rng import stable_pc

#: Call sites per burst (matches the other envelope workloads).
_BURST_LENGTH = 6
#: Think time after routine A: a clear shutdown opportunity.
_LONG_THINK = 40.0
#: Think time after routine B: above the wait-window (visible), far
#: below breakeven — any shutdown inside it is a premature fire.
_SHORT_THINK = 2.5


def build_pc_alias(executions: int = 12) -> ApplicationTrace:
    """Alternating aliased routines: same PC multiset, opposite gaps."""
    routine = [
        stable_pc("pc-alias", f"step{i}") for i in range(_BURST_LENGTH)
    ]
    reversed_routine = routine[::-1]

    def pcs(index: int, burst: int):
        return routine if burst % 2 == 0 else reversed_routine

    def think(index: int, burst: int) -> float:
        return _LONG_THINK if burst % 2 == 0 else _SHORT_THINK

    return ApplicationTrace(
        "pc_alias",
        [
            _execution("pc_alias", index, pcs, think)
            for index in range(executions)
        ],
    )
