"""The six-application suite of the paper's Table 1.

:func:`build_suite` generates the full trace history of every
application — deterministic, so every run of the benchmarks sees the
same traces.  ``scale`` shrinks both the number of executions and the
actions per execution (tests use small scales; benches use 1.0).
"""

from __future__ import annotations

from functools import lru_cache

from repro.traces.trace import ApplicationTrace
from repro.workloads import impress, mozilla, mplayer, nedit, writer, xemacs
from repro.workloads.base import ApplicationSpec, build_application_trace

#: Table 1 order.
APPLICATIONS = ("mozilla", "writer", "impress", "xemacs", "nedit", "mplayer")

_SPEC_BUILDERS = {
    "mozilla": mozilla.spec,
    "writer": writer.spec,
    "impress": impress.spec,
    "xemacs": xemacs.spec,
    "nedit": nedit.spec,
    "mplayer": mplayer.spec,
}


def application_spec(name: str) -> ApplicationSpec:
    """The behavioural spec of one suite application."""
    try:
        return _SPEC_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; suite has {APPLICATIONS}"
        ) from None


def build_application(
    name: str, *, scale: float = 1.0, cache=None
) -> ApplicationTrace:
    """Generate one application's full trace history.

    With an :class:`~repro.sim.artifact_cache.ArtifactCache` the
    generated trace is persisted keyed by (application, scale, schema
    version): the second process to ask skips generation entirely.
    Generation is deterministic, so the cached trace is identical to a
    fresh build.
    """
    if cache is not None:
        from repro.sim.artifact_cache import trace_key

        key = trace_key(name, scale)
        trace = cache.get_trace(key)
        if trace is None:
            trace = build_application_trace(
                application_spec(name), scale=scale
            )
            cache.put_trace(key, trace)
        return trace
    return build_application_trace(application_spec(name), scale=scale)


@lru_cache(maxsize=4)
def _cached_suite(scale: float) -> dict[str, ApplicationTrace]:
    return {
        name: build_application(name, scale=scale) for name in APPLICATIONS
    }


def build_suite(
    *,
    scale: float = 1.0,
    applications: tuple[str, ...] = APPLICATIONS,
    cache=None,
) -> dict[str, ApplicationTrace]:
    """Generate (and memoize) the suite's traces at the given scale.

    ``cache`` persists each application's trace on disk instead of the
    in-process memo (see :func:`build_application`), sharing the build
    across processes and runs.
    """
    if cache is not None:
        return {
            name: build_application(name, scale=scale, cache=cache)
            for name in applications
        }
    full = _cached_suite(scale)
    return {name: full[name] for name in applications}
