"""XEmacs workload model.

Paper (§6): "Xemacs and nedit are editors used by the user who spends
most of the time thinking and typing.  Xemacs is primarily used to
create larger files and edit multiple files" — and its local and global
idle-period counts are nearly equal (103 vs 94), i.e. it is essentially
a single-process application with only occasional helper activity.

Model: elisp-heavy startup, typing bursts that barely touch the disk
(cache-hot elisp and TAGS lookups), file opens that end in reading
pauses, saves, and the save-pause-open-another aliasing sequence.  A
spell-checker subprocess participates rarely (~8 % of actions), giving
the small local-over-global excess.

Table 1 targets: 37 executions, ~79 720 I/Os (~2 150 per execution),
~2.5 global long idle periods per execution.
"""

from __future__ import annotations

from repro.traces.events import AccessType
from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    read_loop,
)
from repro.workloads.base import ApplicationSpec


def _edit_burst(mode: str = "c") -> tuple[IOStep, ...]:
    """Typing: abbrev tables, TAGS lookups, mode data (~36 I/Os).

    ``mode`` selects the editing-mode code path ("c", "lisp", "text"):
    different buffers page in different mode data, so the PC paths of an
    editing run depend on the files being edited.
    """
    modes = {
        "c": "c_mode_page_in",
        "lisp": "lisp_mode_page_in",
        "text": "text_mode_page_in",
    }
    return (
        read_loop("abbrev_lookup", "abbrevs", 3, count=16, fresh=False),
        read_loop("tags_lookup", "tags", 4, count=13, fresh=False),
        read_loop("syntax_table_read", "syntax", 6, count=6, fresh=False),
        IOStep(function=modes[mode], file="modedata", fd=11, blocks=2, fresh=True),
    )


def _open_file(fd: int = 7) -> tuple[IOStep, ...]:
    """Opening a source file plus its mode's elisp (~52 I/Os)."""
    return (
        IOStep(function="file_open", file="sources", fd=fd, blocks=1, fresh=True),
        IOStep(function="file_read", file="sources", fd=fd, blocks=4, fresh=True, repeat=6),
        read_loop("mode_elisp_load", "elisp", 3, count=30, fresh=False),
        read_loop("tags_rebuild", "tags", 4, count=15, fresh=False),
    )


def _save_burst(fd: int = 7) -> tuple[IOStep, ...]:
    """Saving the buffer and its backup (~24 I/Os)."""
    return (
        IOStep(function="buffer_write", file="sources", fd=fd, blocks=4, kind=AccessType.SYNC_WRITE, repeat=3),
        IOStep(function="backup_write", file="backups", fd=8, blocks=4, kind=AccessType.SYNC_WRITE, repeat=2),
        read_loop("hooks_elisp_load", "elisp", 3, count=18, fresh=False),
    )


def _startup() -> Routine:
    """XEmacs launch: dumped image, site elisp, customizations (~1 300 I/Os)."""
    return Routine(
        name="startup",
        phases=(
            Phase(
                steps=(
                    read_loop("ld_load_xemacs", "xemacsbin", 3, count=420, fresh=False),
                    read_loop("site_elisp_load", "elisp", 3, count=520, fresh=False),
                    IOStep(function="custom_read", file="custom", fd=4, blocks=1, fresh=True, repeat=8),
                    read_loop("font_cache_read", "fonts", 5, count=350, fresh=False),
                ),
                think=Think.TYPING,
            ),
        ),
    )


def _routines() -> RoutineMix:
    mix = RoutineMix(cluster=0.72)
    mix.add(Routine("type_c_code", (Phase(_edit_burst("c"), Think.TYPING),)), 27)
    mix.add(Routine("type_lisp", (Phase(_edit_burst("lisp"), Think.TYPING),)), 18)
    mix.add(Routine("type_text", (Phase(_edit_burst("text"), Think.TYPING),)), 13)
    mix.add(
        Routine(
            "scroll_and_pause",
            (Phase(_edit_burst("c") + (IOStep(function="window_scroll", file="sources", fd=7, blocks=2, fresh=True),), Think.PAUSE),),
        ),
        1.5,
    )
    # Opening a file and reading it for a while.
    mix.add(Routine("open_and_read", (Phase(_open_file(), Think.BROWSE),)), 2.0)
    # Deep-thought pauses while editing.
    mix.add(Routine("edit_think", (Phase(_edit_burst("c"), Think.AWAY),)), 1.0)
    mix.add(Routine("save_buffer", (Phase(_save_burst(), Think.AWAY),)), 0.8)
    # Aliasing: save, brief pause, then open another file ("save as" to a
    # different file and continue — the paper's example).
    mix.add(
        Routine(
            "save_then_open",
            (
                Phase(_save_burst(), Think.PAUSE),
                Phase(_open_file(fd=9), Think.AWAY),
            ),
        ),
        0.5,
    )
    mix.add(Routine("grep_search", (Phase((read_loop("grep_read", "sources", 7, count=22, blocks=2, fresh=True),), Think.PAUSE),)), 1.5)
    mix.add(Routine("hesitate", (Phase(_edit_burst("c"), Think.HESITATE),)), 0.25)
    return mix


def _helpers() -> tuple[HelperProcess, ...]:
    return (
        HelperProcess(
            name="ispell",
            steps=(
                IOStep(function="ispell_dict_read", file="ispelldict", fd=10, blocks=2, fresh=True),
            ),
            participation=0.012,
            delay=0.5,
        ),
    )


def spec() -> ApplicationSpec:
    """The xemacs application model (Table 1 row 4)."""
    return ApplicationSpec(
        name="xemacs",
        executions=37,
        startup=_startup(),
        closing=Routine("final_save", (Phase(_save_burst(), Think.TYPING),)),
        mix=_routines(),
        think_model=ThinkTimeModel(away_median=120.0, away_sigma=0.8),
        helpers=_helpers(),
        actions_mean=24.0,
        actions_sd=5.0,
        novel_probability=0.03,
    )
