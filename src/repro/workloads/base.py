"""Workload model machinery: file space, trace builder, application model.

An :class:`ApplicationSpec` declares an application's behaviour —
startup/closing routines, a weighted routine repertoire, think-time
distributions, helper processes, and a novelty rate — and
:func:`build_execution` turns it into one :class:`ExecutionTrace`.
Everything is deterministic given (application, execution index).

Why this reproduces the paper's trace properties:

* routines reference *functions* → stable PCs across executions (the
  foundation of PCAP's cross-execution table reuse);
* cache-hot steps re-read the same file blocks (filtered out by the page
  cache) while ``fresh`` steps read new blocks (cache misses → disk
  accesses), so the *disk-level* PC paths are dominated by each routine's
  stable fresh-read PCs;
* think times are bimodal (quick interaction vs walking away), giving a
  10 s timeout predictor its characteristic ~50 % coverage at near-zero
  mispredictions;
* multi-phase routines whose prefix equals another routine create genuine
  subpath aliasing (§4.1's "save as" example);
* novel routines (unique PCs) model never-repeating behaviour that keeps
  every trained predictor partly in training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.events import ExitEvent, ForkEvent, IOEvent
from repro.traces.trace import ExecutionTrace
from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
)
from repro.workloads.rng import make_rng, stable_pc, stable_seed

#: Pid layout inside one execution.
MAIN_PID = 1000
FIRST_HELPER_PID = 1001

#: Block-address layout: each logical file owns a 2^28-block region; the
#: first 4096 blocks are the "hot" area (re-read content), the rest is
#: carved into per-execution fresh areas (never-before-seen content).
_FILE_REGION_BITS = 28
_HOT_AREA_BLOCKS = 4096
_FRESH_AREA_BLOCKS = 1 << 21


class FileSpace:
    """Stable mapping of logical file names to inodes and block ranges."""

    def __init__(self, application: str, execution_index: int) -> None:
        self.application = application
        self.execution_index = execution_index
        self._fresh_cursor: dict[str, int] = {}

    def inode(self, name: str) -> int:
        """Stable inode of a logical file (same in every execution)."""
        return stable_seed("inode", self.application, name) & 0xFFFFF

    def _region_base(self, name: str) -> int:
        return self.inode(name) << _FILE_REGION_BITS

    def hot_range(self, name: str, blocks: int) -> tuple[int, int]:
        """The file's first ``blocks`` blocks (cache-hot on re-read)."""
        if blocks > _HOT_AREA_BLOCKS:
            raise ConfigurationError(
                f"hot read of {blocks} blocks exceeds the hot area"
            )
        return self._region_base(name), blocks

    def fresh_range(self, name: str, blocks: int) -> tuple[int, int]:
        """``blocks`` never-before-seen blocks of the file."""
        cursor = self._fresh_cursor.get(name, 0)
        if cursor + blocks > _FRESH_AREA_BLOCKS:
            cursor = 0  # wrap within this execution's fresh area
        start = (
            self._region_base(name)
            + _HOT_AREA_BLOCKS
            + self.execution_index * _FRESH_AREA_BLOCKS
            + cursor
        )
        self._fresh_cursor[name] = cursor + blocks
        return start, blocks


class TraceBuilder:
    """Accumulates events of one execution and finalizes the trace."""

    def __init__(self, application: str, execution_index: int) -> None:
        self.application = application
        self.execution_index = execution_index
        self.files = FileSpace(application, execution_index)
        self.events: list = []
        #: Latest event time emitted so far.
        self.latest_time: float = 0.0

    def fork(self, time: float, pid: int, parent: int) -> None:
        self.events.append(ForkEvent(time=time, pid=pid, parent_pid=parent))

    def exit(self, time: float, pid: int) -> None:
        self.events.append(ExitEvent(time=time, pid=pid))

    def emit_steps(
        self,
        start: float,
        pid: int,
        steps: tuple[IOStep, ...],
        pid_map: Optional[dict[str, int]] = None,
    ) -> float:
        """Emit a burst of steps starting at ``start``; returns the time
        of the last event.  Steps naming a ``process`` are routed to that
        helper's pid via ``pid_map``."""
        t = start
        for step in steps:
            pc = stable_pc(self.application, step.function)
            if step.process is None:
                step_pid = pid
            else:
                if pid_map is None or step.process not in pid_map:
                    raise ConfigurationError(
                        f"step {step.function!r} names unknown process "
                        f"{step.process!r}"
                    )
                step_pid = pid_map[step.process]
            for _ in range(step.repeat):
                t += step.pre_gap
                if step.fresh:
                    block_start, count = self.files.fresh_range(
                        step.file, step.blocks
                    )
                else:
                    block_start, count = self.files.hot_range(
                        step.file, step.blocks
                    )
                self.events.append(
                    IOEvent(
                        time=t,
                        pid=step_pid,
                        pc=pc,
                        fd=step.fd,
                        kind=step.kind,
                        inode=self.files.inode(step.file),
                        block_start=block_start,
                        block_count=count,
                    )
                )
        self.latest_time = max(self.latest_time, t)
        return t

    def finish(self, initial_pids: frozenset[int]) -> ExecutionTrace:
        execution = ExecutionTrace(
            application=self.application,
            execution_index=self.execution_index,
            events=self.events,
            initial_pids=initial_pids,
        ).sorted()
        execution.validate()
        return execution


@dataclass(frozen=True, slots=True)
class ApplicationSpec:
    """Complete behavioural description of one application."""

    name: str
    executions: int
    startup: Routine
    closing: Optional[Routine]
    mix: RoutineMix
    think_model: ThinkTimeModel = field(default_factory=ThinkTimeModel)
    helpers: tuple[HelperProcess, ...] = ()
    actions_mean: float = 30.0
    actions_sd: float = 6.0
    #: Probability that an action is a never-repeating novel routine.
    novel_probability: float = 0.10
    #: Shape of generated novel routines (steps, think weights).
    novel_steps: int = 4
    novel_away_probability: float = 0.7

    def __post_init__(self) -> None:
        if self.executions <= 0:
            raise ConfigurationError("executions must be positive")
        if not 0.0 <= self.novel_probability < 1.0:
            raise ConfigurationError("novel probability must be in [0, 1)")
        if self.actions_mean <= 0:
            raise ConfigurationError("actions_mean must be positive")


def _novel_routine(
    spec: ApplicationSpec,
    execution_index: int,
    ordinal: int,
    rng: np.random.Generator,
) -> Routine:
    """A routine with unique PCs: behaviour never seen before or again."""
    tag = f"novel_{execution_index}_{ordinal}"
    steps = tuple(
        IOStep(
            function=f"{tag}_step{k}",
            file=f"{tag}_file",
            fd=9,
            blocks=2,
            fresh=True,
            pre_gap=0.01,
        )
        for k in range(spec.novel_steps)
    )
    think = (
        Think.AWAY
        if rng.random() < spec.novel_away_probability
        else Think.BROWSE
    )
    return Routine(name=tag, phases=(Phase(steps=steps, think=think),))


def build_execution(
    spec: ApplicationSpec, execution_index: int, *, scale: float = 1.0
) -> ExecutionTrace:
    """Generate one deterministic execution of ``spec``."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    rng = make_rng(spec.name, execution_index, "exec")
    builder = TraceBuilder(spec.name, execution_index)
    helper_pids = {
        helper.name: FIRST_HELPER_PID + i
        for i, helper in enumerate(spec.helpers)
    }

    t = 0.02
    for helper in spec.helpers:
        builder.fork(t, helper_pids[helper.name], MAIN_PID)
        t += 0.005

    # Startup: the application loads its libraries and configuration.
    for phase in spec.startup.phases:
        t = builder.emit_steps(t, MAIN_PID, phase.steps, helper_pids)
        t += spec.think_model.sample(phase.think, rng)

    mean = spec.actions_mean * scale
    sd = spec.actions_sd * max(scale, 0.25)
    actions = max(1, int(round(rng.normal(mean, sd))))
    previous: Optional[Routine] = None
    novel_count = 0
    # Helper daemons do their disk work when the user *returns from* a
    # pause (cookies of the next page, autosave after an absence), so
    # their own idle gaps end right after a long think — shadowing the
    # main process's idle-period structure without inventing mid-length
    # gaps of their own.
    returned_from_pause = False
    for _ in range(actions):
        if rng.random() < spec.novel_probability:
            chosen = _novel_routine(spec, execution_index, novel_count, rng)
            novel_count += 1
        else:
            chosen = spec.mix.choose(rng, previous)
            previous = chosen
        for helper in spec.helpers:
            chance = (
                helper.participation
                if returned_from_pause
                else helper.background_participation
            )
            if helper.steps and rng.random() < chance:
                builder.emit_steps(
                    t + helper.delay, helper_pids[helper.name], helper.steps
                )
        for phase in chosen.phases:
            t = builder.emit_steps(t, MAIN_PID, phase.steps, helper_pids)
            t += spec.think_model.sample(phase.think, rng)
        returned_from_pause = chosen.phases[-1].think in (
            Think.BROWSE,
            Think.HESITATE,
            Think.AWAY,
        )

    if spec.closing is not None:
        for phase in spec.closing.phases:
            t = builder.emit_steps(t, MAIN_PID, phase.steps, helper_pids)
            t += spec.think_model.sample(phase.think, rng)

    # Exits come after every emitted event (a helper's delayed I/O may
    # outlast the main process's final burst).
    t = max(t, builder.latest_time)
    for helper in spec.helpers:
        t += 0.003
        builder.exit(t, helper_pids[helper.name])
    t += 0.003
    builder.exit(t, MAIN_PID)
    return builder.finish(initial_pids=frozenset({MAIN_PID}))


def execution_count(spec: ApplicationSpec, *, scale: float = 1.0) -> int:
    """Number of executions ``spec`` generates at ``scale`` (at least 1)."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    return max(1, int(round(spec.executions * scale)))


def build_application_trace(spec: ApplicationSpec, *, scale: float = 1.0):
    """All executions of ``spec`` (count scaled, at least one)."""
    from repro.traces.trace import ApplicationTrace

    return ApplicationTrace(
        application=spec.name,
        executions=[
            build_execution(spec, index, scale=scale)
            for index in range(execution_count(spec, scale=scale))
        ],
    )
