"""End-to-end serve scenario driver and offline equivalence checking.

:func:`run_scenario` is the one shared harness behind the serve pytest
battery, the ``repro faults`` serve phase, and
``tools/check_serve_equivalence.py``: it starts a real daemon
subprocess (``python -m repro serve``), drives N concurrent feed
clients from the synthetic workload suite, optionally SIGKILLs a shard
worker mid-stream, then drains the daemon with SIGTERM and collects
everything needed for verification — per-client decisions, health and
table snapshots, and the daemon's exit code.

:func:`verify_equivalence` is the non-circular correctness check: it
replays the *recorded feed* (the per-application execution sequence the
clients actually submitted, in decision order) through the offline
:meth:`~repro.sim.experiment.ExperimentRunner.run_global` path and
asserts

* merged prediction counters match the offline stats **exactly**
  (integer counters, bit-identical idle seconds),
* summed per-execution energy matches the offline ledger total
  **bit-identically** (same float addition order),
* the daemon's final table snapshots equal an offline replay's
  snapshots key for key, and
* shutdown decision timelines (``fired``) match per execution.

Because the daemon's workers run the same simulation code, agreement
here proves the *service machinery* — sharding, supervision, restarts,
retries, journal recovery — added or lost nothing.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.config import SimulationConfig
from repro.errors import ServeError
from repro.predictors.registry import make_spec
from repro.serve.client import ServeClient, control_request
from repro.serve.worker import _FiredSink, table_snapshot
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import PredictionStats
from repro.traces.trace import ApplicationTrace
from repro.workloads import build_suite


#: Canned serve chaos scenario (``repro faults`` serve phase and the CI
#: serve-smoke gate): one injected connection drop mid-stream (the
#: client reconnects and its resend dedups in the worker journal), one
#: frame truncated in flight (quarantined daemon-side, resent by the
#: client), and one worker stall past the supervisor deadline (SIGKILL,
#: restart, journal replay, in-flight redelivery).  Tuned for a
#: two-client, two-application scenario at scale 0.05 with a stall
#: timeout of ~3 s.
CANNED_SERVE_CHAOS_PLAN = (
    "serve.conn_drop,app=client-0,at=3;"
    "serve.frame_truncate,app=client-1,at=2;"
    "serve.worker_stall,app=mozilla,at=2,seconds=8"
)


@dataclass
class ScenarioResult:
    """Everything a verifier needs from one scenario run."""

    decisions: list[dict] = field(default_factory=list)
    #: ``application -> executions`` in the order decisions arrived.
    feed: dict[str, list] = field(default_factory=dict)
    health: dict = field(default_factory=dict)
    tables: dict = field(default_factory=dict)
    exit_code: Optional[int] = None
    killed_pid: Optional[int] = None
    client_errors: list[str] = field(default_factory=list)


def spawn_daemon(
    *,
    socket_path: str,
    state_dir: str,
    predictor: str = "PCAP",
    shards: int = 2,
    checkpoint_every: int = 8,
    stall_timeout: float = 5.0,
    fault_plan: Optional[str] = None,
    extra_args: tuple[str, ...] = (),
) -> subprocess.Popen:
    """Start ``repro serve`` as a subprocess and wait until it answers."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), _src_path()) if p
    )
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    else:
        env.pop("REPRO_FAULT_PLAN", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro",
         *(("--fault-plan", fault_plan) if fault_plan else ()),
         "serve",
         "--socket", socket_path,
         "--state-dir", state_dir,
         "--predictor", predictor,
         "--shards", str(shards),
         "--checkpoint-every", str(checkpoint_every),
         "--stall-timeout", str(stall_timeout),
         *extra_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 60.0
    control = socket_path + ".ctl"
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read().decode("utf-8", "replace")
            raise ServeError(
                f"daemon exited {process.returncode} during startup:\n"
                f"{output}"
            )
        try:
            if control_request(control, "ping", timeout=2.0).get("ok"):
                return process
        except (OSError, ServeError, ValueError):
            time.sleep(0.1)
    process.kill()
    raise ServeError("daemon did not come up within 60 s")


def _src_path() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))


def run_scenario(
    *,
    socket_path: str,
    state_dir: str,
    clients: int = 8,
    predictor: str = "PCAP",
    shards: int = 2,
    scale: float = 0.05,
    applications: Optional[tuple[str, ...]] = None,
    checkpoint_every: int = 8,
    stall_timeout: float = 5.0,
    fault_plan: Optional[str] = None,
    kill_worker_after: Optional[int] = None,
) -> ScenarioResult:
    """Drive one full daemon lifecycle; see the module docstring.

    ``kill_worker_after`` SIGKILLs the first live forked shard worker
    once that many decisions have arrived — the mid-stream crash drill.
    Client *i* is named ``client-<i>`` and owns every ``execution_index
    % clients == i`` execution of each application, so the feed is
    deterministic for a given (suite scale, client count).
    """
    suite = build_suite(
        scale=scale,
        **({"applications": applications} if applications else {}),
    )
    result = ScenarioResult()
    daemon = spawn_daemon(
        socket_path=socket_path, state_dir=state_dir,
        predictor=predictor, shards=shards,
        checkpoint_every=checkpoint_every, stall_timeout=stall_timeout,
        fault_plan=fault_plan,
    )
    control = socket_path + ".ctl"
    lock = threading.Lock()
    kill_state = {"done": kill_worker_after is None}

    def maybe_kill() -> None:
        if kill_state["done"]:
            return
        if len(result.decisions) < kill_worker_after:
            return
        kill_state["done"] = True
        health = control_request(control, "health")
        for shard in health.get("shards", ()):
            pid = shard.get("pid")
            if pid and not shard.get("degraded"):
                os.kill(pid, signal.SIGKILL)
                result.killed_pid = pid
                return

    def drive(index: int) -> None:
        client = ServeClient(socket_path, f"client-{index}")
        try:
            with client:
                for application in sorted(suite):
                    for execution in suite[application].executions:
                        if execution.execution_index % clients != index:
                            continue
                        decision = client.submit_execution(execution)
                        with lock:
                            result.decisions.append(decision)
                            maybe_kill()
        except Exception as exc:  # collected, not raised mid-thread
            with lock:
                result.client_errors.append(
                    f"client-{index}: {exc}"
                )

    threads = [
        threading.Thread(target=drive, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600.0)

    try:
        result.health = control_request(control, "health")
        result.tables = control_request(control, "tables")
    except (OSError, ServeError, ValueError) as exc:
        result.client_errors.append(f"control socket: {exc}")
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=120.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()
        result.exit_code = daemon.returncode

    # Reconstruct the feed in the workers' actual processing order:
    # each decision carries its shard-journal position (``app_seq``),
    # which is the order table state evolved in — client arrival order
    # is a race, journal order is the truth an offline replay must
    # follow.
    by_index = {
        (application, execution.execution_index): execution
        for application, trace in suite.items()
        for execution in trace.executions
    }
    for decision in sorted(
            result.decisions, key=lambda d: d.get("app_seq", 0)):
        application = decision["application"]
        execution = by_index.get(
            (application, decision["execution_index"])
        )
        if execution is not None:
            result.feed.setdefault(application, []).append(execution)
    return result


def offline_tables(
    feed: dict[str, list],
    *,
    predictor: str = "PCAP",
    config: Optional[SimulationConfig] = None,
) -> dict:
    """Offline per-application table snapshots for a recorded feed."""
    config = config or SimulationConfig()
    runner = ExperimentRunner(
        {
            application: ApplicationTrace(application, list(executions))
            for application, executions in feed.items()
        },
        config=config,
    )
    snapshots = {}
    for application in sorted(feed):
        spec = make_spec(predictor, config)
        runner.run_global(application, spec)
        snapshots[application] = table_snapshot(spec)
    return snapshots


def verify_equivalence(
    result: ScenarioResult,
    *,
    predictor: str = "PCAP",
    config: Optional[SimulationConfig] = None,
) -> list[str]:
    """Compare a scenario against the offline replay; returns failures.

    An empty list means every check held bit-identically.
    """
    failures: list[str] = []
    config = config or SimulationConfig()
    if result.client_errors:
        failures.extend(result.client_errors)
        return failures
    runner = ExperimentRunner(
        {
            application: ApplicationTrace(application, list(executions))
            for application, executions in result.feed.items()
        },
        config=config,
    )

    by_app: dict[str, list[dict]] = {}
    for decision in sorted(
            result.decisions, key=lambda d: d.get("app_seq", 0)):
        by_app.setdefault(decision["application"], []).append(decision)

    for application in sorted(result.feed):
        sink = _FiredSink()
        offline = runner.run_global(application, predictor, tracer=sink)
        decisions = by_app.get(application, [])
        if len(decisions) != len(result.feed[application]):
            failures.append(
                f"{application}: {len(decisions)} decision(s) for "
                f"{len(result.feed[application])} submitted execution(s)"
            )
            continue
        online_stats = PredictionStats.merged([
            PredictionStats.from_dict(d["stats"]) for d in decisions
        ])
        if online_stats != offline.stats:
            failures.append(
                f"{application}: online counters {online_stats.to_dict()} "
                f"!= offline {offline.stats.to_dict()}"
            )
        # Field-wise sums in processing order, then the same four-term
        # total the offline ledger computes — bit-identical or bust.
        sums = {"busy": 0.0, "idle_short": 0.0, "idle_long": 0.0,
                "power_cycle": 0.0}
        for decision in decisions:
            energy = decision["energy"]
            for name in sums:
                sums[name] += energy[name]
        online_energy = (sums["busy"] + sums["idle_short"]
                         + sums["idle_long"] + sums["power_cycle"])
        offline_energy = offline.ledger.total
        if online_energy != offline_energy:
            failures.append(
                f"{application}: online energy {online_energy!r} != "
                f"offline {offline_energy!r}"
            )
        online_shutdowns = sum(d["shutdowns"] for d in decisions)
        if online_shutdowns != offline.shutdowns:
            failures.append(
                f"{application}: online shutdowns {online_shutdowns} != "
                f"offline {offline.shutdowns}"
            )
        online_fired = [
            fired for decision in decisions
            for fired in decision["fired"]
        ]
        if online_fired != _jsonify(sink.fired):
            failures.append(
                f"{application}: shutdown-fired timelines differ "
                f"({len(online_fired)} online vs {len(sink.fired)} "
                "offline events)"
            )

    snapshots = offline_tables(
        result.feed, predictor=predictor, config=config
    )
    online_tables = result.tables.get("applications", {})
    for application, expected in snapshots.items():
        actual = online_tables.get(application)
        if actual != _jsonify(expected):
            failures.append(
                f"{application}: table snapshot mismatch\n"
                f"  online : {actual}\n"
                f"  offline: {_jsonify(expected)}"
            )
    return failures


def _jsonify(obj):
    """Normalize a snapshot the way a JSON round trip would."""
    import json

    return json.loads(json.dumps(obj))
