"""Shard worker: live online prediction over journaled client feeds.

A :class:`ShardWorker` owns the predictor state of every application
hashed to its shard.  It processes one execution at a time through the
**exact** offline code path — :func:`repro.cache.filter.filter_execution`
followed by :func:`repro.sim.engine.run_global_execution` with a
persistent per-application :class:`~repro.predictors.registry.PredictorSpec`,
then ``spec.on_execution_end()`` — which is word for word the loop of
:meth:`repro.sim.experiment.ExperimentRunner.run_global`.  Online
decisions are therefore bit-identical to an offline replay of the same
feed *by construction*; the equivalence battery cross-checks this
against an actual :meth:`run_global` run rather than trusting it.

The worker journals each execution (fsync) **before** releasing its
decision, so any decision a client ever saw is recoverable.  On start
it replays the journal to rebuild its tables, and answers duplicate
``(client, client_seq)`` submissions from the journal — that is what
makes client retries after a connection drop, and supervisor replays
after a SIGKILL, idempotent.

The same class runs forked (:func:`worker_main` served over a
``multiprocessing`` pipe) or inline inside the daemon process when the
supervisor degrades — mirroring the resilient executor's pool →
in-process degradation.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro import faults
from repro.cache.filter import filter_execution
from repro.config import SimulationConfig
from repro.predictors.registry import PredictorSpec, make_spec
from repro.sim.engine import run_global_execution
from repro.sim.metrics import PredictionStats
from repro.serve.state import ShardJournal
from repro.traces.store import decode_event_rows
from repro.traces.trace import ExecutionTrace
from repro._tracing import ShutdownFired


def shard_of(application: str, shards: int) -> int:
    """Stable application → shard mapping (BLAKE2b, layout-independent)."""
    digest = hashlib.blake2b(application.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big") % shards


class _FiredSink:
    """Tracer that keeps only the shutdown-fired timeline of one run."""

    __slots__ = ("fired",)

    def __init__(self) -> None:
        self.fired: list[list] = []

    def emit(self, event) -> None:
        if isinstance(event, ShutdownFired):
            self.fired.append([
                event.time, event.offset, event.gap_length,
                event.source, event.hit,
            ])


def table_snapshot(spec: PredictorSpec) -> dict:
    """Canonical JSON-safe snapshot of a spec's shared table state.

    For table predictors (PCAP family, via the bound
    ``end_execution_hook``) the snapshot carries every key in LRU
    order — byte-for-byte comparable across online and offline runs.
    Predictors without an inspectable table report their size only.
    """
    snapshot: dict = {"name": spec.name, "size": spec.table_size}
    hook = spec.end_execution_hook
    shared = getattr(hook, "__self__", None) if hook is not None else None
    table = getattr(shared, "table", None)
    keys = getattr(table, "keys", None)
    if callable(keys):
        snapshot["keys"] = [
            list(key) if isinstance(key, tuple) else key
            for key in keys()
        ]
        private = getattr(shared, "_private_tables", None)
        if private:
            snapshot["private"] = {
                str(pid): [
                    list(key) if isinstance(key, tuple) else key
                    for key in sub.keys()
                ]
                for pid, sub in sorted(private.items())
            }
    return snapshot


class ShardWorker:
    """Predictor state and processing loop of one shard."""

    def __init__(
        self,
        shard_id: int,
        state_dir,
        *,
        predictor: str = "PCAP",
        config: Optional[SimulationConfig] = None,
        checkpoint_every: int = 32,
    ) -> None:
        self.shard_id = shard_id
        self.predictor = predictor
        self.config = config or SimulationConfig()
        self.journal = ShardJournal(
            f"{state_dir}/shard-{shard_id}",
            provenance={
                "predictor": predictor,
                "config": repr(self.config),
            },
            checkpoint_every=checkpoint_every,
        )
        self._specs: dict[str, PredictorSpec] = {}
        self._stats: dict[str, PredictionStats] = {}
        self.executions = 0
        self.recovered = self._recover()

    def _spec(self, application: str) -> PredictorSpec:
        spec = self._specs.get(application)
        if spec is None:
            spec = make_spec(self.predictor, self.config)
            self._specs[application] = spec
            self._stats[application] = PredictionStats()
        return spec

    def _recover(self) -> int:
        """Rebuild tables by replaying the journal (see module doc)."""
        count = 0
        for record, execution in self.journal.replay():
            self._run(execution, record["application"])
            count += 1
        self.executions = count
        return count

    def _run(self, execution: ExecutionTrace, application: str) -> dict:
        """The offline code path, verbatim, for one execution."""
        spec = self._spec(application)
        filtered = filter_execution(execution, self.config.cache)
        sink = _FiredSink()
        result = run_global_execution(
            execution, filtered, spec, self.config, tracer=sink
        )
        self._stats[application].merge(result.stats)
        spec.on_execution_end()
        ledger = result.ledger
        return {
            "application": application,
            "execution_index": execution.execution_index,
            "stats": result.stats.to_dict(),
            "energy": {
                "busy": ledger.busy,
                "idle_short": ledger.idle_short,
                "idle_long": ledger.idle_long,
                "power_cycle": ledger.power_cycle,
                "standby": ledger.standby,
            },
            "shutdowns": result.shutdowns,
            "disk_accesses": result.disk_accesses,
            "delayed_requests": result.delayed_requests,
            "delay_seconds": result.delay_seconds,
            "irritating_delays": result.irritating_delays,
            "table_size": spec.table_size,
            "fired": sink.fired,
        }

    def process(
        self,
        *,
        client: str,
        client_seq: int,
        application: str,
        execution_index: int,
        initial_pids: list[int],
        rows: bytes,
    ) -> dict:
        """Run one submitted execution; idempotent on retries."""
        previous = self.journal.decisions.get((client, client_seq))
        if previous is not None:
            return previous
        faults.serve_worker_gate(application)
        execution = ExecutionTrace(
            application=application,
            execution_index=execution_index,
            events=decode_event_rows(rows),
            initial_pids=frozenset(int(p) for p in initial_pids),
        )
        decision = self._run(execution, application)
        decision["seq"] = client_seq
        # Journal position: the shard-global processing order, which is
        # what an offline replay must follow to be bit-identical.
        decision["app_seq"] = len(self.journal.records)
        self.journal.record_execution(
            client=client,
            client_seq=client_seq,
            application=application,
            execution_index=execution_index,
            initial_pids=list(initial_pids),
            rows=rows,
            decision=decision,
        )
        self.executions += 1
        return decision

    def stats(self) -> dict:
        """Per-application and merged counters (health endpoint)."""
        merged = PredictionStats.merged(list(self._stats.values()))
        return {
            "executions": self.executions,
            "applications": sorted(self._specs),
            "counters": merged.to_dict(),
            "per_application": {
                app: stats.to_dict()
                for app, stats in sorted(self._stats.items())
            },
        }

    def tables(self) -> dict:
        """Canonical table snapshot per application."""
        return {
            app: table_snapshot(spec)
            for app, spec in sorted(self._specs.items())
        }

    def close(self) -> None:
        self.journal.compact()
        self.journal.close()


def worker_main(conn, shard_id: int, state_dir: str, predictor: str,
                config: Optional[SimulationConfig],
                checkpoint_every: int) -> None:
    """Forked worker entry point: serve jobs over a duplex pipe.

    Message protocol (tuples over the ``multiprocessing`` connection):

    * ``("exec", job_dict)`` → ``("decision", client, seq, payload)``
    * ``("stats",)``  → ``("stats", payload)``
    * ``("tables",)`` → ``("tables", payload)``
    * ``("drain",)``  → ``("drained",)`` and exit

    The first message sent is ``("ready", {"recovered": n})`` after
    journal recovery, so the supervisor knows replay finished.
    """
    worker = ShardWorker(
        shard_id, state_dir, predictor=predictor, config=config,
        checkpoint_every=checkpoint_every,
    )
    conn.send(("ready", {"recovered": worker.recovered}))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "exec":
            job = message[1]
            decision = worker.process(**job)
            conn.send(("decision", job["client"], job["client_seq"],
                       decision))
        elif kind == "stats":
            conn.send(("stats", worker.stats()))
        elif kind == "tables":
            conn.send(("tables", worker.tables()))
        elif kind == "drain":
            worker.close()
            conn.send(("drained",))
            break
    conn.close()
