"""Blocking feed client for the serve daemon.

:class:`ServeClient` streams executions to a running daemon and blocks
for each decision.  It is deliberately simple — one execution in flight
at a time — because its job is correctness under failure, not
throughput: every submission carries a monotonically increasing
``client_seq``, and on *any* connection loss (daemon-side drop, injected
``serve.conn_drop``, NACKed overload) the client reconnects with the
same identity and **resends the whole in-flight execution under the
same sequence number**.  The worker's journal dedup turns the retry
into an exact replay of the original decision, so client-visible
results are unaffected by how many times the connection died.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

import json

from repro.errors import ServeError, ServeProtocolError
from repro.serve import protocol
from repro.traces.store import EVENT_ROW_BYTES, encode_event_rows

#: Rows per ROWS frame (~34 KB at 66 B/row).
DEFAULT_ROWS_PER_FRAME = 512


class ServeClient:
    """One client identity speaking the serve feed protocol."""

    def __init__(
        self,
        address: str,
        client_id: str,
        *,
        retries: int = 8,
        retry_delay: float = 0.2,
        rows_per_frame: int = DEFAULT_ROWS_PER_FRAME,
        timeout: float = 120.0,
    ) -> None:
        self.address = address
        self.client_id = client_id
        self.retries = retries
        self.retry_delay = retry_delay
        self.rows_per_frame = rows_per_frame
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._seq = 0

    # -- connection management ----------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        if ":" in self.address and "/" not in self.address:
            host, _, port = self.address.rpartition(":")
            sock = socket.create_connection((host, int(port)),
                                            timeout=self.timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address)
        sock.sendall(protocol.json_frame(
            protocol.HELLO, {"client": self.client_id}
        ))
        frame = protocol.read_frame(sock)
        if frame is None or frame[0] != protocol.HELLO_OK:
            sock.close()
            raise ServeProtocolError("daemon did not answer HELLO")
        self._sock = sock
        return sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- submission ----------------------------------------------------
    def submit_execution(self, execution) -> dict:
        """Stream one execution; block for (and return) its decision.

        Retries transparently across connection drops and recoverable
        NACKs (``draining``/``backpressure``/``overloaded``/
        ``malformed``); a ``protocol`` NACK is terminal and raises
        :class:`ServeError`.
        """
        seq = self._seq
        self._seq += 1
        rows = encode_event_rows(execution.events)
        header = {
            "application": execution.application,
            "execution": execution.execution_index,
            "seq": seq,
            "initial_pids": sorted(execution.initial_pids),
        }
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.retry_delay * attempt)
            try:
                return self._attempt(header, rows)
            except (ConnectionError, OSError, ServeProtocolError) as exc:
                last_error = exc
                self._disconnect()
            except _Retryable as exc:
                last_error = ServeError(str(exc))
                self._disconnect()
        raise ServeError(
            f"client {self.client_id}: execution seq {seq} failed after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    def _attempt(self, header: dict, rows: bytes) -> dict:
        sock = self._connect()
        sock.sendall(protocol.json_frame(protocol.EXEC_BEGIN, header))
        step = max(1, self.rows_per_frame) * EVENT_ROW_BYTES
        for start in range(0, len(rows), step):
            sock.sendall(protocol.encode_frame(
                protocol.ROWS, rows[start:start + step]
            ))
        sock.sendall(protocol.json_frame(protocol.EXEC_END, {}))
        while True:
            frame = protocol.read_frame(sock)
            if frame is None:
                raise ConnectionError("connection closed before decision")
            ftype, payload = frame
            if ftype == protocol.DECISION:
                return protocol.parse_json(payload)
            if ftype == protocol.NACK:
                nack = protocol.parse_json(payload)
                code = nack.get("code")
                if code in (protocol.NACK_DRAINING,
                            protocol.NACK_BACKPRESSURE,
                            protocol.NACK_OVERLOADED,
                            # Frames corrupted in flight (e.g. the
                            # serve.frame_truncate fault) are quarantined
                            # daemon-side; resending the same seq is the
                            # correct recovery and dedups exactly.
                            protocol.NACK_MALFORMED):
                    raise _Retryable(f"{code}: {nack.get('detail')}")
                raise ServeError(
                    f"daemon rejected execution: {code}: "
                    f"{nack.get('detail')}"
                )
            raise ServeProtocolError(
                f"unexpected frame {protocol.FRAME_NAMES.get(ftype, ftype)}"
            )

    def close(self) -> None:
        """Send BYE (best effort) and disconnect."""
        if self._sock is not None:
            try:
                self._sock.sendall(protocol.json_frame(protocol.BYE, {}))
            except OSError:
                pass
        self._disconnect()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _Retryable(Exception):
    """A NACK the client should wait out and retry."""


def control_request(address: str, command: str, *,
                    timeout: float = 30.0) -> dict:
    """One request/response on a daemon's control socket."""
    if ":" in address and "/" not in address:
        host, _, port = address.rpartition(":")
        sock = socket.create_connection((host, int(port)), timeout=timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    with sock:
        sock.sendall((json.dumps({"cmd": command}) + "\n").encode("utf-8"))
        reader = sock.makefile("r", encoding="utf-8")
        line = reader.readline()
    if not line.strip():
        raise ServeError(f"empty control response for {command!r}")
    return json.loads(line)
