"""Crash-safe prediction state for one serve shard.

A shard's entire predictor state is **event-sourced**: the journal
records every execution the shard ever processed (its rows plus the
decision returned), and the in-memory prediction tables are always a
pure replay of that record.  That makes recovery trivial and exact —
a restarted worker replays the journal through fresh predictor specs
and ends with *bit-identical* table contents, because it runs the very
same :func:`~repro.sim.engine.run_global_execution` calls the live
worker ran.

Layout of ``state_dir/shard-<k>/``::

    journal.jsonl         # append-only, fsynced per record
    segments/seg-00000/   # compacted row data: a trace store
    quarantine/           # malformed frames, *.corrupt (daemon-owned)

Journal records::

    {"type": "provenance", "predictor": ..., "config": ..., "format": 1}
    {"type": "execution", "app_seq": 3, "application": "mozilla",
     "client": "c1", "client_seq": 2, "execution_index": 5,
     "initial_pids": [100], "rows": "<base64 columnar rows>",
     "decision": {...}}

Every ``checkpoint_every`` executions the journal is **compacted**: the
accumulated row payloads are packed into a trace-store segment
(:class:`~repro.traces.store.StoreWriter` — chunked column files plus
an atomically-published manifest carrying BLAKE2b provenance
fingerprints), and the journal is atomically rewritten with each
compacted record's ``rows`` replaced by a ``{"segment": k, "pos": i}``
pointer.  Both steps are crash-ordered: the segment manifest is
published before the journal rewrite, and the rewrite itself is
tmp-file + ``os.replace`` + fsync, so a crash at any instant leaves
either the old journal (rows inline) or the new one (rows in a fully
published segment) — never a state that cannot replay.

A torn final journal line (crash mid-append) is truncated away on
load, mirroring :class:`repro.sim.resilience.CellCheckpoint`; the
daemon then re-answers the affected client's retry idempotently.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import ServeError
from repro.traces.store import StoreWriter, TraceStore, decode_event_rows
from repro.traces.trace import ExecutionTrace

#: Journal schema version.
JOURNAL_FORMAT = 1

JOURNAL_NAME = "journal.jsonl"
_SEGMENT_DIR = "segments"


class ShardJournal:
    """Append-only, compacting execution journal of one shard."""

    def __init__(
        self,
        shard_dir: str | os.PathLike[str],
        *,
        provenance: Optional[dict] = None,
        checkpoint_every: int = 32,
    ) -> None:
        if checkpoint_every < 1:
            raise ServeError("checkpoint_every must be at least 1")
        self.shard_dir = Path(shard_dir)
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.shard_dir / JOURNAL_NAME
        self.checkpoint_every = checkpoint_every
        self.provenance: Optional[dict] = None
        #: Records in append order (the replay tape).
        self.records: list[dict] = []
        #: ``(client, client_seq) -> decision`` for idempotent retries.
        self.decisions: dict[tuple[str, int], dict] = {}
        self.torn_bytes = 0
        self._stream = None
        self._uncompacted = 0
        self._next_segment = 0
        if self.path.exists():
            self._load()
        if provenance is not None:
            self._declare_provenance(provenance)

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        raw = self.path.read_bytes()
        offset = 0
        valid_end = 0
        for chunk in raw.split(b"\n"):
            end = min(len(raw), offset + len(chunk) + 1)
            line = chunk.decode("utf-8", errors="replace").strip()
            offset = end
            if not line:
                valid_end = end
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Only a torn tail is survivable; garbage mid-journal
                # means the shard state cannot be trusted.
                if any(rest.strip() for rest in
                       raw[end:].split(b"\n")):
                    raise ServeError(
                        f"shard journal {self.path} is corrupt "
                        "mid-stream; remove the shard directory to "
                        "reset its state"
                    ) from None
                break
            self._ingest(record)
            valid_end = end
        if valid_end < len(raw):
            self.torn_bytes = len(raw) - valid_end
            with open(self.path, "r+b") as stream:
                stream.truncate(valid_end)

    def _ingest(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype == "provenance":
            self.provenance = record
            return
        if rtype != "execution":
            raise ServeError(
                f"shard journal {self.path} holds an unknown record "
                f"type {rtype!r}"
            )
        self.records.append(record)
        self.decisions[
            (str(record["client"]), int(record["client_seq"]))
        ] = record["decision"]
        segment = record.get("segment")
        if segment is None:
            self._uncompacted += 1
        else:
            self._next_segment = max(self._next_segment,
                                     int(segment["segment"]) + 1)

    def _declare_provenance(self, provenance: dict) -> None:
        declared = {"type": "provenance", "format": JOURNAL_FORMAT,
                    **provenance}
        if self.provenance is not None:
            mismatched = {
                key for key in provenance
                if self.provenance.get(key) != provenance[key]
            }
            if mismatched:
                raise ServeError(
                    f"shard journal {self.path} was written under a "
                    f"different configuration ({sorted(mismatched)} "
                    "differ); remove the state directory or restart "
                    "with the original settings"
                )
            return
        self.provenance = declared
        self._append(declared)

    # -- appending -----------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._stream is None:
            self._stream = open(self.path, "a", encoding="utf-8")
        self._stream.write(json.dumps(record) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def record_execution(
        self,
        *,
        client: str,
        client_seq: int,
        application: str,
        execution_index: int,
        initial_pids: list[int],
        rows: bytes,
        decision: dict,
    ) -> None:
        """Durably journal one processed execution (fsync before the
        decision is released to the client)."""
        record = {
            "type": "execution",
            "app_seq": len(self.records),
            "application": application,
            "client": client,
            "client_seq": client_seq,
            "execution_index": execution_index,
            "initial_pids": list(initial_pids),
            "rows": base64.b64encode(rows).decode("ascii"),
            "decision": decision,
        }
        self._append(record)
        self.records.append(record)
        self.decisions[(client, client_seq)] = decision
        self._uncompacted += 1
        if self._uncompacted >= self.checkpoint_every:
            self.compact()

    # -- compaction ----------------------------------------------------
    def compact(self) -> Optional[Path]:
        """Move inline row payloads into a trace-store segment.

        Returns the new segment path, or ``None`` when nothing was
        pending.  The segment is published (atomic manifest) *before*
        the journal is rewritten to point at it, so a crash between the
        two steps only costs the compaction, never the state.
        """
        pending = [r for r in self.records if r.get("segment") is None]
        if not pending:
            return None
        segment_index = self._next_segment
        segment_dir = (self.shard_dir / _SEGMENT_DIR /
                       f"seg-{segment_index:05d}")
        positions: dict[str, int] = {}
        with StoreWriter(segment_dir) as writer:
            for record in pending:
                execution = self._execution_from(record)
                writer.write_execution(execution)
                app = record["application"]
                record["segment"] = {
                    "segment": segment_index,
                    "pos": positions.get(app, 0),
                }
                record.pop("rows", None)
                positions[app] = positions.get(app, 0) + 1
        self._rewrite_journal()
        self._next_segment = segment_index + 1
        self._uncompacted = 0
        return segment_dir

    def _rewrite_journal(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        fd, tmp_name = tempfile.mkstemp(
            dir=self.shard_dir, prefix=".journal-", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            if self.provenance is not None:
                stream.write(json.dumps(self.provenance) + "\n")
            for record in self.records:
                stream.write(json.dumps(record) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, self.path)

    # -- replay --------------------------------------------------------
    def _segment_store(self, index: int) -> TraceStore:
        memo = getattr(self, "_segment_memo", None)
        if memo is None:
            memo = self._segment_memo = {}
        store = memo.get(index)
        if store is None:
            store = TraceStore(
                self.shard_dir / _SEGMENT_DIR / f"seg-{index:05d}"
            )
            memo[index] = store
        return store

    def _execution_from(self, record: dict) -> ExecutionTrace:
        """Rebuild one journaled execution's event list."""
        segment = record.get("segment")
        if segment is None:
            events = decode_event_rows(
                base64.b64decode(record["rows"])
            )
        else:
            store = self._segment_store(int(segment["segment"]))
            stored = store.trace(record["application"]).executions[
                int(segment["pos"])
            ]
            events = list(stored.iter_events())
        return ExecutionTrace(
            application=str(record["application"]),
            execution_index=int(record["execution_index"]),
            events=events,
            initial_pids=frozenset(
                int(p) for p in record["initial_pids"]
            ),
        )

    def replay(self) -> Iterator[tuple[dict, ExecutionTrace]]:
        """Yield ``(record, execution)`` in original processing order."""
        for record in self.records:
            yield record, self._execution_from(record)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "ShardJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
