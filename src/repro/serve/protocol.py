"""Wire protocol of the online DPM service (:mod:`repro.serve`).

Framing is length-prefixed binary: every frame is a 4-byte big-endian
unsigned length ``L`` followed by ``L`` bytes of body, where the body is
one type byte plus the payload::

    +----------+------+-------------------+
    | !I length| type | payload (L-1 B)   |
    +----------+------+-------------------+

Payloads are UTF-8 JSON for every frame type except :data:`ROWS`, whose
payload is the trace store's columnar row encoding
(:func:`repro.traces.store.encode_event_rows`, 66 bytes per event) —
the daemon feeds those bytes straight into the same decoder the store
uses, so an event round-trips the socket bit-identically.

A client conversation::

    -> HELLO      {"client": "c1"}
    <- HELLO_OK   {"shards": 2, "row_bytes": 66}
    -> EXEC_BEGIN {"application": "mozilla", "execution": 0,
                   "seq": 0, "initial_pids": [100]}
    -> ROWS       <columnar rows>          (repeated, any chunking)
    -> EXEC_END   {}
    <- DECISION   {"seq": 0, "stats": {...}, "fired": [...], ...}
    -> BYE        {}

Any protocol violation or overload is answered with a typed
:data:`NACK` (``{"code": ..., "detail": ...}``) before the connection
is closed; see :mod:`repro.serve.daemon` for the code vocabulary.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator, Optional

from repro.errors import ServeProtocolError

#: Protocol version, carried in HELLO/HELLO_OK.
PROTOCOL_VERSION = 1

# Frame types ---------------------------------------------------------
HELLO = 1
HELLO_OK = 2
EXEC_BEGIN = 3
ROWS = 4
EXEC_END = 5
DECISION = 6
NACK = 7
BYE = 8

FRAME_NAMES = {
    HELLO: "HELLO",
    HELLO_OK: "HELLO_OK",
    EXEC_BEGIN: "EXEC_BEGIN",
    ROWS: "ROWS",
    EXEC_END: "EXEC_END",
    DECISION: "DECISION",
    NACK: "NACK",
    BYE: "BYE",
}

#: Hard per-frame size cap: a frame longer than this is a protocol
#: violation, not a large request (16 MiB ≈ 250k rows).
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct("!I")

# NACK codes ----------------------------------------------------------
NACK_BACKPRESSURE = "backpressure"
NACK_OVERLOADED = "overloaded"
NACK_MALFORMED = "malformed"
NACK_DRAINING = "draining"
NACK_PROTOCOL = "protocol"


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """One wire frame: length prefix + type byte + payload."""
    body_len = 1 + len(payload)
    if body_len > MAX_FRAME:
        raise ServeProtocolError(
            f"frame of {body_len} byte(s) exceeds the {MAX_FRAME}-byte cap"
        )
    return _LENGTH.pack(body_len) + bytes([ftype]) + payload


def json_frame(ftype: int, obj: dict) -> bytes:
    """A frame whose payload is the JSON encoding of ``obj``."""
    return encode_frame(ftype, json.dumps(obj).encode("utf-8"))


def parse_json(payload: bytes) -> dict:
    """Decode a JSON frame payload; raise :class:`ServeProtocolError`
    (never a bare ``json`` error) on garbage."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeProtocolError(f"malformed JSON payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServeProtocolError("JSON payload must be an object")
    return obj


class FrameReader:
    """Incremental frame parser for a non-blocking socket.

    Feed raw received bytes with :meth:`feed`; complete ``(type,
    payload)`` frames come back from :meth:`frames`.  The reader never
    buffers more than one frame beyond what was fed, and rejects
    oversized or zero-length frames with :class:`ServeProtocolError`
    *before* buffering their body, so a hostile length prefix cannot
    balloon memory.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def __len__(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def frames(self) -> Iterator[tuple[int, bytes]]:
        """Yield every complete frame currently buffered."""
        buffer = self._buffer
        while True:
            if len(buffer) < _LENGTH.size:
                return
            (body_len,) = _LENGTH.unpack_from(buffer)
            if body_len == 0:
                raise ServeProtocolError("zero-length frame")
            if body_len > MAX_FRAME:
                raise ServeProtocolError(
                    f"declared frame of {body_len} byte(s) exceeds the "
                    f"{MAX_FRAME}-byte cap"
                )
            end = _LENGTH.size + body_len
            if len(buffer) < end:
                return
            ftype = buffer[_LENGTH.size]
            payload = bytes(buffer[_LENGTH.size + 1:end])
            del buffer[:end]
            yield ftype, payload


def read_frame(sock) -> Optional[tuple[int, bytes]]:
    """Blocking read of exactly one frame from a connected socket.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ServeProtocolError` on EOF mid-frame.
    """
    header = _read_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (body_len,) = _LENGTH.unpack(header)
    if body_len == 0 or body_len > MAX_FRAME:
        raise ServeProtocolError(f"illegal frame length {body_len}")
    body = _read_exact(sock, body_len, eof_ok=False)
    assert body is not None
    return body[0], bytes(body[1:])


def _read_exact(sock, count: int, *, eof_ok: bool) -> Optional[bytes]:
    chunks = bytearray()
    while len(chunks) < count:
        data = sock.recv(count - len(chunks))
        if not data:
            if eof_ok and not chunks:
                return None
            raise ServeProtocolError("connection closed mid-frame")
        chunks.extend(data)
    return bytes(chunks)
