"""Shard supervision: fork, watch, kill, restart, degrade.

Each :class:`ShardSupervisor` owns one shard worker and the job traffic
to it.  The failure model mirrors the resilient executor
(:mod:`repro.sim.resilience`) deliberately:

* A worker that **dies** (its pipe reports EOF / the process exits) is
  restarted after a deterministic backoff —
  :meth:`ResiliencePolicy.backoff` with the shard id standing in for
  the cell index — and the journal replay inside
  :class:`~repro.serve.worker.ShardWorker` restores its tables exactly.
* A worker that **stalls** (no reply within ``stall_timeout`` of a job
  being sent) is SIGKILLed first; same restart path.  A stall injected
  by ``serve.worker_stall`` is disarmed after the kill so the replayed
  worker runs clean — a transient hang, not a crash loop.
* After ``policy.degrade_after`` incidents the supervisor stops
  forking and runs the shard **inline** in the daemon process, exactly
  like the resilient executor's pool → in-process degradation.  (Hosts
  without ``fork`` start degraded.)

Because every completed execution is journaled before its decision is
released, restarting at any instant loses at most the job in flight —
and that job is simply re-sent to the recovered worker, whose journal
dedup returns the identical decision if it had already been processed.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from multiprocessing import get_context
from typing import Callable, Optional

from repro import faults
from repro.config import SimulationConfig
from repro.sim.parallel import fork_available
from repro.sim.resilience import ResiliencePolicy
from repro.serve.worker import ShardWorker, worker_main

#: ``(client, client_seq, decision)`` consumer supplied by the daemon.
DecisionSink = Callable[[str, int, dict], None]


class ShardSupervisor:
    """Lifecycle and job queue of one shard worker."""

    def __init__(
        self,
        shard_id: int,
        state_dir: str,
        *,
        predictor: str = "PCAP",
        config: Optional[SimulationConfig] = None,
        checkpoint_every: int = 32,
        policy: Optional[ResiliencePolicy] = None,
        stall_timeout: float = 30.0,
        max_queue: int = 64,
        use_fork: Optional[bool] = None,
    ) -> None:
        self.shard_id = shard_id
        self.state_dir = str(state_dir)
        self.predictor = predictor
        self.config = config or SimulationConfig()
        self.checkpoint_every = checkpoint_every
        self.policy = policy or ResiliencePolicy()
        self.stall_timeout = stall_timeout
        self.max_queue = max_queue
        self._use_fork = fork_available() if use_fork is None else use_fork
        self.conn = None
        self.process = None
        self.inline: Optional[ShardWorker] = None
        self.ready = False
        self.recovered = 0
        self.restarts = 0
        self.degraded = False
        self.queue: deque[dict] = deque()
        self.inflight: Optional[dict] = None
        self._deadline: Optional[float] = None
        #: Pending one-shot info requests ("stats"/"tables") from the
        #: daemon, answered in order by the worker.
        self._info_waiters: deque[Callable[[str, dict], None]] = deque()
        self.decision_sink: Optional[DecisionSink] = None
        self.incident_sink: Optional[Callable[[dict], None]] = None
        self.start()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Fork the worker (or construct it inline when degraded)."""
        if self.degraded or not self._use_fork:
            self.degraded = True
            self.inline = ShardWorker(
                self.shard_id, self.state_dir,
                predictor=self.predictor, config=self.config,
                checkpoint_every=self.checkpoint_every,
            )
            self.recovered = self.inline.recovered
            self.ready = True
            return
        context = get_context("fork")
        parent, child = context.Pipe()
        self.process = context.Process(
            target=worker_main,
            args=(child, self.shard_id, self.state_dir, self.predictor,
                  self.config, self.checkpoint_every),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.conn = parent
        self.ready = False

    @property
    def pid(self) -> Optional[int]:
        if self.process is not None and self.process.is_alive():
            return self.process.pid
        return None

    def fileno(self) -> int:
        """Selector registration handle (forked mode only)."""
        assert self.conn is not None
        return self.conn.fileno()

    # -- job flow ------------------------------------------------------
    def submit(self, job: dict) -> bool:
        """Enqueue one execution job; ``False`` when the queue is full."""
        if len(self.queue) >= self.max_queue:
            return False
        self.queue.append(job)
        self._pump()
        return True

    @property
    def depth(self) -> int:
        return len(self.queue) + (1 if self.inflight is not None else 0)

    def _pump(self) -> None:
        if self.degraded:
            self._pump_inline()
            return
        if not self.ready or self.inflight is not None or not self.queue:
            return
        job = self.queue.popleft()
        self.inflight = job
        self._deadline = time.monotonic() + self.stall_timeout
        try:
            self.conn.send(("exec", job))
        except (BrokenPipeError, OSError):
            self._handle_death("send-failed")

    def _pump_inline(self) -> None:
        assert self.inline is not None
        while self.queue:
            job = self.queue.popleft()
            decision = self.inline.process(**job)
            if self.decision_sink is not None:
                self.decision_sink(
                    job["client"], job["client_seq"], decision
                )

    def request_info(self, kind: str,
                     callback: Callable[[str, dict], None]) -> None:
        """Ask the worker for ``stats`` or ``tables`` (async reply)."""
        if self.degraded:
            assert self.inline is not None
            payload = (self.inline.stats() if kind == "stats"
                       else self.inline.tables())
            callback(kind, payload)
            return
        self._info_waiters.append(callback)
        try:
            self.conn.send((kind,))
        except (BrokenPipeError, OSError):
            self._handle_death("send-failed")

    # -- event handling (daemon calls these) ---------------------------
    def on_readable(self) -> None:
        """Drain one message from the worker pipe (never blocks).

        Spurious calls are harmless: the daemon's event loop may carry
        a stale readiness event for this pipe in the same ``select``
        batch that already drained it (e.g. a control-socket ``health``
        handler pumping replies), so an unguarded ``recv`` here could
        block the whole daemon on an idle worker.
        """
        if self.conn is None:
            return
        try:
            if not self.conn.poll(0):
                return
            message = self.conn.recv()
        except (EOFError, OSError):
            self._handle_death("pipe-eof")
            return
        kind = message[0]
        if kind == "ready":
            self.ready = True
            self.recovered = message[1]["recovered"]
            self._deadline = None
            self._pump()
        elif kind == "decision":
            _, client, client_seq, decision = message
            self.inflight = None
            self._deadline = None
            if self.decision_sink is not None:
                self.decision_sink(client, client_seq, decision)
            self._pump()
        elif kind in ("stats", "tables"):
            if self._info_waiters:
                self._info_waiters.popleft()(kind, message[1])
        elif kind == "drained":
            self.ready = False

    def check_stall(self, now: Optional[float] = None) -> None:
        """SIGKILL and restart a worker that blew its job deadline."""
        if self.degraded or self.inflight is None:
            return
        if now is None:
            now = time.monotonic()
        if self._deadline is not None and now > self._deadline:
            self._kill()
            # An injected stall has done its job; the replayed worker
            # must run clean instead of re-inheriting the stall counter.
            faults.disarm(faults.SERVE_WORKER_STALL)
            self._handle_death("stall-timeout")

    def _kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except OSError:
                pass
            self.process.join(timeout=5.0)

    def _handle_death(self, reason: str) -> None:
        """Restart (or degrade) after the worker died or was killed."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            self.process.join(timeout=5.0)
            self.process = None
        self.ready = False
        self.restarts += 1
        if self.incident_sink is not None:
            self.incident_sink({
                "kind": "worker-restart",
                "shard": self.shard_id,
                "reason": reason,
                "restarts": self.restarts,
            })
        # Put the in-flight job back at the head: the recovered worker
        # either re-runs it or answers from its journal, identically.
        if self.inflight is not None:
            self.queue.appendleft(self.inflight)
            self.inflight = None
        self._deadline = None
        if self.restarts >= self.policy.degrade_after:
            self.degraded = True
            if self.incident_sink is not None:
                self.incident_sink({
                    "kind": "shard-degraded",
                    "shard": self.shard_id,
                    "restarts": self.restarts,
                })
        else:
            time.sleep(self.policy.backoff(self.shard_id, self.restarts))
        self.start()
        if self.degraded:
            self._pump()

    # -- shutdown ------------------------------------------------------
    def drain(self) -> None:
        """Finish queued work, compact the journal, stop the worker."""
        if self.degraded:
            self._pump_inline()
            assert self.inline is not None
            self.inline.close()
            return
        while self.queue or self.inflight is not None or not self.ready:
            if self.conn is None:
                return
            if self.conn.poll(self.stall_timeout):
                self.on_readable()
            else:
                self.check_stall()
        try:
            self.conn.send(("drain",))
            if self.conn.poll(self.stall_timeout):
                self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self._kill()

    def health(self) -> dict:
        return {
            "shard": self.shard_id,
            "pid": self.pid,
            "alive": self.degraded or self.pid is not None,
            "degraded": self.degraded,
            "ready": self.ready,
            "restarts": self.restarts,
            "recovered": self.recovered,
            "queue_depth": self.depth,
        }
