"""The ``repro serve`` daemon: sockets, backpressure, supervision glue.

A single-threaded :mod:`selectors` event loop multiplexes:

* the **listen socket** (Unix path or TCP) accepting client feeds
  speaking the frame protocol of :mod:`repro.serve.protocol`;
* the **control socket** (``<path>.ctl`` / TCP port + 1) speaking
  line-delimited JSON — ``{"cmd": "health" | "tables" | "ping" |
  "drain"}`` — for health checks, table snapshots, and operator drains;
* one **pipe per shard supervisor** carrying decisions back from the
  worker processes;
* a **signal socketpair**: SIGTERM/SIGINT write a byte, the loop sees
  it and starts a graceful drain (stop accepting, NACK ``draining`` to
  new work, finish every queued execution, drain the workers, exit 0).

Robustness behaviors, all deterministic and chaos-testable:

* **Backpressure** — a client assembling more than
  ``max_pending_bytes`` of row payload, or targeting a shard whose
  queue already holds ``max_queue`` jobs, is shed with a typed NACK
  (``backpressure`` / ``overloaded``) and disconnected; it can
  reconnect and resubmit later (idempotently).
* **Malformed frames** — an undecodable payload (the
  ``serve.frame_truncate`` site truncates one deliberately) is
  **quarantined**: the raw bytes are written to
  ``state_dir/quarantine/<client>-<n>.corrupt`` (the store's
  ``*.corrupt`` convention) and the client gets a ``malformed`` NACK.
* **Connection drops** — the ``serve.conn_drop`` site severs a chosen
  client's connection mid-stream; the client reconnects and resubmits,
  and journal dedup in the worker makes the redelivery exact.
* Worker crashes and stalls are the supervisor's department
  (:mod:`repro.serve.supervisor`); the daemon only reports the
  incidents on the health endpoint.
"""

from __future__ import annotations

import json
import os
import selectors
import signal
import socket
import time
from pathlib import Path
from typing import Optional

from repro import faults
from repro.config import SimulationConfig
from repro.errors import ServeError, ServeProtocolError
from repro.sim.metrics import PredictionStats
from repro.sim.resilience import ResiliencePolicy
from repro.serve import protocol
from repro.serve.supervisor import ShardSupervisor
from repro.serve.worker import shard_of
from repro.traces.store import EVENT_ROW_BYTES

_ACCEPT_BACKLOG = 64
_RECV_SIZE = 65536


class _ClientConn:
    """Per-connection state of one feed client."""

    __slots__ = (
        "sock", "reader", "client_id", "pending", "pending_bytes",
        "outbox", "closing",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.reader = protocol.FrameReader()
        self.client_id: Optional[str] = None
        #: Execution under assembly: header dict plus row chunks.
        self.pending: Optional[dict] = None
        self.pending_bytes = 0
        self.outbox = bytearray()
        self.closing = False


class ServeDaemon:
    """The online DPM service (see module docstring)."""

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        tcp: Optional[tuple[str, int]] = None,
        state_dir: str,
        predictor: str = "PCAP",
        config: Optional[SimulationConfig] = None,
        shards: int = 2,
        checkpoint_every: int = 32,
        stall_timeout: float = 30.0,
        max_pending_bytes: int = 8 * 1024 * 1024,
        max_queue: int = 64,
        policy: Optional[ResiliencePolicy] = None,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ServeError("serve needs exactly one of socket/tcp")
        if shards < 1:
            raise ServeError("shards must be at least 1")
        self.state_dir = Path(state_dir)
        (self.state_dir / "quarantine").mkdir(parents=True, exist_ok=True)
        self.predictor = predictor
        self.config = config or SimulationConfig()
        self.max_pending_bytes = max_pending_bytes
        self.draining = False
        self.incidents: list[dict] = []
        self._quarantined = 0
        self._decided = 0
        self._selector = selectors.DefaultSelector()
        self._clients: dict[socket.socket, _ClientConn] = {}
        #: ``(client_id, seq) -> socket`` awaiting a decision.
        self._waiting: dict[tuple[str, int], socket.socket] = {}

        self._is_unix = socket_path is not None
        if socket_path is not None:
            self._listen = _unix_listener(socket_path)
            self._control = _unix_listener(socket_path + ".ctl")
            self.address = socket_path
            self.control_address = socket_path + ".ctl"
        else:
            host, port = tcp
            self._listen = _tcp_listener(host, port)
            port = self._listen.getsockname()[1]
            self._control = _tcp_listener(host, port + 1)
            self.address = f"{host}:{port}"
            self.control_address = f"{host}:{port + 1}"

        self.supervisors = [
            ShardSupervisor(
                shard, str(self.state_dir),
                predictor=predictor, config=self.config,
                checkpoint_every=checkpoint_every, policy=policy,
                stall_timeout=stall_timeout, max_queue=max_queue,
            )
            for shard in range(shards)
        ]
        for supervisor in self.supervisors:
            supervisor.decision_sink = self._on_decision
            supervisor.incident_sink = self._on_incident

        self._signal_rx, self._signal_tx = socket.socketpair()
        self._signal_rx.setblocking(False)
        self._old_handlers = {}
        #: ``shard_id -> (fd, restarts)`` currently registered with the
        #: selector.  The fd is kept so a dead worker's pipe can be
        #: unregistered *by number* after the supervisor already closed
        #: it (a closed multiprocessing Connection raises OSError from
        #: ``fileno()``); the restart count is part of the key because a
        #: restarted worker's new pipe can land on the *same* fd number
        #: — same fd, different file description — and the epoll
        #: registration must be refreshed anyway.
        self._shard_reg: dict[int, tuple[int, int]] = {}

    # -- incidents & decisions ----------------------------------------
    def _on_incident(self, incident: dict) -> None:
        self.incidents.append(incident)

    def _on_decision(self, client_id: str, seq: int, decision: dict) -> None:
        self._decided += 1
        sock = self._waiting.pop((client_id, seq), None)
        if sock is None:
            return  # client went away; journal keeps the decision
        conn = self._clients.get(sock)
        if conn is None:
            return
        self._send(conn, protocol.json_frame(protocol.DECISION, decision))

    # -- socket plumbing ----------------------------------------------
    def _send(self, conn: _ClientConn, data: bytes) -> None:
        conn.outbox.extend(data)
        self._flush(conn)
        if conn.outbox:
            self._selector.modify(
                conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE,
                ("client", conn),
            )

    def _flush(self, conn: _ClientConn) -> None:
        while conn.outbox:
            try:
                sent = conn.sock.send(conn.outbox)
            except BlockingIOError:
                return
            except OSError:
                self._drop_client(conn)
                return
            del conn.outbox[:sent]
        if conn.closing:
            self._drop_client(conn)

    def _drop_client(self, conn: _ClientConn) -> None:
        sock = conn.sock
        if sock not in self._clients:
            return
        del self._clients[sock]
        self._waiting = {
            key: value for key, value in self._waiting.items()
            if value is not sock
        }
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        # Shut the connection down, not just this fd: a shard worker
        # forked after the client connected inherits a copy of the
        # socket (plain ``fork`` ignores close-on-exec), and that copy
        # would otherwise keep the connection open — the client would
        # never see EOF.  ``shutdown`` severs the connection itself,
        # regardless of how many processes hold descriptors to it.
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        sock.close()

    def _nack(self, conn: _ClientConn, code: str, detail: str) -> None:
        """Typed NACK, then close once it is flushed."""
        conn.closing = True
        self._send(conn, protocol.json_frame(
            protocol.NACK, {"code": code, "detail": detail}
        ))

    # -- frame handling ------------------------------------------------
    def _on_client_readable(self, conn: _ClientConn) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._drop_client(conn)
            return
        if not data:
            self._drop_client(conn)
            return
        conn.reader.feed(data)
        try:
            for ftype, payload in conn.reader.frames():
                client = conn.client_id or "<anonymous>"
                if faults.serve_conn_gate(client):
                    self._on_incident({
                        "kind": "conn-drop",
                        "client": client,
                        "injected": True,
                    })
                    self._drop_client(conn)
                    return
                payload = faults.serve_frame_gate(client, payload)
                self._handle_frame(conn, ftype, payload)
                if conn.sock not in self._clients or conn.closing:
                    return
        except ServeProtocolError as exc:
            self._quarantine(conn, b"", f"protocol: {exc}")
            self._nack(conn, protocol.NACK_PROTOCOL, str(exc))

    def _handle_frame(self, conn: _ClientConn, ftype: int,
                      payload: bytes) -> None:
        if ftype == protocol.HELLO:
            hello = protocol.parse_json(payload)
            conn.client_id = str(hello.get("client", "<anonymous>"))
            self._send(conn, protocol.json_frame(protocol.HELLO_OK, {
                "version": protocol.PROTOCOL_VERSION,
                "shards": len(self.supervisors),
                "row_bytes": EVENT_ROW_BYTES,
            }))
            return
        if conn.client_id is None:
            raise ServeProtocolError("first frame must be HELLO")
        if ftype == protocol.BYE:
            conn.closing = True
            self._flush(conn)
            return
        if self.draining:
            self._nack(conn, protocol.NACK_DRAINING,
                       "daemon is draining")
            return
        if ftype == protocol.EXEC_BEGIN:
            try:
                header = protocol.parse_json(payload)
            except ServeProtocolError as exc:
                self._reject_malformed(conn, payload, str(exc))
                return
            conn.pending = {
                "header": header,
                "rows": bytearray(),
            }
            conn.pending_bytes = 0
            return
        if ftype == protocol.ROWS:
            if conn.pending is None:
                raise ServeProtocolError("ROWS outside an execution")
            conn.pending_bytes += len(payload)
            if conn.pending_bytes > self.max_pending_bytes:
                self._on_incident({
                    "kind": "client-shed",
                    "client": conn.client_id,
                    "pending_bytes": conn.pending_bytes,
                })
                self._nack(conn, protocol.NACK_BACKPRESSURE,
                           "execution exceeds the pending-bytes bound")
                return
            conn.pending["rows"].extend(payload)
            return
        if ftype == protocol.EXEC_END:
            if conn.pending is None:
                raise ServeProtocolError("EXEC_END outside an execution")
            self._submit(conn)
            return
        raise ServeProtocolError(
            f"unexpected frame type {protocol.FRAME_NAMES.get(ftype, ftype)}"
        )

    def _submit(self, conn: _ClientConn) -> None:
        pending = conn.pending
        conn.pending = None
        conn.pending_bytes = 0
        header = pending["header"]
        rows = bytes(pending["rows"])
        if len(rows) % EVENT_ROW_BYTES:
            self._reject_malformed(
                conn, rows,
                f"row payload of {len(rows)} byte(s) off the "
                f"{EVENT_ROW_BYTES}-byte row grid",
            )
            return
        try:
            application = str(header["application"])
            seq = int(header["seq"])
            job = {
                "client": conn.client_id,
                "client_seq": seq,
                "application": application,
                "execution_index": int(header["execution"]),
                "initial_pids": [int(p) for p in header["initial_pids"]],
                "rows": rows,
            }
        except (KeyError, TypeError, ValueError) as exc:
            self._reject_malformed(conn, rows, f"bad header: {exc!r}")
            return
        supervisor = self.supervisors[
            shard_of(application, len(self.supervisors))
        ]
        if not supervisor.submit(job):
            self._on_incident({
                "kind": "client-shed",
                "client": conn.client_id,
                "shard": supervisor.shard_id,
                "queue_depth": supervisor.depth,
            })
            self._nack(conn, protocol.NACK_OVERLOADED,
                       f"shard {supervisor.shard_id} queue is full")
            return
        self._waiting[(conn.client_id, seq)] = conn.sock

    def _reject_malformed(self, conn: _ClientConn, payload: bytes,
                          detail: str) -> None:
        self._quarantine(conn, payload, detail)
        self._nack(conn, protocol.NACK_MALFORMED, detail)

    def _quarantine(self, conn: _ClientConn, payload: bytes,
                    detail: str) -> None:
        """Preserve a malformed frame as ``quarantine/*.corrupt``."""
        self._quarantined += 1
        client = conn.client_id or "anonymous"
        name = f"{client}-{self._quarantined}.corrupt"
        path = self.state_dir / "quarantine" / name
        try:
            path.write_bytes(payload)
        except OSError:
            pass
        self._on_incident({
            "kind": "malformed-frame",
            "client": client,
            "quarantined": name,
            "detail": detail,
        })

    # -- control socket ------------------------------------------------
    def _on_control(self, sock: socket.socket) -> None:
        try:
            conn, _ = sock.accept()
        except OSError:
            return
        with conn:
            conn.settimeout(5.0)
            try:
                line = conn.makefile("r", encoding="utf-8").readline()
                request = json.loads(line) if line.strip() else {}
            except (OSError, json.JSONDecodeError):
                return
            command = request.get("cmd", "health")
            if command == "ping":
                response = {"ok": True}
            elif command == "health":
                response = self.health()
            elif command == "tables":
                response = self.tables()
            elif command == "drain":
                self.draining = True
                response = {"ok": True, "draining": True}
            else:
                response = {"error": f"unknown command {command!r}"}
            try:
                conn.sendall((json.dumps(response) + "\n").encode("utf-8"))
            except OSError:
                pass

    def health(self) -> dict:
        """The health document (control-socket ``health`` command)."""
        merged = PredictionStats()
        shard_stats = []
        for supervisor in self.supervisors:
            entry = supervisor.health()
            collected: dict = {}

            def receive(kind: str, payload: dict,
                        into: dict = collected) -> None:
                into.update(payload)

            supervisor.request_info("stats", receive)
            if not supervisor.degraded:
                deadline = time.monotonic() + 5.0
                while not collected and time.monotonic() < deadline:
                    if supervisor.conn is not None and \
                            supervisor.conn.poll(0.05):
                        supervisor.on_readable()
            if collected:
                entry["executions"] = collected.get("executions", 0)
                entry["applications"] = collected.get("applications", [])
                counters = collected.get("counters")
                if counters:
                    entry["counters"] = counters
                    merged.merge(PredictionStats.from_dict(counters))
            shard_stats.append(entry)
        return {
            "predictor": self.predictor,
            "shards": shard_stats,
            "clients": len(self._clients),
            "decisions": self._decided,
            "draining": self.draining,
            "counters": merged.to_dict(),
            "incidents": self.incidents,
        }

    def tables(self) -> dict:
        """Canonical per-application table snapshots across shards."""
        tables: dict = {}
        for supervisor in self.supervisors:
            collected: dict = {}

            def receive(kind: str, payload: dict,
                        into: dict = collected) -> None:
                into.update(payload)

            supervisor.request_info("tables", receive)
            if not supervisor.degraded:
                deadline = time.monotonic() + 5.0
                while not collected and time.monotonic() < deadline:
                    if supervisor.conn is not None and \
                            supervisor.conn.poll(0.05):
                        supervisor.on_readable()
            tables.update(collected)
        return {"predictor": self.predictor, "applications": tables}

    # -- main loop -----------------------------------------------------
    def _install_signals(self) -> None:
        def notify(signum, frame):
            try:
                self._signal_tx.send(b"x")
            except OSError:
                pass

        for signum in (signal.SIGTERM, signal.SIGINT):
            self._old_handlers[signum] = signal.signal(signum, notify)

    def _restore_signals(self) -> None:
        for signum, handler in self._old_handlers.items():
            signal.signal(signum, handler)

    def serve_forever(self) -> None:
        """Run until a drain completes (SIGTERM/SIGINT or control cmd)."""
        self._install_signals()
        selector = self._selector
        selector.register(self._listen, selectors.EVENT_READ, ("listen",))
        selector.register(self._control, selectors.EVENT_READ, ("control",))
        selector.register(self._signal_rx, selectors.EVENT_READ, ("signal",))
        for supervisor in self.supervisors:
            self._sync_shard_registration(supervisor)
        try:
            self._loop()
        finally:
            self._restore_signals()
            self._shutdown()

    def _loop(self) -> None:
        while True:
            events = self._selector.select(timeout=0.25)
            for key, mask in events:
                tag = key.data[0]
                if tag == "listen":
                    self._accept()
                elif tag == "control":
                    self._on_control(self._control)
                elif tag == "signal":
                    try:
                        self._signal_rx.recv(16)
                    except OSError:
                        pass
                    self.draining = True
                elif tag == "shard":
                    supervisor = key.data[1]
                    supervisor.on_readable()
                    self._sync_shard_registration(supervisor)
                elif tag == "client":
                    conn = key.data[1]
                    if mask & selectors.EVENT_WRITE:
                        self._flush(conn)
                        if conn.sock in self._clients and not conn.outbox:
                            self._selector.modify(
                                conn.sock, selectors.EVENT_READ,
                                ("client", conn),
                            )
                    if mask & selectors.EVENT_READ:
                        if conn.sock in self._clients:
                            self._on_client_readable(conn)
            now = time.monotonic()
            for supervisor in self.supervisors:
                supervisor.check_stall(now)
                self._sync_shard_registration(supervisor)
            if self.draining and self._drained():
                return

    def _sync_shard_registration(self, supervisor: ShardSupervisor) -> None:
        """Make the selector match the supervisor's current pipe.

        Safe to call any time; it is run after every dispatch round so a
        restart triggered from *any* code path — shard-pipe EOF, a
        failed ``send`` during a client submit, a health pump noticing
        the death — ends with the fresh pipe registered and the dead
        one forgotten.
        """
        current: Optional[int] = None
        if not supervisor.degraded and supervisor.conn is not None:
            try:
                current = supervisor.conn.fileno()
            except OSError:
                current = None
        wanted = (None if current is None
                  else (current, supervisor.restarts))
        registered = self._shard_reg.get(supervisor.shard_id)
        if registered == wanted:
            return
        if registered is not None:
            try:
                self._selector.unregister(registered[0])
            except (KeyError, ValueError, OSError):
                pass
            del self._shard_reg[supervisor.shard_id]
        if wanted is not None:
            self._selector.register(
                supervisor.conn, selectors.EVENT_READ,
                ("shard", supervisor),
            )
            self._shard_reg[supervisor.shard_id] = wanted

    def _drained(self) -> bool:
        """True once no queued or in-flight work remains anywhere."""
        return all(s.depth == 0 for s in self.supervisors)

    def _accept(self) -> None:
        try:
            sock, _ = self._listen.accept()
        except OSError:
            return
        if self.draining:
            sock.close()
            return
        sock.setblocking(False)
        conn = _ClientConn(sock)
        self._clients[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ,
                                ("client", conn))

    def _shutdown(self) -> None:
        for sock in list(self._clients):
            self._drop_client(self._clients[sock])
        for supervisor in self.supervisors:
            supervisor.drain()
        for sock in (self._listen, self._control, self._signal_rx,
                     self._signal_tx):
            try:
                sock.close()
            except OSError:
                pass
        if self._is_unix:
            for path in (self.address, self.control_address):
                try:
                    os.unlink(path)
                except OSError:
                    pass


def _unix_listener(path: str) -> socket.socket:
    try:
        os.unlink(path)
    except OSError:
        pass
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(path)
    sock.listen(_ACCEPT_BACKLOG)
    sock.setblocking(False)
    return sock


def _tcp_listener(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(_ACCEPT_BACKLOG)
    sock.setblocking(False)
    return sock
