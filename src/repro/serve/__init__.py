"""Resilient online DPM service: daemon, supervision, crash-safe state.

The paper's predictors are meant to run *inside an OS*, making live
shutdown decisions as I/O streams arrive — this package is that online
form.  ``repro serve`` (:mod:`repro.serve.daemon`) accepts streaming
event feeds from concurrent clients over Unix/TCP sockets
(:mod:`repro.serve.protocol`), shards predictor state across supervised
worker subprocesses (:mod:`repro.serve.supervisor`,
:mod:`repro.serve.worker`), journals every processed execution before
answering (:mod:`repro.serve.state`), and survives worker SIGKILLs,
client disconnects, and daemon restarts with **bit-identical**
decisions and table contents — proven against the offline
:meth:`~repro.sim.experiment.ExperimentRunner.run_global` replay by
:mod:`repro.serve.harness` under injected faults.
"""

from repro.serve.client import ServeClient, control_request
from repro.serve.daemon import ServeDaemon
from repro.serve.harness import (
    ScenarioResult,
    run_scenario,
    verify_equivalence,
)
from repro.serve.state import ShardJournal
from repro.serve.supervisor import ShardSupervisor
from repro.serve.worker import ShardWorker, shard_of, table_snapshot

__all__ = [
    "ScenarioResult",
    "ServeClient",
    "ServeDaemon",
    "ShardJournal",
    "ShardSupervisor",
    "ShardWorker",
    "control_request",
    "run_scenario",
    "shard_of",
    "table_snapshot",
    "verify_equivalence",
]
