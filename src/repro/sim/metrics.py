"""Prediction accuracy statistics (Figures 6, 7, 9, 10).

Terminology (paper §6.1):

* **opportunity** — an idle period long enough that a shutdown can save
  energy (longer than the breakeven time); the idle periods of Table 1;
* **hit** — a shutdown whose device-off window beat the breakeven time,
  i.e. it actually saved energy;
* **miss** — a shutdown that lost energy: either issued in a period
  shorter than breakeven (subpath aliasing, aggressive dynamic
  predictors) or issued so late in a period that too little off-time
  remained (a timeout firing 10 s into a 12 s period);
* **not predicted** — an opportunity during which no shutdown was issued
  (missed savings).

Fractions are normalized to the opportunity count, exactly like the
paper's figures — hit + not-predicted ≤ 100 % with misses stacked on top
(bars reach up to ~140 %).  Hits and misses are attributed to the
*primary* or *backup* mechanism that made the decision (Figures 9/10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.predictors.base import PredictorSource
from repro.units import EPSILON


@dataclass(slots=True)
class PredictionStats:
    """Counters of one evaluation run (mergeable across processes/runs)."""

    gaps: int = 0
    opportunities: int = 0
    hits_primary: int = 0
    hits_backup: int = 0
    misses_primary: int = 0
    misses_backup: int = 0
    #: Misses that occurred inside opportunity periods (late shutdowns).
    unsaved_in_opportunity: int = 0
    #: Total idle (gap) seconds observed, for reporting.
    idle_seconds: float = 0.0

    def record_gap(
        self,
        length: float,
        shutdown_offset: Optional[float],
        source: Optional[PredictorSource],
        breakeven: float,
    ) -> None:
        """Account one finished gap.

        ``shutdown_offset`` is the offset from the gap start at which a
        shutdown was issued (``None`` if none was).
        """
        if length < 0:
            raise SimulationError("negative gap length")
        self.gaps += 1
        self.idle_seconds += length
        opportunity = length > breakeven
        if opportunity:
            self.opportunities += 1
        if shutdown_offset is None:
            return
        if source is None:
            raise SimulationError("shutdown recorded without a source")
        # The engine resolves offsets with EPSILON tolerance; a legitimate
        # boundary shutdown may land within float noise of the gap end.
        if shutdown_offset > length + EPSILON:
            raise SimulationError("shutdown after the gap ended")
        off_window = length - shutdown_offset
        if off_window > breakeven + EPSILON:
            if source == PredictorSource.PRIMARY:
                self.hits_primary += 1
            else:
                self.hits_backup += 1
        else:
            if source == PredictorSource.PRIMARY:
                self.misses_primary += 1
            else:
                self.misses_backup += 1
            if opportunity:
                self.unsaved_in_opportunity += 1

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Correct shutdowns (primary + backup predictions)."""
        return self.hits_primary + self.hits_backup

    @property
    def misses(self) -> int:
        """Mispredicted shutdowns (primary + backup predictions)."""
        return self.misses_primary + self.misses_backup

    @property
    def shutdowns(self) -> int:
        """Every shutdown taken, correct or not."""
        return self.hits + self.misses

    @property
    def not_predicted(self) -> int:
        """Saveable idle periods the predictor left on the table."""
        return self.opportunities - self.hits - self.unsaved_in_opportunity

    def _fraction(self, count: int) -> float:
        return count / self.opportunities if self.opportunities else 0.0

    @property
    def hit_fraction(self) -> float:
        """Coverage: correctly predicted shutdowns / opportunities."""
        return self._fraction(self.hits)

    @property
    def miss_fraction(self) -> float:
        """Mispredicted shutdowns normalized to opportunities (paper
        normalization — can exceed the 100 % line)."""
        return self._fraction(self.misses)

    @property
    def not_predicted_fraction(self) -> float:
        """Missed-opportunity share of all opportunities."""
        return self._fraction(self.not_predicted)

    @property
    def hit_primary_fraction(self) -> float:
        """Primary-prediction hit share of all opportunities."""
        return self._fraction(self.hits_primary)

    @property
    def hit_backup_fraction(self) -> float:
        """Backup-prediction hit share of all opportunities."""
        return self._fraction(self.hits_backup)

    @property
    def miss_primary_fraction(self) -> float:
        """Primary-prediction miss share of all opportunities."""
        return self._fraction(self.misses_primary)

    @property
    def miss_backup_fraction(self) -> float:
        """Backup-prediction miss share of all opportunities."""
        return self._fraction(self.misses_backup)

    # ------------------------------------------------------------------
    # Serialization (health endpoints, decision payloads)
    # ------------------------------------------------------------------
    _FIELDS = (
        "gaps", "opportunities", "hits_primary", "hits_backup",
        "misses_primary", "misses_backup", "unsaved_in_opportunity",
        "idle_seconds",
    )

    def to_dict(self) -> dict:
        """The raw counters as a JSON-safe mapping.

        ``idle_seconds`` survives a JSON round trip bit-identically
        (repr-based float serialization is exact), so two stats objects
        compare equal after ``from_dict(json.loads(json.dumps(...)))``.
        """
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "PredictionStats":
        """Rebuild counters serialized by :meth:`to_dict`."""
        try:
            return cls(**{
                name: (float(payload[name]) if name == "idle_seconds"
                       else int(payload[name]))
                for name in cls._FIELDS
            })
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(
                f"malformed stats payload {payload!r}"
            ) from exc

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "PredictionStats") -> None:
        """Fold ``other``'s counters into this instance (in place)."""
        self.gaps += other.gaps
        self.opportunities += other.opportunities
        self.hits_primary += other.hits_primary
        self.hits_backup += other.hits_backup
        self.misses_primary += other.misses_primary
        self.misses_backup += other.misses_backup
        self.unsaved_in_opportunity += other.unsaved_in_opportunity
        self.idle_seconds += other.idle_seconds

    @staticmethod
    def merged(parts: list["PredictionStats"]) -> "PredictionStats":
        """The element-wise sum of many stats objects."""
        total = PredictionStats()
        for part in parts:
            total.merge(part)
        return total
