"""Resilient experiment execution: retries, timeouts, checkpoint/resume.

:func:`repro.sim.parallel.execute_cells` is the fast path: it assumes
every cell succeeds and lets any failure abort the whole run.  This
module is the production counterpart for long suites and sweeps, where
one crashed or hung worker must not cost hours of completed work:

* **Per-cell retries** with capped exponential backoff.  The backoff
  jitter is drawn from a generator seeded by ``(seed, cell index,
  attempt)``, so retry timing is deterministic for a given policy.
* **Per-cell wall-clock timeouts.**  In pool mode every attempt runs in
  its own forked worker process; a hung worker is killed
  (``SIGKILL``-hard) and the attempt is retried.  In-process execution
  honours the same timeout by running the attempt on a daemon thread
  and abandoning it on expiry.
* **Graceful degradation.**  Repeated pool incidents (worker crashes,
  spawn failures) flip the executor into in-process execution for the
  remaining cells instead of hammering a broken pool.
* **Terminal failure records.**  A cell that exhausts its attempts
  becomes a :class:`CellFailure` carrying every attempt's kind, message
  and traceback — the suite completes with a partial result set and a
  ledger instead of crashing.
* **Checkpoint/resume.**  Completed cells are journalled to an
  append-only JSONL file (:class:`CellCheckpoint`), flushed and fsynced
  per record, keyed by the same content-hash scheme the artifact cache
  uses (:func:`cell_key`).  Re-running with the same checkpoint skips
  completed cells, so a killed multi-hour sweep resumes where it died.

On the success path the executor runs exactly the same cell closures as
:func:`~repro.sim.parallel.execute_cells` and folds results in cell
order, so results are bit-identical to a plain (serial or pooled) run —
asserted by the equivalence tests.

Fault injection (:mod:`repro.faults`) is re-exported here so chaos
scenarios and the ``repro faults`` CLI have a single import surface.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import pickle
import random
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro import faults
from repro.errors import CellTimeoutError, CheckpointError, ExecutionError
from repro.faults import (  # noqa: F401  (re-exported public surface)
    FAULT_PLAN_ENV_VAR,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)
from repro.sim.experiment import ApplicationResult
from repro.sim.parallel import (
    CellProgress,
    CellResult,
    ExperimentCell,
    ProgressHook,
    fork_available,
    resolve_jobs,
)

#: Canned chaos scenario used by ``repro faults`` and the CI chaos-smoke
#: job: one worker crash that exhausts every retry (a terminal cell
#: failure), one hung cell recovered by the timeout+retry path, one
#: corrupted artifact-cache entry recovered by quarantine+recompute, and
#: one malformed trace line surfacing a parse error.
CANNED_CHAOS_PLAN = (
    "worker.crash,cell=3,attempts=99;"
    "worker.hang,cell=7,seconds=15;"
    "cache.corrupt-read,at=1;"
    "trace.malformed-line,at=5"
)

#: Checkpoint schema version (see :class:`CellCheckpoint`).
CHECKPOINT_FORMAT = 1

#: Pickle protocol for checkpointed results (matches the artifact cache).
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True, slots=True)
class ResiliencePolicy:
    """Retry/timeout/degradation knobs of one resilient run.

    ``max_attempts`` bounds attempts per cell (1 = no retries);
    ``cell_timeout`` is the per-attempt wall-clock limit in seconds
    (``None`` = unlimited); backoff before attempt *n* is
    ``min(max_delay, base_delay * 2**(n-2))`` stretched by a
    deterministic jitter fraction drawn from ``seed``.  After
    ``degrade_after`` pool incidents (worker crashes or spawn failures)
    the executor stops using worker processes and finishes the remaining
    cells in-process.
    """

    max_attempts: int = 3
    cell_timeout: Optional[float] = None
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    degrade_after: int = 5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be at least 1")

    def backoff(self, cell_index: int, attempt: int) -> float:
        """Delay before running ``attempt`` (>= 2) of one cell.

        Deterministic: the jitter multiplier depends only on
        ``(seed, cell_index, attempt)``.
        """
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 2)))
        if self.jitter <= 0 or base <= 0:
            return base
        unit = random.Random(
            f"{self.seed}:{cell_index}:{attempt}"
        ).random()
        return base * (1.0 + self.jitter * unit)


@dataclass(frozen=True, slots=True)
class RetryEvent:
    """One failed attempt of one cell (retried or terminal)."""

    cell: ExperimentCell
    attempt: int
    #: ``"crash"`` (worker died / could not spawn), ``"timeout"``, or
    #: ``"error"`` (the cell raised).
    kind: str
    message: str
    traceback: str = ""
    wall_time: float = 0.0


@dataclass(frozen=True, slots=True)
class CellFailure:
    """Terminal record of a cell that exhausted its attempts."""

    cell: ExperimentCell
    attempts: tuple[RetryEvent, ...]

    @property
    def last(self) -> RetryEvent:
        """The terminal (last) failed attempt."""
        return self.attempts[-1]


#: One executed cell's terminal outcome.
CellOutcome = Union[CellResult, CellFailure]


@dataclass(slots=True)
class RunLedger:
    """Everything a resilient run produced, in cell order."""

    outcomes: list[CellOutcome]
    retries: list[RetryEvent] = field(default_factory=list)
    degraded: bool = False
    resumed: int = 0

    @property
    def results(self) -> list[CellResult]:
        """The successful cell outcomes, in cell order."""
        return [o for o in self.outcomes if isinstance(o, CellResult)]

    @property
    def failures(self) -> list[CellFailure]:
        """The terminally failed cell outcomes, in cell order."""
        return [o for o in self.outcomes if isinstance(o, CellFailure)]

    def render(self) -> str:
        """The human-readable failure/retry ledger."""
        failures = self.failures
        ok = len(self.outcomes) - len(failures)
        lines = [
            f"resilience ledger: {len(self.outcomes)} cells — {ok} ok "
            f"({self.resumed} resumed from checkpoint), "
            f"{len(failures)} failed, {len(self.retries)} failed "
            f"attempt(s), degraded={'yes' if self.degraded else 'no'}"
        ]
        terminal = {id(event) for f in failures for event in f.attempts}
        for failure in failures:
            cell = failure.cell
            lines.append(
                f"  cell {cell.index} {cell.application} × "
                f"{cell.predictor}: FAILED after "
                f"{len(failure.attempts)} attempt(s)"
            )
            for event in failure.attempts:
                lines.append(
                    f"    attempt {event.attempt}: {event.kind} — "
                    f"{event.message}"
                )
        recovered: dict[int, list[RetryEvent]] = {}
        for event in self.retries:
            if id(event) not in terminal:
                recovered.setdefault(event.cell.index, []).append(event)
        for index in sorted(recovered):
            events = recovered[index]
            cell = events[0].cell
            lines.append(
                f"  cell {cell.index} {cell.application} × "
                f"{cell.predictor}: recovered after "
                f"{len(events)} failed attempt(s) "
                f"({'; '.join(f'{e.kind}: {e.message}' for e in events)})"
            )
        return "\n".join(lines)


@dataclass(slots=True)
class MatrixReport:
    """A resilient matrix run: successful cells plus the ledger."""

    matrix: dict[str, dict[str, ApplicationResult]]
    ledger: RunLedger

    @property
    def complete(self) -> bool:
        """True when every cell produced a result."""
        return not self.ledger.failures


@dataclass(slots=True)
class SuiteReport:
    """A resilient single-predictor suite run."""

    results: dict[str, ApplicationResult]
    ledger: RunLedger

    @property
    def complete(self) -> bool:
        """True when every cell produced a result."""
        return not self.ledger.failures


# ---------------------------------------------------------------------------
# Checkpoint journal.
# ---------------------------------------------------------------------------


def cell_key(
    fingerprint: str,
    predictor_label: str,
    config: object,
    *,
    mode: str = "global",
    multistate: bool = False,
) -> str:
    """Content-hash key of one cell for checkpoint journalling.

    Built from the same primitives as the artifact cache: the trace
    content fingerprint of the cell's application, the predictor label
    (sweeps embed the swept value in it), and the full simulation
    configuration — any input change orphans the checkpoint entry
    instead of serving a stale result.
    """
    from repro.sim.artifact_cache import SCHEMA_VERSION, _digest

    return _digest(
        "cell", SCHEMA_VERSION, fingerprint, predictor_label, mode,
        bool(multistate), repr(config),
    )


class CellCheckpoint:
    """Append-only JSONL journal of completed cells.

    One line per completed cell: a JSON record carrying the cell key,
    display metadata, and the pickled
    :class:`~repro.sim.experiment.ApplicationResult` (base64).  Records
    are flushed and fsynced as they are written, so a killed run loses
    at most the cell in flight; a torn final line (the only corruption
    an append-only file can suffer) is skipped on load and overwritten
    by the resumed run's appends.

    A journal optionally opens with one ``type: "provenance"`` record
    describing the run shape that wrote it (fused flag, variant-set
    fingerprint, execution mode).  :meth:`declare_provenance` compares a
    resuming run's shape against that header and refuses a mismatched
    resume with :class:`~repro.errors.CheckpointError` — a journal of
    fused outcomes must never be replayed into a classic run (or vice
    versa), even if cell keys were ever to collide.  Journals written
    before this record existed carry no header and resume as before.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike[str]],
        *,
        resume: bool = True,
        provenance: Optional[dict] = None,
    ) -> None:
        self.path = Path(path)
        self._completed: dict[str, tuple[Any, float]] = {}
        self._stream = None
        #: Undecodable lines ignored while loading (torn tail, garbage).
        self.skipped_lines = 0
        #: Run-shape header found on load (``None`` for legacy journals).
        self.provenance: Optional[dict] = None
        self._header_pending = False
        if resume and self.path.exists():
            self._load()
        #: Entries found on load (before any new records).
        self.loaded = len(self._completed)
        if provenance is not None:
            self.declare_provenance(provenance)

    def _load(self) -> None:
        raw = self.path.read_bytes()
        offset = 0
        valid_end = 0
        for chunk in raw.split(b"\n"):
            end = min(len(raw), offset + len(chunk) + 1)  # +1: the \n
            line = chunk.decode("utf-8", errors="replace").strip()
            offset = end
            if not line:
                valid_end = end
                continue
            try:
                record = json.loads(line)
                if record.get("type") == "provenance":
                    header = record.get("provenance")
                    if isinstance(header, dict):
                        self.provenance = header
                    valid_end = end
                    continue
                if record.get("type") != "cell":
                    valid_end = end
                    continue
                key = str(record["key"])
                result = pickle.loads(
                    base64.b64decode(record["result"])
                )
                wall = float(record.get("wall_time", 0.0))
            except Exception:
                self.skipped_lines += 1
                continue
            self._completed[key] = (result, wall)
            valid_end = end
        if valid_end < len(raw):
            # The journal ends in a torn partial record (the only
            # corruption an append-only fsynced file can suffer).  Cut
            # the file back to the last intact line *before* resuming:
            # appending after the tear would concatenate the next record
            # onto the partial line and silently lose a completed cell.
            self._truncate_torn_tail(valid_end, len(raw))
        elif raw and not raw.endswith(b"\n"):
            # Intact final record missing only its newline: terminate it
            # so the resumed run's appends start on a fresh line.
            with open(self.path, "ab") as stream:
                stream.write(b"\n")

    def _truncate_torn_tail(self, valid_end: int, size: int) -> None:
        import warnings

        try:
            with open(self.path, "r+b") as stream:
                stream.truncate(valid_end)
        except OSError as exc:
            warnings.warn(
                f"checkpoint {self.path} has a torn final line that "
                f"could not be truncated ({exc}); appended records may "
                "be corrupted",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        warnings.warn(
            f"checkpoint {self.path} ended in a torn partial record "
            f"({size - valid_end} byte(s) discarded, crash mid-write?); "
            "resuming from the last intact line",
            RuntimeWarning,
            stacklevel=3,
        )

    def declare_provenance(self, provenance: dict) -> None:
        """Declare the resuming run's shape; refuse a mismatched journal.

        Only the keys present in *both* the declared and the journalled
        provenance are compared, so a classic per-cell run (which leaves
        ``variant_set`` unset — its cell keys embed the predictor label
        directly) never conflicts with another classic run over a
        different predictor list.  Worker count is deliberately not
        validated: results are bit-identical at any ``--jobs``, so a
        journal may be resumed with a different pool size.
        """
        declared = {str(k): v for k, v in provenance.items()}
        if self.provenance is not None:
            mismatched = {
                key: (self.provenance[key], declared[key])
                for key in sorted(set(declared) & set(self.provenance))
                if self.provenance[key] != declared[key]
            }
            if mismatched:
                detail = "; ".join(
                    f"{key}: checkpoint has {old!r}, this run has {new!r}"
                    for key, (old, new) in mismatched.items()
                )
                raise CheckpointError(
                    f"checkpoint {self.path} was written by an "
                    f"incompatible run ({detail}); resume with a "
                    "matching configuration or start a fresh checkpoint "
                    "file"
                )
            # Same shape: keep the journal's header, nothing to rewrite.
            return
        self.provenance = declared
        self._header_pending = True

    def __len__(self) -> int:
        return len(self._completed)

    def get(self, key: str) -> Optional[tuple[Any, float]]:
        """``(result, wall_time)`` of a completed cell, or ``None``."""
        return self._completed.get(key)

    def record(
        self,
        key: str,
        cell: ExperimentCell,
        result: Any,
        wall_time: float,
    ) -> None:
        """Journal one completed cell (atomic append + flush + fsync)."""
        if self._header_pending:
            self._header_pending = False
            self._append({
                "type": "provenance",
                "format": CHECKPOINT_FORMAT,
                "provenance": self.provenance,
            })
        record = {
            "type": "cell",
            "format": CHECKPOINT_FORMAT,
            "key": key,
            "index": cell.index,
            "application": cell.application,
            "predictor": cell.predictor,
            "wall_time": wall_time,
            "result": base64.b64encode(
                pickle.dumps(result, _PICKLE_PROTOCOL)
            ).decode("ascii"),
        }
        self._append(record)
        self._completed[key] = (result, wall_time)

    def _append(self, record: dict) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
        self._stream.write(json.dumps(record) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        """Close the journal stream (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "CellCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The executor.
# ---------------------------------------------------------------------------

#: Cell runner inherited by forked attempt processes (see _child_main).
_CHILD_RUN_CELL: Optional[
    Callable[[ExperimentCell], ApplicationResult]
] = None


class _Pending:
    """Mutable per-cell execution state (position, attempt, history)."""

    __slots__ = ("position", "cell", "attempt", "eligible_at", "events")

    def __init__(self, position: int, cell: ExperimentCell) -> None:
        self.position = position
        self.cell = cell
        self.attempt = 1
        self.eligible_at = 0.0
        self.events: list[RetryEvent] = []


class _Running:
    """One in-flight worker process."""

    __slots__ = ("process", "item", "started", "deadline")

    def __init__(self, process, item: _Pending, started: float,
                 deadline: Optional[float]) -> None:
        self.process = process
        self.item = item
        self.started = started
        self.deadline = deadline


def _child_main(conn, cell: ExperimentCell, attempt: int) -> None:
    """Run one cell attempt in a forked worker and report over the pipe."""
    faults.mark_worker_process()
    try:
        start = time.perf_counter()
        faults.worker_gate(cell.index, cell.application, attempt)
        assert _CHILD_RUN_CELL is not None, "worker forked without a runner"
        result = _CHILD_RUN_CELL(cell)
        payload = ("ok", result, time.perf_counter() - start)
    except BaseException as exc:
        payload = (
            "err", type(exc).__name__, str(exc), traceback.format_exc()
        )
    try:
        conn.send(payload)
    except Exception:
        try:
            conn.send((
                "err", "SerializationError",
                "cell result could not be pickled", "",
            ))
        except Exception:
            pass
    finally:
        conn.close()


class _Executor:
    """State shared by the pool and in-process execution paths."""

    def __init__(
        self,
        cells: Sequence[ExperimentCell],
        run_cell: Callable[[ExperimentCell], ApplicationResult],
        policy: ResiliencePolicy,
        progress: Optional[ProgressHook],
        checkpoint: Optional[CellCheckpoint],
        keys: Optional[Sequence[str]],
    ) -> None:
        self.cells = cells
        self.run_cell = run_cell
        self.policy = policy
        self.progress = progress
        self.checkpoint = checkpoint
        self.keys = keys
        self.total = len(cells)
        self.outcomes: list[Optional[CellOutcome]] = [None] * self.total
        self.retries: list[RetryEvent] = []
        self.completed = 0
        self.resumed = 0
        self.degraded = False
        self.incidents = 0

    # -- shared bookkeeping -------------------------------------------------

    def _emit(self, cell: ExperimentCell, wall: float, *, attempt: int,
              outcome: str) -> None:
        if self.progress is not None:
            self.progress(CellProgress(
                cell, wall, self.completed, self.total,
                attempt=attempt, outcome=outcome, degraded=self.degraded,
            ))

    def resume_from_checkpoint(self) -> list[_Pending]:
        """Terminal outcomes for checkpointed cells; the rest as pending."""
        pending: list[_Pending] = []
        for position, cell in enumerate(self.cells):
            if self.checkpoint is not None and self.keys is not None:
                entry = self.checkpoint.get(self.keys[position])
                if entry is not None:
                    result, wall = entry
                    self.outcomes[position] = CellResult(
                        cell=cell, result=result, wall_time=wall
                    )
                    self.resumed += 1
                    self.completed += 1
                    self._emit(cell, wall, attempt=0, outcome="resumed")
                    continue
            pending.append(_Pending(position, cell))
        return pending

    def success(self, item: _Pending, result: ApplicationResult,
                wall: float) -> None:
        self.outcomes[item.position] = CellResult(
            cell=item.cell, result=result, wall_time=wall
        )
        if self.checkpoint is not None and self.keys is not None:
            self.checkpoint.record(
                self.keys[item.position], item.cell, result, wall
            )
        self.completed += 1
        self._emit(item.cell, wall, attempt=item.attempt, outcome="ok")

    def failure(self, item: _Pending, kind: str, message: str,
                tb: str, wall: float) -> bool:
        """Record a failed attempt; ``True`` if the cell is terminal."""
        event = RetryEvent(
            cell=item.cell, attempt=item.attempt, kind=kind,
            message=message, traceback=tb, wall_time=wall,
        )
        item.events.append(event)
        self.retries.append(event)
        if item.attempt >= self.policy.max_attempts:
            self.outcomes[item.position] = CellFailure(
                cell=item.cell, attempts=tuple(item.events)
            )
            self.completed += 1
            self._emit(item.cell, wall, attempt=item.attempt,
                       outcome="failed")
            return True
        self._emit(item.cell, wall, attempt=item.attempt, outcome="retry")
        item.attempt += 1
        item.eligible_at = (
            time.monotonic()
            + self.policy.backoff(item.cell.index, item.attempt)
        )
        return False

    def ledger(self) -> RunLedger:
        assert all(outcome is not None for outcome in self.outcomes)
        return RunLedger(
            outcomes=list(self.outcomes),  # type: ignore[arg-type]
            retries=self.retries,
            degraded=self.degraded,
            resumed=self.resumed,
        )

    # -- in-process path ----------------------------------------------------

    def _attempt_in_process(self, item: _Pending) -> ApplicationResult:
        """One attempt in this process, honouring the cell timeout.

        With a timeout the attempt runs on a daemon thread that is
        abandoned on expiry — the only portable way to bound an
        in-process call; the abandoned thread finishes (or sleeps out
        its injected hang) in the background.
        """
        def invoke() -> ApplicationResult:
            faults.worker_gate(
                item.cell.index, item.cell.application, item.attempt
            )
            return self.run_cell(item.cell)

        timeout = self.policy.cell_timeout
        if timeout is None:
            return invoke()
        box: dict[str, Any] = {}

        def target() -> None:
            try:
                box["value"] = invoke()
            except BaseException as exc:  # delivered to the caller below
                box["error"] = exc

        thread = threading.Thread(
            target=target, daemon=True,
            name=f"repro-cell-{item.cell.index}-attempt-{item.attempt}",
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            raise CellTimeoutError(
                f"cell {item.cell.index} ({item.cell.application} × "
                f"{item.cell.predictor}) exceeded the {timeout:g} s "
                "wall-clock timeout (in-process attempt abandoned)"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def run_in_process(self, pending: list[_Pending]) -> None:
        """Execute pending cells in this process, in position order."""
        for item in sorted(pending, key=lambda entry: entry.position):
            while True:
                delay = item.eligible_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                start = time.perf_counter()
                try:
                    result = self._attempt_in_process(item)
                except Exception as exc:
                    wall = time.perf_counter() - start
                    kind = (
                        "timeout" if isinstance(exc, CellTimeoutError)
                        else "error"
                    )
                    message = f"{type(exc).__name__}: {exc}"
                    if self.failure(item, kind, message,
                                    traceback.format_exc(), wall):
                        break
                else:
                    self.success(item, result, time.perf_counter() - start)
                    break

    # -- pool path ----------------------------------------------------------

    def _requeue(self, queue: list[_Pending], item: _Pending,
                 terminal: bool) -> None:
        if not terminal:
            queue.append(item)

    def _spawn(
        self, context, item: _Pending, queue: list[_Pending]
    ) -> Optional[tuple[Any, _Running]]:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_main,
            args=(child_conn, item.cell, item.attempt),
            daemon=True,
        )
        try:
            process.start()
        except OSError as exc:
            parent_conn.close()
            child_conn.close()
            self.incidents += 1
            terminal = self.failure(
                item, "crash", f"could not spawn worker: {exc}", "", 0.0
            )
            self._requeue(queue, item, terminal)
            return None
        child_conn.close()
        now = time.monotonic()
        deadline = (
            now + self.policy.cell_timeout
            if self.policy.cell_timeout is not None else None
        )
        slot = _Running(process, item, now, deadline)
        return parent_conn, slot

    def _reap(self, conn, slot: _Running, queue: list[_Pending]) -> None:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            payload = None
        conn.close()
        slot.process.join()
        wall = time.monotonic() - slot.started
        if payload is not None and payload[0] == "ok":
            _, result, child_wall = payload
            self.success(slot.item, result, child_wall)
            return
        if payload is None:
            self.incidents += 1
            code = slot.process.exitcode
            terminal = self.failure(
                slot.item, "crash",
                f"worker process died without a result (exit code {code})",
                "", wall,
            )
        else:
            _, error_type, message, tb = payload
            terminal = self.failure(
                slot.item, "error", f"{error_type}: {message}", tb, wall
            )
        self._requeue(queue, slot.item, terminal)

    def _kill(self, conn, slot: _Running, queue: list[_Pending]) -> None:
        slot.process.kill()
        slot.process.join()
        conn.close()
        wall = time.monotonic() - slot.started
        terminal = self.failure(
            slot.item, "timeout",
            f"cell exceeded the {self.policy.cell_timeout:g} s wall-clock "
            "timeout (worker killed)",
            "", wall,
        )
        self._requeue(queue, slot.item, terminal)

    def run_pool(self, pending: list[_Pending], workers: int) -> None:
        """Execute pending cells on per-attempt forked workers.

        At most ``workers`` processes are in flight; each runs exactly
        one cell attempt, so a hung or crashed attempt is killed and
        retried without poisoning the other workers.  Once
        ``policy.degrade_after`` pool incidents accumulate, in-flight
        workers are drained and the remaining cells run in-process.
        """
        global _CHILD_RUN_CELL
        context = multiprocessing.get_context("fork")
        queue: list[_Pending] = list(pending)
        running: dict[Any, _Running] = {}
        _CHILD_RUN_CELL = self.run_cell
        try:
            while queue or running:
                now = time.monotonic()
                if not self.degraded and (
                    self.incidents >= self.policy.degrade_after
                ):
                    self.degraded = True
                # Fill free worker slots with eligible cells (smallest
                # position first, for reproducible submission order).
                while not self.degraded and len(running) < workers:
                    eligible = [
                        item for item in queue if item.eligible_at <= now
                    ]
                    if not eligible:
                        break
                    item = min(eligible, key=lambda entry: entry.position)
                    queue.remove(item)
                    spawned = self._spawn(context, item, queue)
                    if spawned is None:
                        continue
                    conn, slot = spawned
                    running[conn] = slot
                if not running:
                    if self.degraded:
                        break
                    if queue:
                        # Everything pending is backing off; sleep to
                        # the earliest eligibility and retry the fill.
                        wake = min(item.eligible_at for item in queue)
                        time.sleep(max(0.0, wake - time.monotonic()))
                        continue
                    break
                # Wait for a result, the next deadline, or the next
                # backoff expiry — whichever comes first.
                waits = [
                    slot.deadline - now
                    for slot in running.values()
                    if slot.deadline is not None
                ]
                if queue and not self.degraded and len(running) < workers:
                    waits.extend(
                        item.eligible_at - now for item in queue
                    )
                timeout = max(0.01, min(waits)) if waits else None
                ready = mp_connection.wait(list(running), timeout)
                for conn in ready:
                    slot = running.pop(conn)
                    self._reap(conn, slot, queue)
                now = time.monotonic()
                for conn, slot in list(running.items()):
                    if slot.deadline is not None and now >= slot.deadline:
                        if conn.poll():
                            continue  # result arrived at the wire
                        running.pop(conn)
                        self._kill(conn, slot, queue)
        finally:
            _CHILD_RUN_CELL = None
            for conn, slot in running.items():
                slot.process.kill()
                slot.process.join()
                conn.close()
        if queue:
            # Degraded: finish the remaining cells in-process.
            self.run_in_process(queue)


def run_cells(
    cells: Iterable[ExperimentCell],
    run_cell: Callable[[ExperimentCell], ApplicationResult],
    *,
    jobs: Optional[int] = None,
    policy: Optional[ResiliencePolicy] = None,
    progress: Optional[ProgressHook] = None,
    checkpoint: Optional[
        Union[CellCheckpoint, str, os.PathLike[str]]
    ] = None,
    cell_keys: Optional[Sequence[str]] = None,
    provenance: Optional[dict] = None,
) -> RunLedger:
    """Execute every cell resiliently; outcomes come back in cell order.

    The resilient counterpart of
    :func:`repro.sim.parallel.execute_cells`: same cells, same runner
    closure, same deterministic fold order, but failures are retried
    under ``policy`` and terminal failures become :class:`CellFailure`
    entries instead of aborting the run.  ``checkpoint`` (a
    :class:`CellCheckpoint` or a path) with ``cell_keys`` enables
    journalling and resume; ``provenance`` describes the run shape
    (fused flag, variant-set fingerprint, mode) and makes a resume from
    a journal written by an incompatible run fail with
    :class:`~repro.errors.CheckpointError` instead of silently mixing
    result shapes.
    """
    cell_list = list(cells)
    policy = policy or ResiliencePolicy()
    keys = list(cell_keys) if cell_keys is not None else None
    if keys is not None and len(keys) != len(cell_list):
        raise ValueError(
            f"cell_keys length {len(keys)} != cells length {len(cell_list)}"
        )
    owns_checkpoint = False
    if checkpoint is not None and not isinstance(checkpoint, CellCheckpoint):
        checkpoint = CellCheckpoint(checkpoint)
        owns_checkpoint = True
    if checkpoint is not None and keys is None:
        raise ValueError("checkpointing needs cell_keys")
    if checkpoint is not None and provenance is not None:
        try:
            checkpoint.declare_provenance(provenance)
        except CheckpointError:
            if owns_checkpoint:
                checkpoint.close()
            raise
    executor = _Executor(
        cell_list, run_cell, policy, progress, checkpoint, keys
    )
    try:
        pending = executor.resume_from_checkpoint()
        if pending:
            workers = min(resolve_jobs(jobs), len(pending))
            if workers > 1 and fork_available():
                executor.run_pool(pending, workers)
            else:
                executor.run_in_process(pending)
        return executor.ledger()
    finally:
        if owns_checkpoint:
            checkpoint.close()  # type: ignore[union-attr]


def raise_on_failures(ledger: RunLedger, what: str) -> None:
    """Raise :class:`~repro.errors.ExecutionError` if any cell failed."""
    if ledger.failures:
        raise ExecutionError(
            f"{what} completed with {len(ledger.failures)} failed "
            f"cell(s):\n{ledger.render()}"
        )
