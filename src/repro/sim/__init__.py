"""Trace-driven simulation: configuration, engine, metrics, experiments."""

from repro.sim.artifact_cache import (
    ArtifactCache,
    resolve_cache,
    trace_fingerprint,
)
from repro.sim.columnar import ColumnarAccesses
from repro.sim.config import SimulationConfig, paper_config
from repro.sim.engine import (
    ExecutionRunResult,
    evaluate_local_stream,
    run_global_execution,
)
from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.sim.idle_periods import count_opportunities, stream_gaps
from repro.sim.metrics import PredictionStats
from repro.sim.parallel import (
    CellProgress,
    CellResult,
    ExperimentCell,
    ParallelExperimentRunner,
    execute_cells,
    resolve_jobs,
    stderr_progress,
)
from repro.sim.sweep import SweepPoint, render_sweep, sweep
from repro.sim.tracing import (
    SimTraceEvent,
    TraceRecorder,
    read_jsonl,
    summarize,
    write_jsonl,
)

__all__ = [
    "ApplicationResult",
    "ArtifactCache",
    "ColumnarAccesses",
    "resolve_cache",
    "trace_fingerprint",
    "SimTraceEvent",
    "TraceRecorder",
    "read_jsonl",
    "summarize",
    "write_jsonl",
    "CellProgress",
    "CellResult",
    "ExecutionRunResult",
    "ExperimentCell",
    "ExperimentRunner",
    "ParallelExperimentRunner",
    "PredictionStats",
    "SweepPoint",
    "SimulationConfig",
    "count_opportunities",
    "evaluate_local_stream",
    "execute_cells",
    "paper_config",
    "render_sweep",
    "resolve_jobs",
    "stderr_progress",
    "sweep",
    "run_global_execution",
    "stream_gaps",
]
