"""Trace-driven simulation: configuration, engine, metrics, experiments."""

from repro.sim.config import SimulationConfig, paper_config
from repro.sim.engine import (
    ExecutionRunResult,
    evaluate_local_stream,
    run_global_execution,
)
from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.sim.idle_periods import count_opportunities, stream_gaps
from repro.sim.metrics import PredictionStats
from repro.sim.sweep import SweepPoint, render_sweep, sweep

__all__ = [
    "ApplicationResult",
    "ExecutionRunResult",
    "ExperimentRunner",
    "PredictionStats",
    "SweepPoint",
    "SimulationConfig",
    "count_opportunities",
    "evaluate_local_stream",
    "paper_config",
    "render_sweep",
    "sweep",
    "run_global_execution",
    "stream_gaps",
]
