"""Parallel experiment execution (cells over a process pool).

Every experiment this repository runs — figure matrices, suite runs,
parameter sweeps — decomposes into independent *cells*: one
(application × predictor × configuration) simulation whose result is a
picklable :class:`~repro.sim.experiment.ApplicationResult`.  This module
owns that decomposition:

* :class:`ExperimentCell` — a stable-indexed description of one cell;
* :func:`execute_cells` — run cells serially or on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, returning results in
  cell order so downstream reductions are **bit-identical** regardless of
  worker count or completion order;
* :class:`ParallelExperimentRunner` — an
  :class:`~repro.sim.experiment.ExperimentRunner` whose suite-level
  entry points (:meth:`run_suite`, :meth:`run_matrix`) fan cells out
  across ``jobs`` workers;
* :class:`CellProgress` — a per-cell timing/progress event for observing
  long sweeps.

Worker strategy: the pool uses the ``fork`` start method and passes only
the (tiny, picklable) cells through the pipe.  The cell *runner* — a
closure over the suite, the per-point configurations, and any
user-supplied spec factories, none of which need to be picklable — is
installed in a module global before the pool starts and reaches the
workers by fork inheritance.  The parent pre-warms the memoized
cache-filtering pass first, so every worker inherits the filtered traces
copy-on-write instead of redoing the (expensive) filtering per process.
On platforms without ``fork`` (or with ``jobs=1``) execution falls back
to a plain in-process loop over the same cells with the same fold order,
which is what makes the serial/parallel equivalence exact.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro import faults
from repro.config import SimulationConfig, default_jobs
from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.traces.trace import ApplicationTrace

#: The cell runner the forked workers inherit (see module docstring).
_WORKER_RUN_CELL: Optional[Callable[["ExperimentCell"], ApplicationResult]] = (
    None
)


@dataclass(frozen=True, slots=True)
class ExperimentCell:
    """One independent unit of an experiment matrix.

    ``index`` is the cell's stable position in the decomposition; the
    reducer folds results in index order, which pins down floating-point
    summation order and makes parallel runs bit-identical to serial.
    ``application`` and ``predictor`` are display labels for progress
    reporting; the orchestrator that built the cell interprets ``index``
    itself, so cells stay tiny on the wire.
    """

    index: int
    application: str
    predictor: str


@dataclass(frozen=True, slots=True)
class CellResult:
    """One finished cell: its description, result, and wall time."""

    cell: ExperimentCell
    result: ApplicationResult
    wall_time: float


@dataclass(frozen=True, slots=True)
class CellProgress:
    """Progress event fired per completed cell (and, under the resilient
    executor, per failed attempt).

    ``attempt`` is the attempt number the event reports on (0 for a
    cell restored from a checkpoint); ``outcome`` is ``"ok"``,
    ``"retry"`` (a failed attempt that will be retried), ``"failed"``
    (terminal failure), or ``"resumed"``; ``degraded`` is set once the
    resilient executor has fallen back from the worker pool to
    in-process execution.  Plain :func:`execute_cells` always reports
    ``attempt=1, outcome="ok"``.
    """

    cell: ExperimentCell
    wall_time: float
    completed: int
    total: int
    attempt: int = 1
    outcome: str = "ok"
    degraded: bool = False


#: Signature of a progress hook.
ProgressHook = Callable[[CellProgress], None]


def stderr_progress(event: CellProgress) -> None:
    """A ready-made progress hook: one line per cell on stderr.

    Retries and failures from the resilient executor are annotated so
    long runs show what the recovery machinery is doing.
    """
    marker = ""
    if event.outcome == "resumed":
        marker = " (resumed from checkpoint)"
    elif event.attempt > 1:
        marker = f" [attempt {event.attempt}]"
    if event.outcome == "retry":
        marker += " RETRYING"
    elif event.outcome == "failed":
        marker += " FAILED"
    if event.degraded:
        marker += " [degraded: in-process]"
    print(
        f"  [{event.completed}/{event.total}] "
        f"{event.cell.application} × {event.cell.predictor} "
        f"({event.wall_time:.2f} s){marker}",
        file=sys.stderr,
    )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalize a worker-count request.

    ``None`` defers to :func:`repro.config.default_jobs` (the
    ``REPRO_JOBS`` environment variable, serial when unset); ``0`` or a
    negative count means "all cores".
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_invoke(cell: ExperimentCell) -> tuple[ApplicationResult, float]:
    """Run one cell inside a pool worker (timed)."""
    assert _WORKER_RUN_CELL is not None, "worker forked without a cell runner"
    start = time.perf_counter()
    faults.worker_gate(cell.index, cell.application, 1)
    result = _WORKER_RUN_CELL(cell)
    return result, time.perf_counter() - start


def _execute_serial(
    cells: Sequence[ExperimentCell],
    run_cell: Callable[[ExperimentCell], ApplicationResult],
    progress: Optional[ProgressHook],
) -> list[CellResult]:
    out: list[CellResult] = []
    for completed, cell in enumerate(cells, start=1):
        start = time.perf_counter()
        faults.worker_gate(cell.index, cell.application, 1)
        result = run_cell(cell)
        wall = time.perf_counter() - start
        out.append(CellResult(cell=cell, result=result, wall_time=wall))
        if progress is not None:
            progress(CellProgress(cell, wall, completed, len(cells)))
    return out


def execute_cells(
    cells: Iterable[ExperimentCell],
    run_cell: Callable[[ExperimentCell], ApplicationResult],
    *,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
) -> list[CellResult]:
    """Execute every cell and return results **in cell order**.

    With ``jobs`` > 1 (and ``fork`` available) the cells run on a
    process pool; otherwise in-process, in order.  Either way the
    returned list is ordered like ``cells``, so any fold over it is
    deterministic — parallel output is bit-identical to serial.
    """
    cell_list = list(cells)
    if not cell_list:
        return []
    workers = min(resolve_jobs(jobs), len(cell_list))
    if workers <= 1 or not fork_available():
        return _execute_serial(cell_list, run_cell, progress)

    global _WORKER_RUN_CELL
    _WORKER_RUN_CELL = run_cell
    out: list[Optional[CellResult]] = [None] * len(cell_list)
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=faults.mark_worker_process,
        ) as pool:
            futures = {
                pool.submit(_worker_invoke, cell): position
                for position, cell in enumerate(cell_list)
            }
            completed = 0
            try:
                for future in as_completed(futures):
                    position = futures[future]
                    result, wall = future.result()
                    cell = cell_list[position]
                    out[position] = CellResult(
                        cell=cell, result=result, wall_time=wall
                    )
                    completed += 1
                    if progress is not None:
                        progress(
                            CellProgress(
                                cell, wall, completed, len(cell_list)
                            )
                        )
            except BaseException:
                # One bad cell must not leave the run wedged: cancel
                # every future that has not started (exiting the `with`
                # block alone would still *run* queued cells) and shut
                # the pool down before propagating.  The resilient
                # executor (repro.sim.resilience) is the recovery path;
                # this one stays fail-fast but clean.
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=True, cancel_futures=True)
                raise
    finally:
        _WORKER_RUN_CELL = None
    assert all(item is not None for item in out)
    return out  # type: ignore[return-value]


class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that fans suite-level runs out
    across ``jobs`` worker processes.

    Single-cell calls (:meth:`run_global`, :meth:`run_local`) stay
    in-process; :meth:`run_suite` and :meth:`run_matrix` decompose into
    cells and parallelize.  ``jobs=1`` (the default without
    ``REPRO_JOBS``) degrades to exactly the serial runner.

    With ``tracing`` enabled each worker records its cell's structured
    event stream (:mod:`repro.sim.tracing`) and the (picklable) events
    travel back attached to the cell's
    :class:`~repro.sim.experiment.ApplicationResult`; because results are
    folded in cell order, the merged streams are bit-identical to a
    serial traced run.
    """

    def __init__(
        self,
        suite: dict[str, ApplicationTrace],
        config: Optional[SimulationConfig] = None,
        *,
        jobs: Optional[int] = None,
        progress: Optional[ProgressHook] = None,
        tracing: bool = False,
        trace_capacity: Optional[int] = None,
        artifact_cache=None,
    ) -> None:
        super().__init__(
            suite,
            config,
            tracing=tracing,
            trace_capacity=trace_capacity,
            artifact_cache=artifact_cache,
        )
        self.jobs = resolve_jobs(jobs)
        self.progress = progress

    def with_config(
        self, config: SimulationConfig
    ) -> "ParallelExperimentRunner":
        """A parallel runner over the same suite under a new config,
        sharing filter memos when the cache configuration matches."""
        clone = ParallelExperimentRunner(
            self.suite,
            config,
            jobs=self.jobs,
            progress=self.progress,
            tracing=self.tracing,
            trace_capacity=self.trace_capacity,
            artifact_cache=self.artifact_cache,
        )
        if config.cache == self.config.cache:
            clone._filtered = self._filtered
        clone._fingerprints = self._fingerprints
        return clone

    def prewarm(self, applications: Optional[Sequence[str]] = None) -> None:
        """Run the memoized cache-filtering pass in the parent so forked
        workers inherit it copy-on-write instead of re-filtering.

        Streaming (store-backed) traces are skipped: memoizing them in
        the parent would defeat the store's memory bound, and workers
        read their chunks straight from the shared on-disk store (with
        an artifact cache attached, the filter results are shared
        through it instead).
        """
        for application in applications or self.applications:
            if getattr(self.suite[application], "streaming", False):
                continue
            self.filtered(application)

    def run_suite(
        self,
        predictor: str,
        *,
        applications: Optional[Sequence[str]] = None,
        mode: str = "global",
        multistate: bool = False,
        jobs: Optional[int] = None,
    ) -> dict[str, ApplicationResult]:
        """One predictor over many applications, one cell per app."""
        matrix = self.run_matrix(
            [predictor],
            mode=mode,
            applications=applications,
            multistate=multistate,
            jobs=jobs,
        )
        return {app: row[predictor] for app, row in matrix.items()}

    def run_matrix(
        self,
        predictors: Sequence[str],
        *,
        mode: str = "global",
        applications: Optional[Sequence[str]] = None,
        multistate: bool = False,
        jobs: Optional[int] = None,
        fused: Optional[bool] = None,
    ) -> dict[str, dict[str, ApplicationResult]]:
        """``{application: {predictor: result}}`` over a worker pool;
        bit-identical to the serial :class:`ExperimentRunner` matrix.

        ``fused`` (``None`` defers to ``REPRO_FUSED``) decomposes by
        application instead of (application × predictor): each cell
        decodes its trace once and evaluates every predictor against it
        (:mod:`repro.sim.fused`), with bit-identical results.  Local
        mode, multistate, and tracing runs keep the classic cells.
        """
        if mode not in ("global", "local"):
            raise ValueError(f"unknown mode {mode!r}")
        apps = list(applications) if applications else self.applications
        names = list(predictors)
        if self._fused_eligible(fused, mode=mode, multistate=multistate):
            return self._run_matrix_fused(names, apps, jobs=jobs)
        cells = [
            ExperimentCell(
                index=len(names) * row + column,
                application=application,
                predictor=name,
            )
            for row, application in enumerate(apps)
            for column, name in enumerate(names)
        ]

        def run_cell(cell: ExperimentCell) -> ApplicationResult:
            if mode == "local":
                return self.run_local(cell.application, cell.predictor)
            return self.run_global(
                cell.application, cell.predictor, multistate=multistate
            )

        self.prewarm(apps)
        results = execute_cells(
            cells,
            run_cell,
            jobs=self.jobs if jobs is None else jobs,
            progress=self.progress,
        )
        matrix: dict[str, dict[str, ApplicationResult]] = {}
        for item in results:
            row = matrix.setdefault(item.cell.application, {})
            row[item.cell.predictor] = item.result
        return matrix

    def run_matrix_resilient(
        self,
        predictors: Sequence[str],
        *,
        mode: str = "global",
        applications: Optional[Sequence[str]] = None,
        multistate: bool = False,
        jobs: Optional[int] = None,
        policy=None,
        checkpoint=None,
        fused: Optional[bool] = None,
    ):
        """A matrix run that survives crashed, hung, or failing cells.

        The resilient counterpart of :meth:`run_matrix`: cells are
        executed through :func:`repro.sim.resilience.run_cells` under
        ``policy`` (retries, per-cell timeouts, pool degradation) and
        the returned :class:`~repro.sim.resilience.MatrixReport` carries
        the partial matrix plus the failure/retry ledger.  With
        ``checkpoint`` (a :class:`~repro.sim.resilience.CellCheckpoint`
        or a path) completed cells are journalled and skipped on
        re-runs.  On the all-success path the matrix is bit-identical
        to :meth:`run_matrix`.

        With ``fused``, retries/checkpoints apply per fused cell (one
        per application, spanning every predictor); checkpoint keys
        embed the variant-set fingerprint, so adding or removing a
        predictor never resumes from stale journal entries.  A failed
        fused cell drops its whole application row from the matrix.
        """
        from repro.sim.resilience import MatrixReport, cell_key, run_cells

        if mode not in ("global", "local"):
            raise ValueError(f"unknown mode {mode!r}")
        apps = list(applications) if applications else self.applications
        names = list(predictors)
        if self._fused_eligible(fused, mode=mode, multistate=multistate):
            return self._run_matrix_fused(
                names,
                apps,
                jobs=jobs,
                policy=policy,
                checkpoint=checkpoint,
                resilient=True,
            )
        cells = [
            ExperimentCell(
                index=len(names) * row + column,
                application=application,
                predictor=name,
            )
            for row, application in enumerate(apps)
            for column, name in enumerate(names)
        ]

        def run_cell(cell: ExperimentCell) -> ApplicationResult:
            if mode == "local":
                return self.run_local(cell.application, cell.predictor)
            return self.run_global(
                cell.application, cell.predictor, multistate=multistate
            )

        self.prewarm(apps)
        keys = None
        if checkpoint is not None:
            keys = [
                cell_key(
                    self.fingerprint(cell.application),
                    cell.predictor,
                    self.config,
                    mode=mode,
                    multistate=multistate,
                )
                for cell in cells
            ]
        ledger = run_cells(
            cells,
            run_cell,
            jobs=self.jobs if jobs is None else jobs,
            policy=policy,
            progress=self.progress,
            checkpoint=checkpoint,
            cell_keys=keys,
            # Classic cells are keyed per predictor, so the variant set
            # is free to differ between resumes; only the run *shape*
            # (per-cell vs fused, mode, multistate) must match.
            provenance={
                "fused": False, "mode": mode, "multistate": bool(multistate)
            },
        )
        matrix: dict[str, dict[str, ApplicationResult]] = {}
        for item in ledger.results:
            row = matrix.setdefault(item.cell.application, {})
            row[item.cell.predictor] = item.result
        return MatrixReport(matrix=matrix, ledger=ledger)

    def _fused_eligible(
        self, fused: Optional[bool], *, mode: str, multistate: bool
    ) -> bool:
        """Whether this matrix run should take the fused path."""
        from repro.config import resolve_fused
        from repro.sim.fused import fused_supported

        return (
            resolve_fused(fused)
            and mode == "global"
            and fused_supported(self, multistate=multistate)
        )

    def _run_matrix_fused(
        self,
        names: list[str],
        apps: list[str],
        *,
        jobs: Optional[int],
        policy=None,
        checkpoint=None,
        resilient: bool = False,
    ):
        """Application-major matrix via the fused kernel (one cell per
        application, every predictor evaluated against one decoding)."""
        from repro.predictors.registry import make_spec
        from repro.sim.fused import run_fused_cells

        config = self.config

        def make_specs():
            return [make_spec(name, config) for name in names]

        if resilient and policy is None and checkpoint is None:
            from repro.sim.resilience import ResiliencePolicy

            policy = ResiliencePolicy()
        outcomes, ledger = run_fused_cells(
            self,
            apps,
            names,
            make_specs,
            jobs=self.jobs if jobs is None else jobs,
            progress=self.progress,
            policy=policy,
            checkpoint=checkpoint,
        )
        matrix: dict[str, dict[str, ApplicationResult]] = {}
        for application in apps:
            outcome = outcomes.get(application)
            if outcome is None:
                continue
            # Key rows by the *requested* names (classic rows are keyed
            # by cell.predictor, which is the registry name, not the
            # spec's display name).
            matrix[application] = dict(zip(names, outcome.results))
        if ledger is None:
            return matrix
        from repro.sim.resilience import MatrixReport

        return MatrixReport(matrix=matrix, ledger=ledger)

    def run_suite_resilient(
        self,
        predictor: str,
        *,
        applications: Optional[Sequence[str]] = None,
        mode: str = "global",
        multistate: bool = False,
        jobs: Optional[int] = None,
        policy=None,
        checkpoint=None,
    ):
        """One predictor over many applications, resiliently."""
        from repro.sim.resilience import SuiteReport

        report = self.run_matrix_resilient(
            [predictor],
            mode=mode,
            applications=applications,
            multistate=multistate,
            jobs=jobs,
            policy=policy,
            checkpoint=checkpoint,
        )
        results = {
            app: row[predictor]
            for app, row in report.matrix.items()
            if predictor in row
        }
        return SuiteReport(results=results, ledger=report.ledger)

    def run_fleet(
        self,
        devices,
        predictors=("PCAP",),
        *,
        tables: str = "sharded",
        jobs: Optional[int] = None,
        policy=None,
        checkpoint=None,
        use_cache: bool = True,
    ):
        """Simulate a device fleet (:func:`repro.sim.fleet.run_fleet`)
        under this runner's worker pool and progress hook."""
        from repro.sim.fleet import run_fleet

        return run_fleet(
            self,
            devices,
            predictors,
            tables=tables,
            jobs=self.jobs if jobs is None else jobs,
            progress=self.progress,
            resilience=policy,
            checkpoint=checkpoint,
            use_cache=use_cache,
        )

    def fleet_sweep(
        self,
        devices,
        values,
        *,
        predictor: str = "TP",
        make_spec_fn=None,
        tables: str = "sharded",
        jobs: Optional[int] = None,
        policy=None,
        checkpoint=None,
    ):
        """Sweep a predictor knob across a fleet
        (:func:`repro.sim.fleet.fleet_sweep`) under this runner's worker
        pool and progress hook."""
        from repro.sim.fleet import fleet_sweep

        return fleet_sweep(
            self,
            devices,
            values,
            predictor=predictor,
            make_spec_fn=make_spec_fn,
            tables=tables,
            jobs=self.jobs if jobs is None else jobs,
            progress=self.progress,
            resilience=policy,
            checkpoint=checkpoint,
        )
