"""Idle-period extraction used for Table 1 and by tests.

Wraps the gap arithmetic of :mod:`repro.traces.stats` with the engine's
conventions: the leading gap (execution start → first access) and the
trailing gap (last access completion → execution end) are both included,
because both are real disk idle time (mplayer's large buffer-drain idle
period is a trailing gap).
"""

from __future__ import annotations

from typing import Sequence

from repro.traces.stats import Gap
from repro.units import EPSILON


def stream_gaps(
    times: Sequence[float],
    service_time: float,
    *,
    start_time: float,
    end_time: float,
) -> list[Gap]:
    """All request-free intervals of an access stream within
    ``[start_time, end_time]``, including leading and trailing gaps."""
    if end_time < start_time:
        raise ValueError("stream ends before it starts")
    gaps: list[Gap] = []
    busy_until = start_time
    for time in times:
        if time > busy_until + EPSILON:
            gaps.append(Gap(start=busy_until, end=time))
            busy_until = time + service_time
        else:
            busy_until = max(busy_until, time) + service_time
    if end_time > busy_until + EPSILON:
        gaps.append(Gap(start=busy_until, end=end_time))
    return gaps


def count_opportunities(
    times: Sequence[float],
    service_time: float,
    breakeven: float,
    *,
    start_time: float,
    end_time: float,
) -> int:
    """Number of shutdown opportunities (gaps longer than breakeven)."""
    gaps = stream_gaps(
        times, service_time, start_time=start_time, end_time=end_time
    )
    return sum(1 for gap in gaps if gap.length > breakeven)
