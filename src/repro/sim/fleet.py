"""Fleet-scale multi-device simulation (device-batched columnar engine).

The paper evaluates one disk per run; the production shape this package
grows toward is a *fleet* — thousands to millions of independent devices,
each replaying an application's trace history under a power-management
policy, aggregated into fleet-level energy and latency figures.  Running
one :class:`~repro.sim.experiment.ExperimentRunner` cell per device
would cost O(devices) full replays and O(devices) Python object graphs;
this module keeps both bounded:

* **Device-batched state.**  Per-device simulation state (energy
  buckets, idle clock, prediction and latency counters) lives in
  columnar NumPy arrays —
  :class:`~repro.sim.columnar.DeviceStateColumns`, one row per device —
  so advancing the whole population by one replayed trace history is a
  handful of vectorized scatter-adds, and fleet reductions (total
  energy, per-percentile slowdown) are single array operations.

* **Replay deduplication.**  Devices are keyed by application identity.
  Every device of one application replays the *same* trace under the
  same deterministic engine, so the fused kernel
  (:mod:`repro.sim.fused`) replays each application once per variant
  lane and the result is scattered across that application's device
  rows.  One process therefore advances an entire device population per
  event batch — the per-event work is O(unique applications), not
  O(devices).

* **Bounded memory.**  Applications stream through
  :meth:`~repro.sim.experiment.ExperimentRunner.iter_filtered`, so
  store-backed suites (:mod:`repro.traces.store`) decode one chunk at a
  time; fleet memory is O(devices) accumulator rows plus one execution
  in flight, at any fleet size.

* **Prediction-table scope.**  ``tables="sharded"`` (the default) gives
  each application shard its own prediction tables — device results are
  independent, and an N-device fleet of identical traces is
  *bit-identical* to N standalone single-device runs (the fleet
  equivalence gate).  ``tables="shared"`` evolves one fleet-wide table
  set across applications, replayed sequentially in first-seen device
  order — the cross-workload table-reuse shape of the paper's §6.4
  scaled to a population; results then intentionally differ from
  isolated runs.

Execution rides the existing layers: sharded fleets fan one fused cell
per application through :func:`repro.sim.fused.run_fused_cells` (worker
pools, artifact cache, resilient retries, checkpoints all apply);
shared fleets run as a single sequential cell cached under a
fleet-level key (:func:`repro.sim.artifact_cache.fleet_key`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.predictors.registry import PredictorSpec, make_spec
from repro.sim.columnar import DeviceStateColumns
from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.sim.fused import (
    FusedCellOutcome,
    fused_supported,
    run_fused_application,
    run_fused_cells,
)
from repro.sim.metrics import PredictionStats
from repro.sim.parallel import ExperimentCell, ProgressHook, execute_cells

#: Prediction-table scopes accepted by :func:`run_fleet`.
TABLE_MODES = ("sharded", "shared")

#: Slowdown percentiles reported by default (per-device mean inflicted
#: delay per access, in milliseconds in the rendered table).
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """One fleet member: a device identity bound to an application."""

    device_id: str
    application: str


def replicate_devices(
    applications: Sequence[str], count: int, *, prefix: str = "dev"
) -> list[DeviceSpec]:
    """A ``count``-device population, round-robin over ``applications``.

    The standard fleet shape for experiments: device ``i`` runs
    application ``applications[i % len(applications)]`` under the id
    ``{prefix}-{i:0{width}}``.
    """
    apps = list(applications)
    if not apps:
        raise ConfigurationError("a fleet needs at least one application")
    if count < 0:
        raise ConfigurationError("device count must be non-negative")
    width = max(4, len(str(max(count - 1, 0))))
    return [
        DeviceSpec(
            device_id=f"{prefix}-{index:0{width}d}",
            application=apps[index % len(apps)],
        )
        for index in range(count)
    ]


@dataclass(slots=True)
class FleetLaneResult:
    """One predictor lane's outcome over the whole device population."""

    #: The requested predictor name (registry name or sweep label).
    predictor: str
    #: Per-device identity and application, row-aligned with ``columns``.
    device_ids: list[str]
    applications: list[str]
    #: The device-batched accumulator columns (one row per device).
    columns: DeviceStateColumns
    #: Per-application replay outcome (display name, table size) the
    #: device rows were scattered from.
    per_application: dict[str, ApplicationResult]

    @property
    def devices(self) -> int:
        """Fleet size."""
        return len(self.device_ids)

    @property
    def total_energy(self) -> float:
        """Fleet-total energy in joules."""
        return self.columns.aggregate_ledger().total

    def aggregate_stats(self) -> PredictionStats:
        """Fleet-total prediction counters."""
        return self.columns.aggregate_stats()

    def device_result(self, device: int) -> ApplicationResult:
        """One device's breakdown, reconstructed from its column row.

        Bit-identical to an independent single-device
        :meth:`~repro.sim.experiment.ExperimentRunner.run_global` of the
        device's application in ``tables="sharded"`` mode — the fleet
        equivalence contract.
        """
        application = self.applications[device]
        replay = self.per_application[application]
        columns = self.columns
        return ApplicationResult(
            application=application,
            predictor=replay.predictor,
            stats=columns.stats_of(device),
            ledger=columns.ledger_of(device),
            executions=int(columns.executions[device]),
            total_disk_accesses=int(columns.disk_accesses[device]),
            shutdowns=int(columns.shutdowns[device]),
            table_size=replay.table_size,
            delayed_requests=int(columns.delayed_requests[device]),
            delay_seconds=float(columns.delay_seconds[device]),
            irritating_delays=int(columns.irritating_delays[device]),
        )

    def slowdown_percentiles(
        self, percentiles: Sequence[float] = DEFAULT_PERCENTILES
    ) -> dict[float, float]:
        """Per-device slowdown distribution over the fleet.

        The slowdown metric is each device's mean inflicted spin-up
        delay per disk access
        (:meth:`~repro.sim.columnar.DeviceStateColumns.delay_per_access`);
        the return maps each requested percentile to its value in
        seconds.
        """
        values = self.columns.delay_per_access()
        if not len(values):
            return {float(p): 0.0 for p in percentiles}
        points = np.percentile(values, list(percentiles))
        return {
            float(p): float(v) for p, v in zip(percentiles, points)
        }


@dataclass(slots=True)
class FleetResult:
    """A full fleet evaluation: one lane per requested predictor."""

    devices: list[DeviceSpec]
    predictors: list[str]
    tables: str
    #: Fleet provenance digest (ordered device fingerprints × variant
    #: set × configuration) — the artifact/checkpoint identity of this
    #: run (:func:`repro.sim.artifact_cache.fleet_fingerprint`).
    fingerprint: str
    lanes: dict[str, FleetLaneResult] = field(default_factory=dict)
    #: The resilient executor's ledger (``None`` on the plain path).
    ledger: object = None

    def lane(self, predictor: str) -> FleetLaneResult:
        """The lane of one requested predictor name."""
        return self.lanes[predictor]

    def render(
        self, percentiles: Sequence[float] = DEFAULT_PERCENTILES
    ) -> str:
        """A deterministic text table of fleet aggregates per lane."""
        header = (
            f"  {'predictor':<12s} {'energy':>14s} {'mean-delay':>11s} "
            + " ".join(f"p{p:g}".rjust(9) for p in percentiles)
            + f" {'shutdowns':>10s} {'delayed':>8s}"
        )
        lines = [header]
        base = self.lanes.get("Base")
        for name in self.predictors:
            lane = self.lanes[name]
            columns = lane.columns
            total_delay = float(columns.delay_seconds.sum())
            total_accesses = int(columns.disk_accesses.sum())
            mean_delay = (
                total_delay / total_accesses if total_accesses else 0.0
            )
            spread = lane.slowdown_percentiles(percentiles)
            row = (
                f"  {name:<12s} {lane.total_energy:>12.1f} J "
                f"{mean_delay * 1e3:>8.3f} ms "
                + " ".join(
                    f"{spread[float(p)] * 1e3:>6.3f} ms" for p in percentiles
                )
                + f" {int(columns.shutdowns.sum()):>10d}"
                f" {int(columns.delayed_requests.sum()):>8d}"
            )
            if base is not None and name != "Base":
                base_energy = base.total_energy
                if base_energy:
                    savings = 1.0 - lane.total_energy / base_energy
                    row += f"  ({savings:+.1%} vs Base)"
            lines.append(row)
        return "\n".join(lines)


def _device_index_map(
    devices: Sequence[DeviceSpec],
) -> tuple[list[str], dict[str, np.ndarray]]:
    """Unique applications in first-seen order, and each application's
    device-row positions as an index array."""
    order: list[str] = []
    positions: dict[str, list[int]] = {}
    for row, device in enumerate(devices):
        bucket = positions.get(device.application)
        if bucket is None:
            order.append(device.application)
            bucket = positions[device.application] = []
        bucket.append(row)
    return order, {
        app: np.asarray(rows, dtype=np.intp)
        for app, rows in positions.items()
    }


def _normalize_devices(
    runner: ExperimentRunner,
    devices: Union[int, Sequence[DeviceSpec]],
) -> list[DeviceSpec]:
    if isinstance(devices, int):
        population = replicate_devices(runner.applications, devices)
    else:
        population = list(devices)
    seen: set[str] = set()
    for device in population:
        if device.application in seen:
            continue
        seen.add(device.application)
        if device.application not in runner.suite:
            raise ConfigurationError(
                f"fleet device {device.device_id!r} maps to "
                f"{device.application!r}, which is not in the runner's "
                f"suite {sorted(runner.suite)}"
            )
    return population


def _shared_outcomes(
    runner: ExperimentRunner,
    apps: list[str],
    labels: Sequence[str],
    make_specs: Callable[[], list[PredictorSpec]],
    fingerprint: str,
    *,
    jobs: Optional[int],
    progress: Optional[ProgressHook],
    resilience,
    checkpoint,
    use_cache: bool,
):
    """Evaluate a shared-table fleet: one sequential cell, one spec set.

    The spec objects persist across applications, so shared predictor
    state (PCAP tables, LT trees) carries over in first-seen device
    order — the fleet-wide table scope.  The whole pass is one cell so
    the resilient executor retries it atomically, and its artifact is
    cached under the fleet key.
    """
    from repro.sim.artifact_cache import fleet_key

    cache = runner.artifact_cache if use_cache else None
    cell = ExperimentCell(
        index=0, application=apps[0] if apps else "",
        predictor=f"fleet-shared[{len(labels)}]",
    )

    def run_cell(cell: ExperimentCell) -> list[FusedCellOutcome]:
        key = None
        if cache is not None:
            key = fleet_key(fingerprint, "shared")
            hit, value = cache.get(key)
            if hit and isinstance(value, list):
                return value
        specs = make_specs()
        outcomes = [
            FusedCellOutcome(
                application=app,
                results=run_fused_application(runner, app, specs),
            )
            for app in apps
        ]
        if key is not None:
            cache.put(key, outcomes)
        return outcomes

    if resilience is not None or checkpoint is not None:
        from repro.sim.artifact_cache import variant_set_fingerprint
        from repro.sim.resilience import cell_key, run_cells

        keys = None
        provenance = None
        if checkpoint is not None:
            variant_fp = variant_set_fingerprint(labels, runner.config)
            keys = [
                cell_key(fingerprint, f"fleet-shared:{variant_fp}",
                         runner.config)
            ]
            provenance = {
                "fused": True,
                "mode": "fleet-shared",
                "multistate": False,
                "variant_set": variant_fp,
            }
        ledger = run_cells(
            [cell],
            run_cell,
            jobs=jobs,
            policy=resilience,
            progress=progress,
            checkpoint=checkpoint,
            cell_keys=keys,
            provenance=provenance,
        )
        results = ledger.results
    else:
        ledger = None
        results = execute_cells(
            [cell], run_cell, jobs=1, progress=progress
        )
    outcomes: dict[str, FusedCellOutcome] = {}
    for item in results:
        for outcome in item.result:
            outcomes[outcome.application] = outcome
    return outcomes, ledger


def run_fleet(
    runner: ExperimentRunner,
    devices: Union[int, Sequence[DeviceSpec]],
    predictors: Union[str, Sequence[str]] = ("PCAP",),
    *,
    tables: str = "sharded",
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    resilience=None,
    checkpoint=None,
    use_cache: bool = True,
) -> FleetResult:
    """Simulate a device fleet under one or more predictors.

    ``devices`` is either an explicit population
    (:class:`DeviceSpec` sequence — duplicates of an application are
    replicas) or an integer, which builds a round-robin population over
    the runner's suite (:func:`replicate_devices`).  ``predictors``
    names registry predictors; every lane is evaluated against one
    streaming decode per application.

    ``tables`` selects the prediction-table scope: ``"sharded"``
    (per-application tables, devices independent — the mode whose
    per-device results are bit-identical to standalone runs) or
    ``"shared"`` (one fleet-wide table set evolved across applications
    in first-seen device order).

    ``resilience`` / ``checkpoint`` route execution through the
    resilient executor (per-cell retries, journalling; fleet checkpoint
    keys embed the fleet fingerprint, so a changed population or lane
    set never resumes stale entries).  Failed cells raise
    :class:`~repro.errors.ExecutionError` — fleet aggregates over a
    silently partial population would be meaningless.
    """
    from repro.sim.artifact_cache import fleet_fingerprint
    from repro.sim.resilience import raise_on_failures

    if tables not in TABLE_MODES:
        raise ConfigurationError(
            f"unknown table scope {tables!r}; use one of {TABLE_MODES}"
        )
    if not fused_supported(runner):
        raise SimulationError(
            "fleet simulation replays through the fused kernel and does "
            "not support structured tracing; use an untraced runner"
        )
    names = [predictors] if isinstance(predictors, str) else list(predictors)
    if not names:
        raise ConfigurationError("a fleet run needs at least one predictor")
    population = _normalize_devices(runner, devices)
    apps, index_map = _device_index_map(population)
    config = runner.config

    fingerprint = fleet_fingerprint(
        tuple(runner.fingerprint(d.application) for d in population),
        names,
        config,
    )

    def make_specs() -> list[PredictorSpec]:
        return [make_spec(name, config) for name in names]

    if tables == "shared":
        outcomes, ledger = _shared_outcomes(
            runner, apps, names, make_specs, fingerprint,
            jobs=jobs, progress=progress,
            resilience=resilience, checkpoint=checkpoint,
            use_cache=use_cache,
        )
    else:
        outcomes, ledger = run_fused_cells(
            runner, apps, names, make_specs,
            jobs=jobs, progress=progress,
            policy=resilience, checkpoint=checkpoint,
            use_cache=use_cache,
        )
    if ledger is not None:
        raise_on_failures(ledger, "fleet run")

    result = FleetResult(
        devices=population,
        predictors=names,
        tables=tables,
        fingerprint=fingerprint,
        ledger=ledger,
    )
    device_ids = [d.device_id for d in population]
    applications = [d.application for d in population]
    for lane, name in enumerate(names):
        columns = DeviceStateColumns(len(population))
        per_application: dict[str, ApplicationResult] = {}
        # One scatter-add per (application, lane): the whole population
        # advances per replayed event batch, row count notwithstanding.
        for app in apps:
            replay = outcomes[app].results[lane]
            per_application[app] = replay
            columns.absorb(index_map[app], replay)
        result.lanes[name] = FleetLaneResult(
            predictor=name,
            device_ids=device_ids,
            applications=applications,
            columns=columns,
            per_application=per_application,
        )
    return result


@dataclass(frozen=True, slots=True)
class FleetSweepPoint:
    """Aggregate fleet outcome of one swept parameter value."""

    value: object
    total_energy: float
    savings: float
    mean_delay: float
    slowdown_p99: float
    shutdowns: int
    delayed_requests: int


def fleet_sweep(
    runner: ExperimentRunner,
    devices: Union[int, Sequence[DeviceSpec]],
    values: Iterable,
    *,
    predictor: str = "TP",
    make_spec_fn: Optional[
        Callable[[object, SimulationConfig], PredictorSpec]
    ] = None,
    tables: str = "sharded",
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    resilience=None,
    checkpoint=None,
) -> list[FleetSweepPoint]:
    """Sweep one predictor knob across a whole fleet.

    The fleet counterpart of :func:`repro.sim.sweep.sweep`: each swept
    value becomes one lane (labelled ``{predictor}@{value!r}``, exactly
    like classic sweep cells, so cache and checkpoint keys line up),
    plus one shared ``Base`` lane for savings — all evaluated against
    one streaming decode per application and scattered across the
    device population.  ``make_spec_fn`` builds the spec per value
    (default: the registry's ``predictor`` under the runner's
    configuration, for spec factories that ignore the value).
    """
    from repro.sim.artifact_cache import fleet_fingerprint
    from repro.sim.resilience import raise_on_failures

    if tables not in TABLE_MODES:
        raise ConfigurationError(
            f"unknown table scope {tables!r}; use one of {TABLE_MODES}"
        )
    if not fused_supported(runner):
        raise SimulationError(
            "fleet sweeps replay through the fused kernel and do not "
            "support structured tracing; use an untraced runner"
        )
    point_values = list(values)
    labels = [f"{predictor}@{value!r}" for value in point_values]
    base_lane = len(labels)
    labels.append("Base")
    population = _normalize_devices(runner, devices)
    apps, index_map = _device_index_map(population)
    config = runner.config

    def make_specs() -> list[PredictorSpec]:
        specs = []
        for value in point_values:
            if make_spec_fn is not None:
                specs.append(make_spec_fn(value, config))
            else:
                specs.append(make_spec(predictor, config))
        specs.append(make_spec("Base", config))
        return specs

    fingerprint = fleet_fingerprint(
        tuple(runner.fingerprint(d.application) for d in population),
        labels,
        config,
    )
    use_cache = make_spec_fn is None
    if tables == "shared":
        outcomes, ledger = _shared_outcomes(
            runner, apps, labels, make_specs, fingerprint,
            jobs=jobs, progress=progress,
            resilience=resilience, checkpoint=checkpoint,
            use_cache=use_cache,
        )
    else:
        outcomes, ledger = run_fused_cells(
            runner, apps, labels, make_specs,
            jobs=jobs, progress=progress,
            policy=resilience, checkpoint=checkpoint,
            use_cache=use_cache,
        )
    if ledger is not None:
        raise_on_failures(ledger, "fleet sweep")

    points: list[FleetSweepPoint] = []
    n = len(population)
    for point, value in enumerate(point_values):
        columns = DeviceStateColumns(n)
        base_columns = DeviceStateColumns(n)
        for app in apps:
            columns.absorb(index_map[app], outcomes[app].results[point])
            base_columns.absorb(
                index_map[app], outcomes[app].results[base_lane]
            )
        energy = columns.aggregate_ledger().total
        base_energy = base_columns.aggregate_ledger().total
        total_delay = float(columns.delay_seconds.sum())
        total_accesses = int(columns.disk_accesses.sum())
        slowdown = columns.delay_per_access()
        points.append(
            FleetSweepPoint(
                value=value,
                total_energy=energy,
                savings=(
                    1.0 - energy / base_energy if base_energy else 0.0
                ),
                mean_delay=(
                    total_delay / total_accesses if total_accesses else 0.0
                ),
                slowdown_p99=(
                    float(np.percentile(slowdown, 99.0)) if n else 0.0
                ),
                shutdowns=int(columns.shutdowns.sum()),
                delayed_requests=int(columns.delayed_requests.sum()),
            )
        )
    return points
