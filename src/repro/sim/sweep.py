"""Parameter sweep utilities.

The ablation benchmarks (and users exploring the design space) all
follow one pattern: vary one knob, run a predictor over the suite, and
collect aggregate accuracy/energy per point.  :func:`sweep` packages
that loop; the configuration is varied either by rebuilding the
:class:`~repro.config.SimulationConfig` (sharing the cache-filtering
work when possible) or by supplying a custom spec factory per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.config import SimulationConfig
from repro.predictors.registry import PredictorSpec
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import PredictionStats

P = TypeVar("P")


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """Aggregate outcome of one parameter value over the suite."""

    value: object
    hit_fraction: float
    miss_fraction: float
    hit_primary_fraction: float
    hit_backup_fraction: float
    energy: float
    savings: float
    shutdowns: int
    delayed_requests: int
    irritating_delays: int


def sweep(
    runner: ExperimentRunner,
    values: Iterable[P],
    *,
    make_config: Optional[Callable[[P], SimulationConfig]] = None,
    make_spec: Optional[
        Callable[[P, SimulationConfig], PredictorSpec]
    ] = None,
    predictor: str = "PCAP",
    applications: Optional[Sequence[str]] = None,
) -> list[SweepPoint]:
    """Run one predictor across the suite for each parameter value.

    Exactly one of ``make_config`` (vary the simulation configuration;
    the predictor is resolved by name per point) or ``make_spec`` (vary
    the predictor itself under the runner's configuration) should be
    given; with neither, the sweep degenerates to a single-point run per
    value (useful for comparing predictor names by passing them as the
    values and ``make_spec=lambda name, cfg: registry.make_spec(...)``).
    """
    if make_config is not None and make_spec is not None:
        raise ValueError("pass make_config or make_spec, not both")
    apps = list(applications) if applications else runner.applications
    points: list[SweepPoint] = []
    for value in values:
        if make_config is not None:
            point_runner = runner.with_config(make_config(value))
        else:
            point_runner = runner
        config = point_runner.config
        stats = PredictionStats()
        energy = 0.0
        base_energy = 0.0
        shutdowns = 0
        delayed = 0
        irritating = 0
        for app in apps:
            if make_spec is not None:
                target: str | PredictorSpec = make_spec(value, config)
            else:
                target = predictor
            result = point_runner.run_global(app, target)
            stats.merge(result.stats)
            energy += result.energy
            shutdowns += result.shutdowns
            delayed += result.delayed_requests
            irritating += result.irritating_delays
            base_energy += point_runner.run_global(app, "Base").energy
        points.append(
            SweepPoint(
                value=value,
                hit_fraction=stats.hit_fraction,
                miss_fraction=stats.miss_fraction,
                hit_primary_fraction=stats.hit_primary_fraction,
                hit_backup_fraction=stats.hit_backup_fraction,
                energy=energy,
                savings=1.0 - energy / base_energy if base_energy else 0.0,
                shutdowns=shutdowns,
                delayed_requests=delayed,
                irritating_delays=irritating,
            )
        )
    return points


def render_sweep(points: Sequence[SweepPoint], title: str) -> str:
    """A compact text table of sweep results."""
    lines = [
        title,
        f"  {'value':>10s} {'hit':>7s} {'miss':>7s} {'savings':>8s} "
        f"{'shutdowns':>9s} {'irritating':>10s}",
    ]
    for point in points:
        lines.append(
            f"  {point.value!s:>10s} {point.hit_fraction:7.1%} "
            f"{point.miss_fraction:7.1%} {point.savings:8.1%} "
            f"{point.shutdowns:9d} {point.irritating_delays:10d}"
        )
    return "\n".join(lines)
