"""Parameter sweep utilities.

The ablation benchmarks (and users exploring the design space) all
follow one pattern: vary one knob, run a predictor over the suite, and
collect aggregate accuracy/energy per point.  :func:`sweep` packages
that loop; the configuration is varied either by rebuilding the
:class:`~repro.config.SimulationConfig` (sharing the cache-filtering
work when possible) or by supplying a custom spec factory per point.

A sweep decomposes into independent (point × application) cells —
including one ``Base`` baseline cell per *distinct* (baseline-relevant
configuration × application) pair, computed once and reused by every
point whose disk/cache/service-time fields agree (predictor knobs like
the wait window never affect the always-on baseline) — and executes
them through
:func:`repro.sim.parallel.execute_cells`.  With ``jobs`` > 1 the cells
run on a process pool; the fold over per-cell results is in fixed cell
order either way, so parallel sweeps are bit-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.config import SimulationConfig, resolve_fused
from repro.predictors.registry import PredictorSpec
from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.sim.metrics import PredictionStats
from repro.sim.parallel import ExperimentCell, ProgressHook, execute_cells

P = TypeVar("P")


def _baseline_key(config: SimulationConfig) -> tuple:
    """Memo key of a Base baseline cell under ``config``.

    The Base system is the always-on omniscient policy: its result
    depends only on the disk power model, the page-cache configuration
    (which shapes the filtered stream), and the service-time model —
    never on predictor knobs like ``wait_window`` or ``timeout``.
    Keying on exactly those fields lets sweeps over predictor knobs
    share one baseline cell per application instead of recomputing an
    identical baseline per point.
    """
    return (
        config.disk,
        config.cache,
        config.service_time,
        config.service_time_per_block,
    )


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """Aggregate outcome of one parameter value over the suite."""

    value: object
    hit_fraction: float
    miss_fraction: float
    hit_primary_fraction: float
    hit_backup_fraction: float
    energy: float
    savings: float
    shutdowns: int
    delayed_requests: int
    irritating_delays: int
    opportunities: int = 0
    disk_accesses: int = 0


def sweep(
    runner: ExperimentRunner,
    values: Iterable[P],
    *,
    make_config: Optional[Callable[[P], SimulationConfig]] = None,
    make_spec: Optional[
        Callable[[P, SimulationConfig], PredictorSpec]
    ] = None,
    predictor: str = "PCAP",
    applications: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    resilience=None,
    checkpoint=None,
    fused: Optional[bool] = None,
) -> list[SweepPoint]:
    """Run one predictor across the suite for each parameter value.

    Exactly one of ``make_config`` (vary the simulation configuration;
    the predictor is resolved by name per point) or ``make_spec`` (vary
    the predictor itself under the runner's configuration) should be
    given; with neither, the sweep degenerates to a single-point run per
    value (useful for comparing predictor names by passing them as the
    values and ``make_spec=lambda name, cfg: registry.make_spec(...)``).

    ``jobs`` selects the worker count of the parallel execution layer
    (``None`` defers to ``REPRO_JOBS``); ``progress`` receives one
    :class:`~repro.sim.parallel.CellProgress` event per finished cell.

    ``checkpoint`` (a :class:`~repro.sim.resilience.CellCheckpoint` or
    a path) journals every completed cell so a killed sweep can be
    rerun with the same checkpoint and re-execute only the unfinished
    cells; ``resilience`` (a
    :class:`~repro.sim.resilience.ResiliencePolicy`) adds per-cell
    retries and timeouts.  Cells still failing terminally raise
    :class:`~repro.errors.ExecutionError` *after* the completed cells
    were journalled.  Checkpoint cell keys embed the swept value (via
    the cell label) and the point's full configuration, so a changed
    sweep never resumes from stale entries.

    ``fused`` (``None`` defers to the ``REPRO_FUSED`` environment
    variable) evaluates every point's predictor — and the shared Base
    baseline — in one streaming pass per application via
    :mod:`repro.sim.fused` instead of one cell per (point ×
    application).  Results are bit-identical either way; fused is
    purely an execution strategy.  Sweeps that rebuild the
    configuration per point (``make_config``) or record structured
    traces replay the trace per variant anyway, so they keep the
    classic decomposition regardless of ``fused``.
    """
    if make_config is not None and make_spec is not None:
        raise ValueError("pass make_config or make_spec, not both")
    apps = list(applications) if applications else runner.applications
    point_values = list(values)

    if (
        resolve_fused(fused)
        and make_config is None
        and not runner.tracing
    ):
        return _sweep_fused(
            runner,
            point_values,
            make_spec=make_spec,
            predictor=predictor,
            apps=apps,
            jobs=jobs,
            progress=progress,
            resilience=resilience,
            checkpoint=checkpoint,
        )

    # Per-point runners; with_config shares the memoized cache-filtering
    # pass whenever the cache configuration is unchanged.
    point_runners: list[ExperimentRunner] = []
    for value in point_values:
        if make_config is not None:
            point_runners.append(runner.with_config(make_config(value)))
        else:
            point_runners.append(runner)

    # Decompose into cells.  Predictor cells first (point-major, then
    # application order — the fold order of the serial implementation);
    # then one baseline cell per distinct (configuration, application).
    plan: list[tuple[str, int, str]] = []
    cells: list[ExperimentCell] = []

    def add_cell(kind: str, point: int, application: str, label: str) -> None:
        plan.append((kind, point, application))
        cells.append(
            ExperimentCell(
                index=len(cells), application=application, predictor=label
            )
        )

    for point, value in enumerate(point_values):
        for application in apps:
            add_cell("run", point, application, f"{predictor}@{value!r}")

    #: (baseline-relevant config fields, application) → cell position of
    #: its baseline (see _baseline_key).
    baseline_cells: dict[tuple[tuple, str], int] = {}
    sweeping_base = make_spec is None and predictor == "Base"
    for point, point_runner in enumerate(point_runners):
        for position, application in enumerate(apps):
            key = (_baseline_key(point_runner.config), application)
            if key in baseline_cells:
                continue
            if sweeping_base:
                # The swept predictor is the baseline itself; its run
                # cell doubles as the baseline cell.
                baseline_cells[key] = point * len(apps) + position
            else:
                baseline_cells[key] = len(cells)
                add_cell("base", point, application, "Base")

    def run_cell(cell: ExperimentCell) -> ApplicationResult:
        kind, point, application = plan[cell.index]
        point_runner = point_runners[point]
        if kind == "base":
            return point_runner.run_global(application, "Base")
        if make_spec is not None:
            target: str | PredictorSpec = make_spec(
                point_values[point], point_runner.config
            )
        else:
            target = predictor
        return point_runner.run_global(application, target)

    # Warm the shared filter cache in the parent so forked workers (and
    # the serial path) never re-filter applications per point.
    for application in apps:
        runner.filtered(application)

    if resilience is not None or checkpoint is not None:
        from repro.sim.resilience import (
            cell_key,
            raise_on_failures,
            run_cells,
        )

        keys = None
        if checkpoint is not None:
            keys = []
            for cell in cells:
                _, point, application = plan[cell.index]
                keys.append(cell_key(
                    runner.fingerprint(application),
                    cell.predictor,
                    point_runners[point].config,
                ))
        ledger = run_cells(
            cells,
            run_cell,
            jobs=jobs,
            policy=resilience,
            progress=progress,
            checkpoint=checkpoint,
            cell_keys=keys,
            provenance={
                "fused": False, "mode": "global", "multistate": False
            },
        )
        raise_on_failures(ledger, "sweep")
        results = ledger.results
    else:
        results = execute_cells(
            cells, run_cell, jobs=jobs, progress=progress
        )

    points: list[SweepPoint] = []
    for point, value in enumerate(point_values):
        stats = PredictionStats()
        energy = 0.0
        base_energy = 0.0
        shutdowns = 0
        delayed = 0
        irritating = 0
        accesses = 0
        for position, application in enumerate(apps):
            result = results[point * len(apps) + position].result
            stats.merge(result.stats)
            energy += result.energy
            shutdowns += result.shutdowns
            delayed += result.delayed_requests
            irritating += result.irritating_delays
            accesses += result.total_disk_accesses
            key = (_baseline_key(point_runners[point].config), application)
            base_energy += results[baseline_cells[key]].result.energy
        points.append(
            SweepPoint(
                value=value,
                hit_fraction=stats.hit_fraction,
                miss_fraction=stats.miss_fraction,
                hit_primary_fraction=stats.hit_primary_fraction,
                hit_backup_fraction=stats.hit_backup_fraction,
                energy=energy,
                savings=1.0 - energy / base_energy if base_energy else 0.0,
                shutdowns=shutdowns,
                delayed_requests=delayed,
                irritating_delays=irritating,
                opportunities=stats.opportunities,
                disk_accesses=accesses,
            )
        )
    return points


def _sweep_fused(
    runner: ExperimentRunner,
    point_values: list,
    *,
    make_spec,
    predictor: str,
    apps: list[str],
    jobs: Optional[int],
    progress: Optional[ProgressHook],
    resilience,
    checkpoint,
) -> list[SweepPoint]:
    """Application-major sweep through the fused kernel.

    One fused cell per application evaluates every point's spec (plus
    the shared Base baseline) against one decoding of the trace.  The
    per-point fold below is the same accumulation, in the same
    (point-major, application-order) sequence, as the classic path —
    which is what keeps fused sweeps bit-identical.
    """
    from repro.predictors.registry import make_spec as registry_make_spec
    from repro.sim.fused import run_fused_cells

    config = runner.config
    labels = [f"{predictor}@{value!r}" for value in point_values]
    # When the swept predictor *is* the baseline, every point doubles as
    # its own baseline (mirroring the classic cell-sharing rule).
    sweeping_base = make_spec is None and predictor == "Base"
    base_lane: Optional[int] = None
    if not sweeping_base:
        base_lane = len(labels)
        labels.append("Base")

    def make_specs() -> list[PredictorSpec]:
        specs = []
        for value in point_values:
            if make_spec is not None:
                specs.append(make_spec(value, config))
            else:
                specs.append(registry_make_spec(predictor, config))
        if not sweeping_base:
            specs.append(registry_make_spec("Base", config))
        return specs

    outcomes, ledger = run_fused_cells(
        runner,
        apps,
        labels,
        make_specs,
        jobs=jobs,
        progress=progress,
        policy=resilience,
        checkpoint=checkpoint,
        # A make_spec callable is opaque — its cell labels do not pin
        # down the predictor it builds, so persistent artifacts would
        # risk stale hits across code changes.  Registry names do.
        use_cache=make_spec is None,
    )
    if ledger is not None:
        from repro.sim.resilience import raise_on_failures

        raise_on_failures(ledger, "sweep")

    points: list[SweepPoint] = []
    for point, value in enumerate(point_values):
        stats = PredictionStats()
        energy = 0.0
        base_energy = 0.0
        shutdowns = 0
        delayed = 0
        irritating = 0
        accesses = 0
        for application in apps:
            lanes = outcomes[application].results
            result = lanes[point]
            stats.merge(result.stats)
            energy += result.energy
            shutdowns += result.shutdowns
            delayed += result.delayed_requests
            irritating += result.irritating_delays
            accesses += result.total_disk_accesses
            base = lanes[0] if base_lane is None else lanes[base_lane]
            base_energy += base.energy
        points.append(
            SweepPoint(
                value=value,
                hit_fraction=stats.hit_fraction,
                miss_fraction=stats.miss_fraction,
                hit_primary_fraction=stats.hit_primary_fraction,
                hit_backup_fraction=stats.hit_backup_fraction,
                energy=energy,
                savings=1.0 - energy / base_energy if base_energy else 0.0,
                shutdowns=shutdowns,
                delayed_requests=delayed,
                irritating_delays=irritating,
                opportunities=stats.opportunities,
                disk_accesses=accesses,
            )
        )
    return points


def render_sweep(points: Sequence[SweepPoint], title: str) -> str:
    """A compact text table of sweep results."""
    lines = [
        title,
        f"  {'value':>10s} {'hit':>7s} {'miss':>7s} {'savings':>8s} "
        f"{'shutdowns':>9s} {'irritating':>10s}",
    ]
    for point in points:
        lines.append(
            f"  {point.value!s:>10s} {point.hit_fraction:7.1%} "
            f"{point.miss_fraction:7.1%} {point.savings:8.1%} "
            f"{point.shutdowns:9d} {point.irritating_delays:10d}"
        )
    return "\n".join(lines)
