"""Shim: the simulation configuration lives in :mod:`repro.config` (it is
imported by low-level packages and would otherwise drag the whole
:mod:`repro.sim` package — and a circular import — with it)."""

from repro.config import SimulationConfig, paper_config

__all__ = ["SimulationConfig", "paper_config"]
