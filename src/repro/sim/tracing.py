"""Structured simulation tracing — public import path.

The implementation lives in :mod:`repro._tracing` (outside the ``sim``
package) so the low-level emitters can import the event types without a
circular import through the engine; see that module for the event
vocabulary, the :class:`~repro._tracing.TraceRecorder` sink, and the
JSON-lines round trip.
"""

from repro._tracing import *  # noqa: F401,F403
from repro._tracing import __all__  # noqa: F401
