"""The trace-driven simulation engine (paper §6).

Two entry points:

* :func:`evaluate_local_stream` — drive one predictor over one process's
  own disk-access stream and score it (the *local* evaluation of
  Figure 6);
* :func:`run_global_execution` — replay one execution's merged disk
  stream against the system-wide predictor (Global Shutdown Predictor
  over per-process locals, or an omniscient Ideal/Base policy), driving
  the simulated disk for energy accounting (Figures 7–10).

Decision semantics: after each access a process's predictor leaves a
standing :class:`~repro.predictors.base.ShutdownIntent`; the disk is shut
down at the earliest instant all live processes' intents are ready,
provided no request arrives first.  A shutdown's hit/miss classification
is energy-principled (see :mod:`repro.sim.metrics`).

Hot-path structure: the engine consumes the columnar view of the
filtered stream (:mod:`repro.sim.columnar`) — per-access service
durations are evaluated vectorized once per (stream × service-time
configuration) and the merged event schedule is memoized per
(execution × filter result) — and the replay loops bind every method and
counter they touch to locals, with the tracer guard hoisted so untraced
runs never test per-event.  All of this is observationally invisible:
results are bit-identical to the row-oriented implementation (see
DESIGN.md, "columnar bit-identity contract").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.filter import DiskAccess, FilterResult
from repro.core.global_predictor import GlobalShutdownPredictor
from repro.disk.disk import SimulatedDisk
from repro.disk.multistate import MultiStateDisk
from repro.disk.energy import EnergyBreakdown
from repro.errors import SimulationError
from repro.predictors.base import (
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
    classify_gap,
)
from repro.predictors.registry import PredictorSpec
from repro.config import SimulationConfig
from repro.sim.metrics import PredictionStats
from repro.sim.tracing import (
    AccessServed,
    ShutdownCancelled,
    ShutdownFired,
    ShutdownScheduled,
    Tracer,
    UnknownPidRegistered,
    WaitWindowExpired,
)
from repro.traces.events import ExitEvent, ForkEvent
from repro.traces.trace import ExecutionLike
from repro.units import EPSILON

_EPS = EPSILON


def _emit_fired(
    tracer: Tracer,
    gap_start: float,
    gap_length: float,
    offset: float,
    source: PredictorSource,
    breakeven: float,
) -> None:
    """Emit a shutdown-fired event classified exactly like the stats."""
    tracer.emit(
        ShutdownFired(
            time=gap_start + offset,
            offset=offset,
            gap_length=gap_length,
            source=source.value,
            hit=gap_length - offset > breakeven + _EPS,
        )
    )


def _resolve_shutdown(
    intent: ShutdownIntent, gap_length: float
) -> tuple[Optional[float], Optional[PredictorSource]]:
    """Offset at which a standing intent fires within a gap, if it does."""
    if intent.delay is None or intent.delay >= gap_length - _EPS:
        return None, None
    return intent.delay, intent.source


def merged_schedule(
    execution: ExecutionLike, filtered: FilterResult
) -> list[tuple[float, int, object, int]]:
    """The global engine's replay schedule, memoized on ``filtered``.

    Liveness events merge with the filtered disk accesses as
    ``(time, rank, payload, access_index)`` entries; ranks make forks
    precede accesses which precede exits at identical times (ties keep
    stream order — the sort is stable).  ``access_index`` is the access's
    position in ``filtered.accesses`` (``-1`` for liveness events), which
    is how the replay loop finds its precomputed service duration.

    The schedule depends only on the (execution, filter result) pair —
    not on the predictor or the simulation configuration — so replaying
    the same execution under many predictors or sweep points reuses it.
    """
    memo = filtered._schedule
    if memo is not None and memo[0] is execution:
        return memo[1]
    entries: list[tuple[float, int, object, int]] = []
    for event in execution.liveness_events():
        if isinstance(event, ForkEvent):
            entries.append((event.time, 0, event, -1))
        elif isinstance(event, ExitEvent):
            entries.append((event.time, 2, event, -1))
    for index, access in enumerate(filtered.accesses):
        entries.append((access.time, 1, access, index))
    entries.sort(key=lambda item: (item[0], item[1]))
    filtered._schedule = (execution, entries)
    return entries


def evaluate_local_stream(
    accesses: Sequence[DiskAccess],
    predictor: LocalPredictor,
    config: SimulationConfig,
    *,
    start_time: float,
    end_time: float,
    tracer: Optional[Tracer] = None,
) -> PredictionStats:
    """Score ``predictor`` over one process's disk-access stream.

    The stream is the process's own accesses; gaps include the leading
    (process start → first access) and trailing (last access → process
    end) idle periods.  With a ``tracer`` the predictor's decision events
    (signature lookups, training) and every fired shutdown are emitted.
    """
    if end_time < start_time:
        raise SimulationError("stream ends before it starts")
    stats = PredictionStats()
    breakeven = config.breakeven
    wait_window = config.wait_window
    traced = tracer is not None
    if traced:
        predictor.bind_tracing(
            tracer, accesses[0].pid if accesses else 0
        )
    predictor.begin_execution(start_time)
    intent = predictor.initial_intent(start_time)
    busy_end = start_time
    # Hot loop: the service-duration formula and every callback are bound
    # to locals; the arithmetic matches config.access_duration exactly.
    service = config.service_time
    per_block = config.service_time_per_block
    record_gap = stats.record_gap
    on_access = predictor.on_access
    on_idle_end = predictor.on_idle_end
    for access in accesses:
        time = access.time
        if time > busy_end + _EPS:
            gap_length = time - busy_end
            delay = intent.delay
            if delay is None or delay >= gap_length - _EPS:
                record_gap(gap_length, None, None, breakeven)
            else:
                record_gap(gap_length, delay, intent.source, breakeven)
                if traced:
                    _emit_fired(
                        tracer, busy_end, gap_length, delay, intent.source,
                        breakeven,
                    )
            on_idle_end(
                IdleFeedback(
                    start=busy_end,
                    end=time,
                    idle_class=classify_gap(
                        gap_length, wait_window, breakeven
                    ),
                )
            )
        intent = on_access(access)
        if time > busy_end:
            busy_end = time
        busy_end += service + per_block * access.block_count
    if end_time > busy_end + _EPS:
        gap_length = end_time - busy_end
        offset, source = _resolve_shutdown(intent, gap_length)
        record_gap(gap_length, offset, source, breakeven)
        if traced and offset is not None:
            assert source is not None
            _emit_fired(
                tracer, busy_end, gap_length, offset, source, breakeven
            )
        # Trailing idle period trains too (the table is saved at exit).
        on_idle_end(
            IdleFeedback(
                start=busy_end,
                end=end_time,
                idle_class=classify_gap(
                    gap_length, wait_window, breakeven
                ),
            )
        )
    predictor.end_execution(end_time)
    return stats


@dataclass(slots=True)
class ExecutionRunResult:
    """Outcome of one execution under one predictor."""

    stats: PredictionStats
    ledger: EnergyBreakdown
    shutdowns: int
    disk_accesses: int
    #: Requests that waited for a spin-up, the seconds they waited, and
    #: how many of those waits hit an actively-working user (off-window
    #: below breakeven) — the paper's user-irritation argument.
    delayed_requests: int = 0
    delay_seconds: float = 0.0
    irritating_delays: int = 0


def run_global_execution(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    """Replay one execution's merged disk stream under ``spec``.

    ``filtered`` must be the cache-filtered view of ``execution``.  The
    spec's shared state (prediction table, learning tree) carries over
    between calls — that is how table reuse across executions works; the
    caller invokes ``spec.on_execution_end()`` after each execution.

    With ``multistate`` (the paper's §7 extension) the drive drops into
    its low-power idle state as soon as every live process predicts an
    eventual shutdown, then spins down when the combined decision fires —
    "the sliding wait-window can be optimized to put the disk into a
    lower power state immediately".
    """
    if spec.is_omniscient:
        return _run_omniscient(execution, filtered, spec, config, tracer=tracer)
    return _run_local_based(
        execution, filtered, spec, config, multistate=multistate, tracer=tracer
    )


def _run_omniscient(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    policy = spec.omniscient
    assert policy is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()
    traced = tracer is not None
    accesses = filtered.accesses
    columnar = filtered.columnar()
    times = columnar.times_list()
    durations = columnar.durations_list(config)
    serve = disk.serve
    record_gap = stats.record_gap
    shutdown_offset = policy.shutdown_offset
    schedule_shutdown = disk.schedule_shutdown
    busy_until = disk.busy_until

    def handle_gap(gap_length: float) -> None:
        offset = shutdown_offset(gap_length)
        if offset is not None and offset < gap_length - _EPS:
            schedule_shutdown(busy_until + offset)
            record_gap(
                gap_length, offset, PredictorSource.PRIMARY, breakeven
            )
            if traced:
                tracer.emit(
                    ShutdownScheduled(
                        time=busy_until + offset,
                        source=PredictorSource.PRIMARY.value,
                    )
                )
                _emit_fired(
                    tracer,
                    busy_until,
                    gap_length,
                    offset,
                    PredictorSource.PRIMARY,
                    breakeven,
                )
        else:
            record_gap(gap_length, None, None, breakeven)

    for index in range(len(times)):
        time = times[index]
        gap_length = time - busy_until
        if gap_length > _EPS:
            handle_gap(gap_length)
        serve(time, durations[index])
        busy_until = disk.busy_until
        if traced:
            access = accesses[index]
            tracer.emit(
                AccessServed(
                    time=access.time,
                    pid=access.pid,
                    pc=access.pc,
                    block_count=access.block_count,
                    busy_until=busy_until,
                )
            )
    trailing = end - busy_until
    if trailing > _EPS:
        handle_gap(trailing)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )


def _run_local_based(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    assert spec.local_factory is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk: SimulatedDisk
    if multistate:
        disk = MultiStateDisk(config.disk, start_time=start, tracer=tracer)
    else:
        disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()
    combiner = GlobalShutdownPredictor(
        spec.local_factory,
        wait_window=config.wait_window,
        breakeven=breakeven,
        tracer=tracer,
    )
    for pid in execution.initial_pids:
        combiner.process_started(start, pid)

    schedule = merged_schedule(execution, filtered)
    durations = filtered.columnar().durations_list(config)

    traced = tracer is not None
    serve = disk.serve
    schedule_shutdown = disk.schedule_shutdown
    record_gap = stats.record_gap
    on_access = combiner.on_access
    is_live = combiner.is_live
    process_started = combiner.process_started
    process_exited = combiner.process_exited
    decision_fn = combiner.decision

    # The current gap: starts at disk.busy_until after each access.
    # ``window_start`` is the start of the sub-interval during which the
    # current global decision has been stable (liveness changes reset it).
    # ``busy_until`` mirrors disk.busy_until (refreshed after each serve).
    window_start = start
    busy_until = disk.busy_until
    pending: Optional[tuple[float, PredictorSource]] = None
    low_power_entered = False

    def try_shutdown(limit: float) -> None:
        """Fire the global decision inside [window_start, limit) if ready."""
        nonlocal pending, low_power_entered
        if pending is not None or limit <= busy_until + _EPS:
            return
        decision = decision_fn()
        if decision is None:
            return
        if multistate and not low_power_entered:
            entry = max(window_start, busy_until)
            if entry < limit - _EPS:
                assert isinstance(disk, MultiStateDisk)
                disk.enter_low_power(entry)
                low_power_entered = True
        fire_at = max(window_start, decision.ready_time, busy_until)
        if fire_at < limit - _EPS:
            schedule_shutdown(fire_at)
            pending = (fire_at, decision.source)
            if traced:
                tracer.emit(
                    WaitWindowExpired(
                        time=fire_at, source=decision.source.value
                    )
                )
                tracer.emit(
                    ShutdownScheduled(
                        time=fire_at, source=decision.source.value
                    )
                )

    for time, rank, payload, index in schedule:
        if rank == 1:
            access = payload
            try_shutdown(time)
            gap_start = busy_until
            gap_length = time - gap_start
            if (
                traced
                and pending is None
                and gap_length > _EPS
                and decision_fn() is not None
            ):
                # A standing global decision existed in this gap but the
                # arrival beat the wait-window / ready time: cancelled.
                tracer.emit(
                    ShutdownCancelled(time=time, reason="wait-window")
                )
            serve(time, durations[index])
            busy_until = disk.busy_until
            if traced:
                tracer.emit(
                    AccessServed(
                        time=time,
                        pid=access.pid,
                        pc=access.pc,
                        block_count=access.block_count,
                        busy_until=busy_until,
                    )
                )
            if gap_length > _EPS:
                if pending is not None:
                    offset = pending[0] - gap_start
                    record_gap(gap_length, offset, pending[1], breakeven)
                    if traced:
                        _emit_fired(
                            tracer,
                            gap_start,
                            gap_length,
                            offset,
                            pending[1],
                            breakeven,
                        )
                else:
                    record_gap(gap_length, None, None, breakeven)
            if not is_live(access.pid):
                # A pid the trace never introduced (fork unobserved, or
                # absent from initial_pids): register it on the spot so
                # its accesses still feed predictor state instead of
                # silently dropping the update.
                if traced:
                    tracer.emit(
                        UnknownPidRegistered(time=time, pid=access.pid)
                    )
                process_started(time, access.pid)
            on_access(access, busy_until)
            pending = None
            low_power_entered = False
            window_start = busy_until
        elif rank == 0:
            try_shutdown(time)
            # The pid may already be live if an access preceded the fork
            # record (fork observed late) and registered it above.
            if not is_live(payload.pid):
                process_started(time, payload.pid)
            if time > window_start:
                window_start = time
        else:
            try_shutdown(time)
            process_exited(time, payload.pid)
            if time > window_start:
                window_start = time

    try_shutdown(end)
    trailing = end - busy_until
    gap_start = busy_until
    if trailing > _EPS:
        if pending is not None:
            record_gap(trailing, pending[0] - gap_start, pending[1], breakeven)
            if traced:
                _emit_fired(
                    tracer,
                    gap_start,
                    trailing,
                    pending[0] - gap_start,
                    pending[1],
                    breakeven,
                )
        else:
            record_gap(trailing, None, None, breakeven)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(filtered.accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )
