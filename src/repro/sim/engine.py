"""The trace-driven simulation engine (paper §6).

Two entry points:

* :func:`evaluate_local_stream` — drive one predictor over one process's
  own disk-access stream and score it (the *local* evaluation of
  Figure 6);
* :func:`run_global_execution` — replay one execution's merged disk
  stream against the system-wide predictor (Global Shutdown Predictor
  over per-process locals, or an omniscient Ideal/Base policy), driving
  the simulated disk for energy accounting (Figures 7–10).

Decision semantics: after each access a process's predictor leaves a
standing :class:`~repro.predictors.base.ShutdownIntent`; the disk is shut
down at the earliest instant all live processes' intents are ready,
provided no request arrives first.  A shutdown's hit/miss classification
is energy-principled (see :mod:`repro.sim.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.filter import DiskAccess, FilterResult
from repro.core.global_predictor import GlobalShutdownPredictor
from repro.disk.disk import SimulatedDisk
from repro.disk.multistate import MultiStateDisk
from repro.disk.energy import EnergyBreakdown
from repro.errors import SimulationError
from repro.predictors.base import (
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
    classify_gap,
)
from repro.predictors.registry import PredictorSpec
from repro.config import SimulationConfig
from repro.sim.metrics import PredictionStats
from repro.sim.tracing import (
    AccessServed,
    ShutdownCancelled,
    ShutdownFired,
    ShutdownScheduled,
    Tracer,
    UnknownPidRegistered,
    WaitWindowExpired,
)
from repro.traces.events import ExitEvent, ForkEvent
from repro.traces.trace import ExecutionTrace
from repro.units import EPSILON

_EPS = EPSILON


def _emit_fired(
    tracer: Tracer,
    gap_start: float,
    gap_length: float,
    offset: float,
    source: PredictorSource,
    breakeven: float,
) -> None:
    """Emit a shutdown-fired event classified exactly like the stats."""
    tracer.emit(
        ShutdownFired(
            time=gap_start + offset,
            offset=offset,
            gap_length=gap_length,
            source=source.value,
            hit=gap_length - offset > breakeven + _EPS,
        )
    )


def _resolve_shutdown(
    intent: ShutdownIntent, gap_length: float
) -> tuple[Optional[float], Optional[PredictorSource]]:
    """Offset at which a standing intent fires within a gap, if it does."""
    if intent.delay is None or intent.delay >= gap_length - _EPS:
        return None, None
    return intent.delay, intent.source


def evaluate_local_stream(
    accesses: Sequence[DiskAccess],
    predictor: LocalPredictor,
    config: SimulationConfig,
    *,
    start_time: float,
    end_time: float,
    tracer: Optional[Tracer] = None,
) -> PredictionStats:
    """Score ``predictor`` over one process's disk-access stream.

    The stream is the process's own accesses; gaps include the leading
    (process start → first access) and trailing (last access → process
    end) idle periods.  With a ``tracer`` the predictor's decision events
    (signature lookups, training) and every fired shutdown are emitted.
    """
    if end_time < start_time:
        raise SimulationError("stream ends before it starts")
    stats = PredictionStats()
    breakeven = config.breakeven
    if tracer is not None:
        predictor.bind_tracing(
            tracer, accesses[0].pid if accesses else 0
        )
    predictor.begin_execution(start_time)
    intent = predictor.initial_intent(start_time)
    busy_end = start_time
    for access in accesses:
        if access.time > busy_end + _EPS:
            gap_length = access.time - busy_end
            offset, source = _resolve_shutdown(intent, gap_length)
            stats.record_gap(gap_length, offset, source, breakeven)
            if tracer is not None and offset is not None:
                assert source is not None
                _emit_fired(
                    tracer, busy_end, gap_length, offset, source, breakeven
                )
            predictor.on_idle_end(
                IdleFeedback(
                    start=busy_end,
                    end=access.time,
                    idle_class=classify_gap(
                        gap_length, config.wait_window, breakeven
                    ),
                )
            )
        intent = predictor.on_access(access)
        busy_end = max(access.time, busy_end) + config.access_duration(
            access.block_count
        )
    if end_time > busy_end + _EPS:
        gap_length = end_time - busy_end
        offset, source = _resolve_shutdown(intent, gap_length)
        stats.record_gap(gap_length, offset, source, breakeven)
        if tracer is not None and offset is not None:
            assert source is not None
            _emit_fired(
                tracer, busy_end, gap_length, offset, source, breakeven
            )
        # Trailing idle period trains too (the table is saved at exit).
        predictor.on_idle_end(
            IdleFeedback(
                start=busy_end,
                end=end_time,
                idle_class=classify_gap(
                    gap_length, config.wait_window, breakeven
                ),
            )
        )
    predictor.end_execution(end_time)
    return stats


@dataclass(slots=True)
class ExecutionRunResult:
    """Outcome of one execution under one predictor."""

    stats: PredictionStats
    ledger: EnergyBreakdown
    shutdowns: int
    disk_accesses: int
    #: Requests that waited for a spin-up, the seconds they waited, and
    #: how many of those waits hit an actively-working user (off-window
    #: below breakeven) — the paper's user-irritation argument.
    delayed_requests: int = 0
    delay_seconds: float = 0.0
    irritating_delays: int = 0


def run_global_execution(
    execution: ExecutionTrace,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    """Replay one execution's merged disk stream under ``spec``.

    ``filtered`` must be the cache-filtered view of ``execution``.  The
    spec's shared state (prediction table, learning tree) carries over
    between calls — that is how table reuse across executions works; the
    caller invokes ``spec.on_execution_end()`` after each execution.

    With ``multistate`` (the paper's §7 extension) the drive drops into
    its low-power idle state as soon as every live process predicts an
    eventual shutdown, then spins down when the combined decision fires —
    "the sliding wait-window can be optimized to put the disk into a
    lower power state immediately".
    """
    if spec.is_omniscient:
        return _run_omniscient(execution, filtered, spec, config, tracer=tracer)
    return _run_local_based(
        execution, filtered, spec, config, multistate=multistate, tracer=tracer
    )


def _run_omniscient(
    execution: ExecutionTrace,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    policy = spec.omniscient
    assert policy is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()

    def handle_gap(gap_length: float) -> None:
        offset = policy.shutdown_offset(gap_length)
        if offset is not None and offset < gap_length - _EPS:
            disk.schedule_shutdown(disk.busy_until + offset)
            stats.record_gap(
                gap_length, offset, PredictorSource.PRIMARY, breakeven
            )
            if tracer is not None:
                tracer.emit(
                    ShutdownScheduled(
                        time=disk.busy_until + offset,
                        source=PredictorSource.PRIMARY.value,
                    )
                )
                _emit_fired(
                    tracer,
                    disk.busy_until,
                    gap_length,
                    offset,
                    PredictorSource.PRIMARY,
                    breakeven,
                )
        else:
            stats.record_gap(gap_length, None, None, breakeven)

    for access in filtered.accesses:
        gap_length = access.time - disk.busy_until
        if gap_length > _EPS:
            handle_gap(gap_length)
        disk.serve(access.time, config.access_duration(access.block_count))
        if tracer is not None:
            tracer.emit(
                AccessServed(
                    time=access.time,
                    pid=access.pid,
                    pc=access.pc,
                    block_count=access.block_count,
                    busy_until=disk.busy_until,
                )
            )
    trailing = end - disk.busy_until
    if trailing > _EPS:
        handle_gap(trailing)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(filtered.accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )


def _run_local_based(
    execution: ExecutionTrace,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    assert spec.local_factory is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk: SimulatedDisk
    if multistate:
        disk = MultiStateDisk(config.disk, start_time=start, tracer=tracer)
    else:
        disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()
    combiner = GlobalShutdownPredictor(
        spec.local_factory,
        wait_window=config.wait_window,
        breakeven=breakeven,
        tracer=tracer,
    )
    for pid in execution.initial_pids:
        combiner.process_started(start, pid)

    # Merge liveness events with the filtered disk accesses.  Ranks make
    # forks precede accesses which precede exits at identical times.
    events: list[tuple[float, int, object]] = []
    for event in execution.events:
        if isinstance(event, ForkEvent):
            events.append((event.time, 0, event))
        elif isinstance(event, ExitEvent):
            events.append((event.time, 2, event))
    for access in filtered.accesses:
        events.append((access.time, 1, access))
    events.sort(key=lambda item: (item[0], item[1]))

    # The current gap: starts at disk.busy_until after each access.
    # ``window_start`` is the start of the sub-interval during which the
    # current global decision has been stable (liveness changes reset it).
    window_start = start
    pending: Optional[tuple[float, PredictorSource]] = None
    low_power_entered = False

    def try_shutdown(limit: float) -> None:
        """Fire the global decision inside [window_start, limit) if ready."""
        nonlocal pending, low_power_entered
        if pending is not None or limit <= disk.busy_until + _EPS:
            return
        decision = combiner.decision()
        if decision is None:
            return
        if multistate and not low_power_entered:
            entry = max(window_start, disk.busy_until)
            if entry < limit - _EPS:
                assert isinstance(disk, MultiStateDisk)
                disk.enter_low_power(entry)
                low_power_entered = True
        fire_at = max(window_start, decision.ready_time, disk.busy_until)
        if fire_at < limit - _EPS:
            disk.schedule_shutdown(fire_at)
            pending = (fire_at, decision.source)
            if tracer is not None:
                tracer.emit(
                    WaitWindowExpired(
                        time=fire_at, source=decision.source.value
                    )
                )
                tracer.emit(
                    ShutdownScheduled(
                        time=fire_at, source=decision.source.value
                    )
                )

    for time, rank, payload in events:
        if rank == 1:
            access = payload
            assert isinstance(access, DiskAccess)
            try_shutdown(access.time)
            gap_length = access.time - disk.busy_until
            gap_start = disk.busy_until
            if (
                tracer is not None
                and pending is None
                and gap_length > _EPS
                and combiner.decision() is not None
            ):
                # A standing global decision existed in this gap but the
                # arrival beat the wait-window / ready time: cancelled.
                tracer.emit(
                    ShutdownCancelled(time=access.time, reason="wait-window")
                )
            disk.serve(access.time, config.access_duration(access.block_count))
            if tracer is not None:
                tracer.emit(
                    AccessServed(
                        time=access.time,
                        pid=access.pid,
                        pc=access.pc,
                        block_count=access.block_count,
                        busy_until=disk.busy_until,
                    )
                )
            if gap_length > _EPS:
                if pending is not None:
                    stats.record_gap(
                        gap_length,
                        pending[0] - gap_start,
                        pending[1],
                        breakeven,
                    )
                    if tracer is not None:
                        _emit_fired(
                            tracer,
                            gap_start,
                            gap_length,
                            pending[0] - gap_start,
                            pending[1],
                            breakeven,
                        )
                else:
                    stats.record_gap(gap_length, None, None, breakeven)
            if access.pid not in combiner.live_pids:
                # A pid the trace never introduced (fork unobserved, or
                # absent from initial_pids): register it on the spot so
                # its accesses still feed predictor state instead of
                # silently dropping the update.
                if tracer is not None:
                    tracer.emit(
                        UnknownPidRegistered(
                            time=access.time, pid=access.pid
                        )
                    )
                combiner.process_started(access.time, access.pid)
            combiner.on_access(access, disk.busy_until)
            pending = None
            low_power_entered = False
            window_start = disk.busy_until
        elif rank == 0:
            fork = payload
            assert isinstance(fork, ForkEvent)
            try_shutdown(fork.time)
            # The pid may already be live if an access preceded the fork
            # record (fork observed late) and registered it above.
            if fork.pid not in combiner.live_pids:
                combiner.process_started(fork.time, fork.pid)
            window_start = max(window_start, fork.time)
        else:
            exit_event = payload
            assert isinstance(exit_event, ExitEvent)
            try_shutdown(exit_event.time)
            combiner.process_exited(exit_event.time, exit_event.pid)
            window_start = max(window_start, exit_event.time)

    try_shutdown(end)
    trailing = end - disk.busy_until
    gap_start = disk.busy_until
    if trailing > _EPS:
        if pending is not None:
            stats.record_gap(
                trailing, pending[0] - gap_start, pending[1], breakeven
            )
            if tracer is not None:
                _emit_fired(
                    tracer,
                    gap_start,
                    trailing,
                    pending[0] - gap_start,
                    pending[1],
                    breakeven,
                )
        else:
            stats.record_gap(trailing, None, None, breakeven)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(filtered.accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )
