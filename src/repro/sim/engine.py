"""The trace-driven simulation engine (paper §6).

Two entry points:

* :func:`evaluate_local_stream` — drive one predictor over one process's
  own disk-access stream and score it (the *local* evaluation of
  Figure 6);
* :func:`run_global_execution` — replay one execution's merged disk
  stream against the system-wide predictor (Global Shutdown Predictor
  over per-process locals, or an omniscient Ideal/Base policy), driving
  the simulated disk for energy accounting (Figures 7–10).

Decision semantics: after each access a process's predictor leaves a
standing :class:`~repro.predictors.base.ShutdownIntent`; the disk is shut
down at the earliest instant all live processes' intents are ready,
provided no request arrives first.  A shutdown's hit/miss classification
is energy-principled (see :mod:`repro.sim.metrics`).

Hot-path structure: the engine consumes the columnar view of the
filtered stream (:mod:`repro.sim.columnar`) — per-access service
durations are evaluated vectorized once per (stream × service-time
configuration) and the merged event schedule is memoized per
(execution × filter result) — and the replay loops bind every method and
counter they touch to locals, with the tracer guard hoisted so untraced
runs never test per-event.  All of this is observationally invisible:
results are bit-identical to the row-oriented implementation (see
DESIGN.md, "columnar bit-identity contract").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cache.filter import DiskAccess, FilterResult
from repro.core.global_predictor import GlobalShutdownPredictor
from repro.disk.disk import SimulatedDisk
from repro.disk.multistate import MultiStateDisk
from repro.disk.energy import EnergyBreakdown
from repro.errors import SimulationError
from repro.predictors.base import (
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
    classify_gap,
)
from repro.sim.columnar import (
    FB_LONG,
    FB_SHORT,
    FB_SUB_WINDOW,
    TAPE_EXIT,
    TAPE_FORK,
    TAPE_GAP,
    TAPE_SIMPLE,
    ColumnarTape,
)
from repro.predictors.registry import PredictorSpec
from repro.config import SimulationConfig
from repro.sim.metrics import PredictionStats
from repro.sim.tracing import (
    AccessServed,
    ShutdownCancelled,
    ShutdownFired,
    ShutdownScheduled,
    Tracer,
    UnknownPidRegistered,
    WaitWindowExpired,
)
from repro.traces.events import ExitEvent, ForkEvent
from repro.traces.trace import ExecutionLike
from repro.units import EPSILON

_EPS = EPSILON


def _emit_fired(
    tracer: Tracer,
    gap_start: float,
    gap_length: float,
    offset: float,
    source: PredictorSource,
    breakeven: float,
) -> None:
    """Emit a shutdown-fired event classified exactly like the stats."""
    tracer.emit(
        ShutdownFired(
            time=gap_start + offset,
            offset=offset,
            gap_length=gap_length,
            source=source.value,
            hit=gap_length - offset > breakeven + _EPS,
        )
    )


def _resolve_shutdown(
    intent: ShutdownIntent, gap_length: float
) -> tuple[Optional[float], Optional[PredictorSource]]:
    """Offset at which a standing intent fires within a gap, if it does."""
    if intent.delay is None or intent.delay >= gap_length - _EPS:
        return None, None
    return intent.delay, intent.source


def merged_schedule(
    execution: ExecutionLike, filtered: FilterResult
) -> list[tuple[float, int, object, int]]:
    """The global engine's replay schedule, memoized on ``filtered``.

    Liveness events merge with the filtered disk accesses as
    ``(time, rank, payload, access_index)`` entries; ranks make forks
    precede accesses which precede exits at identical times (ties keep
    stream order — the sort is stable).  ``access_index`` is the access's
    position in ``filtered.accesses`` (``-1`` for liveness events), which
    is how the replay loop finds its precomputed service duration.

    The schedule depends only on the (execution, filter result) pair —
    not on the predictor or the simulation configuration — so replaying
    the same execution under many predictors or sweep points reuses it.
    """
    memo = filtered._schedule
    if memo is not None and memo[0] is execution:
        return memo[1]
    entries: list[tuple[float, int, object, int]] = []
    for event in execution.liveness_events():
        if isinstance(event, ForkEvent):
            entries.append((event.time, 0, event, -1))
        elif isinstance(event, ExitEvent):
            entries.append((event.time, 2, event, -1))
    for index, access in enumerate(filtered.accesses):
        entries.append((access.time, 1, access, index))
    entries.sort(key=lambda item: (item[0], item[1]))
    filtered._schedule = (execution, entries)
    return entries


# ---------------------------------------------------------------------------
# Shared replay tape (the fused multi-predictor kernel's front end).
#
# Requests are serialized but never stretch the timeline (spin-up latency
# is energy-only — see repro.disk.disk), so the whole busy/gap structure
# of an execution — disk busy intervals, gap boundaries, per-process idle
# feedback, liveness, window starts, the busy-energy sum — is a function
# of the (execution, filter result, configuration) triple alone and is
# *identical under every predictor*.  ``build_replay_tape`` factors that
# predictor-independent skeleton out of the replay loop below into a
# :class:`~repro.sim.columnar.ColumnarTape` — parallel NumPy columns,
# one row per schedule step — that :mod:`repro.sim.fused` replays once
# per predictor variant, touching only the per-variant state (predictor
# instances, standing intents, the pending shutdown, stats and gap
# energy).  Every boundary predicate and every float expression matches
# the classic loop exactly, which is what makes fused results
# bit-identical.
#
# Two builders produce byte-identical columns: ``_build_tape_vectorized``
# computes the access columns as whole-array expressions over the
# columnar access view (falling back to a minimal scalar recurrence for
# the busy clock only when back-to-back serialization occurs) with a
# small boundary loop at liveness events, and ``_build_tape_sequential``
# is the straight-line port of the historical per-step builder, kept as
# the fallback for shapes the vector pass declines (and as the oracle
# the test suite byte-diffs the vector builder against).
# ---------------------------------------------------------------------------


#: Historical name of the tape type (pre-columnar tuple-list API); the
#: columnar tape replaced it in place, so the alias keeps imports alive.
ReplayTape = ColumnarTape


class _VectorUnsupported(Exception):
    """Internal: the vectorized tape builder declines this execution."""


#: Access count below which :func:`build_replay_tape` skips the
#: vectorized builder (measured crossover vs the sequential one).
_VECTOR_BUILD_MIN_ACCESSES = 256


def build_replay_tape(
    execution: ExecutionLike,
    filtered: FilterResult,
    config: SimulationConfig,
) -> ColumnarTape:
    """Build the shared replay skeleton of one execution (see
    :class:`~repro.sim.columnar.ColumnarTape`): one vectorized pass over
    the columnar access view, mirroring ``_run_local_based`` +
    :class:`~repro.disk.disk.SimulatedDisk` expression for expression.
    The returned tape is bound to ``filtered.accesses`` (the generic
    replay lane resolves ``access_index`` through it).

    Short executions take the sequential builder directly: the
    vectorized pass carries a fixed NumPy dispatch cost that only pays
    for itself past a few hundred accesses (the same crossover as the
    replay lanes' :data:`~repro.sim.fused.VECTOR_MIN_STEPS`).  Both
    builders emit byte-identical tapes, so the cutoff is purely a
    performance knob."""
    tape = None
    if len(filtered.accesses) >= _VECTOR_BUILD_MIN_ACCESSES:
        try:
            tape = _build_tape_vectorized(execution, filtered, config)
        except _VectorUnsupported:
            tape = None
    if tape is None:
        tape = _build_tape_sequential(execution, filtered, config)
    tape.bind_accesses(filtered.accesses)
    return tape


def _set_tape_finals(
    tape: ColumnarTape,
    config: SimulationConfig,
    end: float,
    busy_until: float,
    window_start: float,
    anchors: dict,
) -> None:
    """Fill the trailing-gap scalars shared by both tape builders."""
    idle_power = config.disk.idle_power
    breakeven = config.breakeven
    tape.end_can_fire = end > busy_until + _EPS
    trailing = end - busy_until
    tape.end_record = trailing > _EPS
    tape.trailing = trailing
    tape.final_window_start = window_start
    tape.final_busy_until = busy_until
    gap_end = end if end > busy_until else busy_until
    tape.final_gap_end = gap_end
    tape.final_idle_full = idle_power * (gap_end - busy_until)
    tape.final_long = gap_end - busy_until > breakeven
    tape.final_anchor_max = (
        max(anchors.values()) if (tape.end_can_fire and anchors) else None
    )


def _classify_code(
    feedback_length: float, wait_window: float, breakeven: float
) -> int:
    """Feedback-class code of a resolved idle period (-1 = none).

    Same thresholds as :func:`~repro.predictors.base.classify_gap`
    including the 1e-9 delivery gate, returning the tape's ``fb_class``
    code instead of an enum.
    """
    if feedback_length > 1e-9:
        if feedback_length > breakeven:
            return FB_LONG
        if feedback_length > wait_window:
            return FB_SHORT
        return FB_SUB_WINDOW
    return -1


def _build_tape_sequential(
    execution: ExecutionLike,
    filtered: FilterResult,
    config: SimulationConfig,
) -> ColumnarTape:
    """Column-filling port of the historical per-step tape builder.

    The same pass also assembles the loop lanes' step views (see
    :meth:`~repro.sim.columnar.ColumnarTape.replay_views`) — every
    per-step value is already in a local, so building the tuples here
    costs a fraction of a second post-build pass over the columns, and
    short executions (the ones routed to this builder) replay mostly
    through those views."""
    from repro.predictors.base import IdleClass, IdleFeedback

    fb_classes = (IdleClass.SUB_WINDOW, IdleClass.SHORT, IdleClass.LONG)
    schedule = merged_schedule(execution, filtered)
    durations = filtered.columnar().durations_list(config)
    params = config.disk
    busy_power = params.busy_power
    idle_power = params.idle_power
    breakeven = config.breakeven
    wait_window = config.wait_window
    start, end = execution.start_time, execution.end_time
    nan = float("nan")

    c_op: list[int] = []
    c_time: list[float] = []
    c_cf: list[bool] = []
    c_rec: list[bool] = []
    c_ws: list[float] = []
    c_bu: list[float] = []
    c_gl: list[float] = []
    c_if: list[float] = []
    c_lp: list[bool] = []
    c_ge: list[float] = []
    c_ba: list[float] = []
    c_reg: list[bool] = []
    c_pid: list[int] = []
    c_ai: list[int] = []
    c_am: list[float] = []
    c_fs: list[float] = []
    c_fe: list[float] = []
    c_fc: list[int] = []

    tape = ColumnarTape()
    tape.start = start
    tape.end = end
    tape.n_accesses = len(filtered.accesses)

    views: list = []
    views_append = views.append
    simple_run: Optional[list] = None
    busy_until = start
    window_start = start
    busy_energy = 0.0
    # pid -> intent anchor: slot creation time, then last access
    # completion (doubles as the per-process feedback gap start).
    anchors: dict[int, float] = {}
    initial_pids = tuple(execution.initial_pids)
    tape.initial_pids = initial_pids
    for pid in initial_pids:
        anchors[pid] = start

    for time, rank, payload, index in schedule:
        if rank == 1:
            pid = payload.pid
            duration = durations[index]
            can_fire = time > busy_until + _EPS
            gap_length = time - busy_until
            record = gap_length > _EPS
            register = pid not in anchors
            if register:
                fb_start = nan
                fb_class = -1
            else:
                fb_start = anchors[pid]
                fb_class = _classify_code(
                    time - fb_start, wait_window, breakeven
                )
            if time < busy_until - _EPS:
                # Back-to-back: serialized behind the current request,
                # no gap resolution.
                if can_fire or record:  # pragma: no cover - contradiction
                    raise SimulationError("gap inside a busy interval")
                busy_after = busy_until + duration
            else:
                busy_after = time + duration
            gap_end = time if time > busy_until else busy_until
            rel = gap_end - busy_until
            idle_full = idle_power * rel
            anchor_max = (
                max(anchors.values()) if (can_fire and anchors) else None
            )
            feedback = (
                IdleFeedback(
                    start=fb_start, end=time,
                    idle_class=fb_classes[fb_class],
                )
                if fb_class >= 0
                else None
            )
            is_gap = can_fire or record
            c_op.append(TAPE_GAP if is_gap else TAPE_SIMPLE)
            c_time.append(time)
            c_cf.append(can_fire)
            c_rec.append(record)
            c_ws.append(window_start)
            c_bu.append(busy_until)
            c_gl.append(gap_length)
            c_if.append(idle_full)
            c_lp.append(rel > breakeven)
            c_ge.append(gap_end)
            c_ba.append(busy_after)
            c_reg.append(register)
            c_pid.append(pid)
            c_ai.append(index)
            c_am.append(nan if anchor_max is None else anchor_max)
            c_fs.append(fb_start)
            c_fe.append(time)
            c_fc.append(fb_class)
            if is_gap:
                simple_run = None
                views_append(
                    (TAPE_GAP, time, can_fire, record, window_start,
                     busy_until, gap_length, idle_full, rel > breakeven,
                     gap_end, busy_after, register, pid, feedback,
                     payload, anchor_max)
                )
            else:
                item = (
                    pid, payload, feedback, busy_after, register,
                    idle_full,
                )
                if simple_run is None:
                    simple_run = [item]
                    views_append((TAPE_SIMPLE, simple_run))
                else:
                    simple_run.append(item)
            anchors[pid] = busy_after
            busy_energy += busy_power * duration
            busy_until = busy_after
            window_start = busy_until
        elif rank == 0:
            pid = payload.pid
            can_fire = time > busy_until + _EPS
            is_new = pid not in anchors
            anchor_max = (
                max(anchors.values()) if (can_fire and anchors) else None
            )
            c_op.append(TAPE_FORK)
            c_time.append(time)
            c_cf.append(can_fire)
            c_rec.append(False)
            c_ws.append(window_start)
            c_bu.append(busy_until)
            c_gl.append(0.0)
            c_if.append(0.0)
            c_lp.append(False)
            c_ge.append(0.0)
            c_ba.append(0.0)
            c_reg.append(is_new)
            c_pid.append(pid)
            c_ai.append(-1)
            c_am.append(nan if anchor_max is None else anchor_max)
            c_fs.append(nan)
            c_fe.append(nan)
            c_fc.append(-1)
            simple_run = None
            views_append(
                (TAPE_FORK, time, can_fire, window_start, busy_until,
                 pid, is_new, anchor_max)
            )
            if is_new:
                anchors[pid] = time
            if time > window_start:
                window_start = time
        else:
            pid = payload.pid
            anchor = anchors.get(pid)
            if anchor is None:
                raise SimulationError(f"exit of unknown pid {pid}")
            can_fire = time > busy_until + _EPS
            # The try-point precedes the exit: the decision still spans
            # the exiting process, so its anchor is part of the max.
            anchor_max = (
                max(anchors.values()) if (can_fire and anchors) else None
            )
            fb_class = _classify_code(time - anchor, wait_window, breakeven)
            c_op.append(TAPE_EXIT)
            c_time.append(time)
            c_cf.append(can_fire)
            c_rec.append(False)
            c_ws.append(window_start)
            c_bu.append(busy_until)
            c_gl.append(0.0)
            c_if.append(0.0)
            c_lp.append(False)
            c_ge.append(0.0)
            c_ba.append(0.0)
            c_reg.append(False)
            c_pid.append(pid)
            c_ai.append(-1)
            c_am.append(nan if anchor_max is None else anchor_max)
            del anchors[pid]
            c_fs.append(anchor)
            c_fe.append(time)
            c_fc.append(fb_class)
            simple_run = None
            views_append(
                (TAPE_EXIT, time, can_fire, window_start, busy_until,
                 pid,
                 IdleFeedback(
                     start=anchor, end=time,
                     idle_class=fb_classes[fb_class],
                 )
                 if fb_class >= 0
                 else None,
                 anchor_max)
            )
            if time > window_start:
                window_start = time

    tape.op = np.array(c_op, dtype=np.uint8)
    tape.times = np.array(c_time, dtype=np.float64)
    tape.can_fire = np.array(c_cf, dtype=bool)
    tape.record = np.array(c_rec, dtype=bool)
    tape.window_start = np.array(c_ws, dtype=np.float64)
    tape.busy_until = np.array(c_bu, dtype=np.float64)
    tape.gap_length = np.array(c_gl, dtype=np.float64)
    tape.idle_full = np.array(c_if, dtype=np.float64)
    tape.long_period = np.array(c_lp, dtype=bool)
    tape.gap_end = np.array(c_ge, dtype=np.float64)
    tape.busy_after = np.array(c_ba, dtype=np.float64)
    tape.register = np.array(c_reg, dtype=bool)
    tape.pids = np.array(c_pid, dtype=np.int64)
    tape.access_index = np.array(c_ai, dtype=np.int64)
    tape.anchor_max = np.array(c_am, dtype=np.float64)
    tape.fb_start = np.array(c_fs, dtype=np.float64)
    tape.fb_end = np.array(c_fe, dtype=np.float64)
    tape.fb_class = np.array(c_fc, dtype=np.int8)
    tape.busy_energy = busy_energy
    # The views were assembled against this exact access list, so the
    # tape comes out pre-bound; ``bind_accesses`` with the same object
    # keeps the memo (a pickled clone still starts unbound).
    tape._accesses = filtered.accesses
    tape._views = views
    _set_tape_finals(tape, config, end, busy_until, window_start, anchors)
    return tape


def _build_tape_vectorized(
    execution: ExecutionLike,
    filtered: FilterResult,
    config: SimulationConfig,
) -> Optional[ColumnarTape]:
    """Whole-array tape builder over ``filtered.columnar()``.

    The per-access columns (gap boundaries, idle energies, try-shutdown
    gates, feedback classes) are elementwise expressions of the access
    times and the busy clock; the busy clock itself is ``times +
    durations`` whenever no access is serialized behind its predecessor,
    and otherwise falls back to a minimal scalar recurrence (the
    prefix-sum alternative would reassociate additions and break bit
    identity).  Liveness events only touch the columns at their schedule
    positions, so they run as a small boundary loop over contiguous
    access segments (each segment's ``anchor_max``/``register``/feedback
    columns vectorize) and the final columns are assembled with one
    ``np.insert`` per column.  When the execution has no liveness events
    the access arrays *are* the tape columns — zero copies.

    Raises :class:`_VectorUnsupported` (caught by the caller) for the
    handful of shapes the sequential builder handles more simply: empty
    access streams, executions with no initial pids, an access before
    the execution start, a non-monotone busy clock, or an anchor set
    that goes empty mid-stream.
    """
    cols = filtered.columnar()
    n = len(cols.times)
    initial_pids = tuple(execution.initial_pids)
    if n == 0 or not initial_pids:
        raise _VectorUnsupported
    params = config.disk
    busy_power = params.busy_power
    idle_power = params.idle_power
    breakeven = config.breakeven
    wait_window = config.wait_window
    start, end = execution.start_time, execution.end_time

    t = cols.times
    if t[0] < start or np.any(t[1:] < t[:-1]):
        raise _VectorUnsupported
    d = np.asarray(cols.durations_list(config), dtype=np.float64)

    # Busy clock: candidate assumes no serialization; keep it if every
    # access lands at-or-after its predecessor's completion (within EPS —
    # the engine's back-to-back predicate), else replay the recurrence
    # scalar (the only sequential dependency in the whole build).
    busy_cand = t + d
    prev_cand = np.empty(n, dtype=np.float64)
    prev_cand[0] = start
    prev_cand[1:] = busy_cand[:-1]
    if np.all(t >= prev_cand - _EPS):
        busy_after = busy_cand
        prev_busy = prev_cand
    else:
        t_l = t.tolist()
        d_l = d.tolist()
        prev_l = []
        busy = start
        for i in range(n):
            prev_l.append(busy)
            ti = t_l[i]
            if ti < busy - _EPS:
                busy = busy + d_l[i]
            else:
                busy = ti + d_l[i]
        prev_busy = np.array(prev_l, dtype=np.float64)
        busy_after = np.where(t < prev_busy - _EPS, prev_busy + d, t + d)
    if np.any(busy_after[1:] < busy_after[:-1]):
        raise _VectorUnsupported

    # Elementwise access columns (uniform formulas — for back-to-back
    # steps gap_end - prev_busy is exactly +0.0, so idle_full and
    # long_period reduce to the scalar builder's hardcoded 0.0/False).
    can_fire = t > prev_busy + _EPS
    gap_length = t - prev_busy
    record = gap_length > _EPS
    gap_end = np.where(t > prev_busy, t, prev_busy)
    rel = gap_end - prev_busy
    idle_full = idle_power * rel
    long_period = rel > breakeven
    op_col = np.where(can_fire | record, TAPE_GAP, TAPE_SIMPLE).astype(
        np.uint8
    )
    pids = cols.pids

    # Per-process predecessor (within the access stream): feedback gaps
    # start at the previous access's completion.
    prev_same = np.full(n, -1, dtype=np.int64)
    for idx in cols.per_process_indices().values():
        prev_same[idx[1:]] = idx[:-1]
    anchor_val = np.where(
        prev_same >= 0, busy_after[np.maximum(prev_same, 0)], np.nan
    )

    # Liveness events, sorted exactly like merged_schedule (stable on
    # (time, rank)), with each event's schedule position in the access
    # stream: forks precede same-time accesses, exits follow them.
    liv_entries: list[tuple[float, int, int, object]] = []
    for order, event in enumerate(execution.liveness_events()):
        if isinstance(event, ForkEvent):
            liv_entries.append((event.time, 0, order, event))
        elif isinstance(event, ExitEvent):
            liv_entries.append((event.time, 2, order, event))
    liv_entries.sort(key=lambda item: (item[0], item[1], item[2]))
    l_pos = [
        int(np.searchsorted(t, T, side="left" if rank == 0 else "right"))
        for (T, rank, _order, _event) in liv_entries
    ]

    anchors: dict[int, float] = dict.fromkeys(initial_pids, start)
    register = np.zeros(n, dtype=bool)
    anchor_max = np.full(n, np.nan)
    ws_col = prev_busy.copy() if liv_entries else prev_busy
    nan = float("nan")

    # Per-liveness-step column values, in schedule order.
    lv_op: list[int] = []
    lv_t: list[float] = []
    lv_cf: list[bool] = []
    lv_ws: list[float] = []
    lv_bu: list[float] = []
    lv_pid: list[int] = []
    lv_reg: list[bool] = []
    lv_am: list[float] = []
    lv_fs: list[float] = []
    lv_fe: list[float] = []
    lv_fc: list[int] = []

    state = {"ws": start}

    def flush_segment(lo: int, hi: int) -> None:
        """Resolve anchors/register/anchor_max over accesses [lo, hi)."""
        if lo >= hi:
            return
        if not anchors:
            raise _VectorUnsupported
        carry = max(anchors.values())
        seg_prev = prev_busy[lo:hi]
        am_seg = np.maximum(carry, seg_prev)
        # Within a segment prev_busy[i] equals busy_after[i-1], which is
        # the anchor the access at i-1 just wrote, so the running max is
        # max(carry, prev_busy[i]) — except at the segment head, where
        # prev_busy may belong to a pid an exit just removed.
        am_seg[0] = carry
        anchor_max[lo:hi] = np.where(can_fire[lo:hi], am_seg, np.nan)
        seg_pids = pids[lo:hi]
        uniq, first = np.unique(seg_pids, return_index=True)
        for pid_v, fpos in zip(uniq.tolist(), first.tolist()):
            i = lo + fpos
            known = anchors.get(pid_v)
            if known is None:
                register[i] = True
                anchor_val[i] = np.nan
            else:
                anchor_val[i] = known
        anchors.update(
            zip(seg_pids.tolist(), busy_after[lo:hi].tolist())
        )
        state["ws"] = float(busy_after[hi - 1])

    seg_lo = 0
    for (T, rank, _order, event), a in zip(liv_entries, l_pos):
        flush_segment(seg_lo, a)
        seg_lo = a
        bu = float(prev_busy[a]) if a < n else float(busy_after[-1])
        cf = T > bu + _EPS
        pid = event.pid
        if rank == 0:
            is_new = pid not in anchors
            am = max(anchors.values()) if (cf and anchors) else None
            lv_op.append(TAPE_FORK)
            lv_reg.append(is_new)
            lv_fs.append(nan)
            lv_fe.append(nan)
            lv_fc.append(-1)
            if is_new:
                anchors[pid] = T
        else:
            anchor = anchors.get(pid)
            if anchor is None:
                raise SimulationError(f"exit of unknown pid {pid}")
            am = max(anchors.values()) if (cf and anchors) else None
            del anchors[pid]
            lv_op.append(TAPE_EXIT)
            lv_reg.append(False)
            lv_fs.append(anchor)
            lv_fe.append(T)
            lv_fc.append(_classify_code(T - anchor, wait_window, breakeven))
        lv_t.append(T)
        lv_cf.append(cf)
        lv_ws.append(state["ws"])
        lv_bu.append(bu)
        lv_pid.append(pid)
        lv_am.append(nan if am is None else am)
        if T > state["ws"]:
            state["ws"] = T
        if a < n:
            ws_col[a] = state["ws"]
    flush_segment(seg_lo, n)

    # Feedback columns for accesses (NaN anchors compare False, which
    # the has-feedback mask already excludes).
    with np.errstate(invalid="ignore"):
        fb_len = t - anchor_val
        has_fb = (~register) & (fb_len > 1e-9)
        fb_code = np.where(
            fb_len > breakeven,
            FB_LONG,
            np.where(fb_len > wait_window, FB_SHORT, FB_SUB_WINDOW),
        )
    fb_class = np.where(has_fb, fb_code, -1).astype(np.int8)

    tape = ColumnarTape()
    tape.start = start
    tape.end = end
    tape.initial_pids = initial_pids
    tape.n_accesses = n
    if liv_entries:
        pos = l_pos
        tape.op = np.insert(op_col, pos, np.asarray(lv_op, dtype=np.uint8))
        tape.times = np.insert(t, pos, lv_t)
        tape.can_fire = np.insert(can_fire, pos, lv_cf)
        tape.record = np.insert(record, pos, False)
        tape.window_start = np.insert(ws_col, pos, lv_ws)
        tape.busy_until = np.insert(prev_busy, pos, lv_bu)
        tape.gap_length = np.insert(gap_length, pos, 0.0)
        tape.idle_full = np.insert(idle_full, pos, 0.0)
        tape.long_period = np.insert(long_period, pos, False)
        tape.gap_end = np.insert(gap_end, pos, 0.0)
        tape.busy_after = np.insert(busy_after, pos, 0.0)
        tape.register = np.insert(register, pos, lv_reg)
        tape.pids = np.insert(pids, pos, lv_pid)
        tape.access_index = np.insert(
            np.arange(n, dtype=np.int64), pos, -1
        )
        tape.anchor_max = np.insert(anchor_max, pos, lv_am)
        tape.fb_start = np.insert(anchor_val, pos, lv_fs)
        tape.fb_end = np.insert(t, pos, lv_fe)
        tape.fb_class = np.insert(
            fb_class, pos, np.asarray(lv_fc, dtype=np.int8)
        )
    else:
        # No liveness: the access arrays ARE the tape columns
        # (times/pids stay zero-copy views of the columnar access view).
        tape.op = op_col
        tape.times = t
        tape.can_fire = can_fire
        tape.record = record
        tape.window_start = ws_col
        tape.busy_until = prev_busy
        tape.gap_length = gap_length
        tape.idle_full = idle_full
        tape.long_period = long_period
        tape.gap_end = gap_end
        tape.busy_after = busy_after
        tape.register = register
        tape.pids = pids
        tape.access_index = np.arange(n, dtype=np.int64)
        tape.anchor_max = anchor_max
        tape.fb_start = anchor_val
        tape.fb_end = t
        tape.fb_class = fb_class
    tape.busy_energy = (
        float(np.add.accumulate(busy_power * d)[-1]) if n else 0.0
    )
    _set_tape_finals(
        tape, config, end, float(busy_after[-1]), state["ws"], anchors
    )
    return tape


def evaluate_local_stream(
    accesses: Sequence[DiskAccess],
    predictor: LocalPredictor,
    config: SimulationConfig,
    *,
    start_time: float,
    end_time: float,
    tracer: Optional[Tracer] = None,
) -> PredictionStats:
    """Score ``predictor`` over one process's disk-access stream.

    The stream is the process's own accesses; gaps include the leading
    (process start → first access) and trailing (last access → process
    end) idle periods.  With a ``tracer`` the predictor's decision events
    (signature lookups, training) and every fired shutdown are emitted.
    """
    if end_time < start_time:
        raise SimulationError("stream ends before it starts")
    stats = PredictionStats()
    breakeven = config.breakeven
    wait_window = config.wait_window
    traced = tracer is not None
    if traced:
        predictor.bind_tracing(
            tracer, accesses[0].pid if accesses else 0
        )
    predictor.begin_execution(start_time)
    intent = predictor.initial_intent(start_time)
    busy_end = start_time
    # Hot loop: the service-duration formula and every callback are bound
    # to locals; the arithmetic matches config.access_duration exactly.
    service = config.service_time
    per_block = config.service_time_per_block
    record_gap = stats.record_gap
    on_access = predictor.on_access
    on_idle_end = predictor.on_idle_end
    for access in accesses:
        time = access.time
        if time > busy_end + _EPS:
            gap_length = time - busy_end
            delay = intent.delay
            if delay is None or delay >= gap_length - _EPS:
                record_gap(gap_length, None, None, breakeven)
            else:
                record_gap(gap_length, delay, intent.source, breakeven)
                if traced:
                    _emit_fired(
                        tracer, busy_end, gap_length, delay, intent.source,
                        breakeven,
                    )
            on_idle_end(
                IdleFeedback(
                    start=busy_end,
                    end=time,
                    idle_class=classify_gap(
                        gap_length, wait_window, breakeven
                    ),
                )
            )
        intent = on_access(access)
        if time > busy_end:
            busy_end = time
        busy_end += service + per_block * access.block_count
    if end_time > busy_end + _EPS:
        gap_length = end_time - busy_end
        offset, source = _resolve_shutdown(intent, gap_length)
        record_gap(gap_length, offset, source, breakeven)
        if traced and offset is not None:
            assert source is not None
            _emit_fired(
                tracer, busy_end, gap_length, offset, source, breakeven
            )
        # Trailing idle period trains too (the table is saved at exit).
        on_idle_end(
            IdleFeedback(
                start=busy_end,
                end=end_time,
                idle_class=classify_gap(
                    gap_length, wait_window, breakeven
                ),
            )
        )
    predictor.end_execution(end_time)
    return stats


@dataclass(slots=True)
class ExecutionRunResult:
    """Outcome of one execution under one predictor."""

    stats: PredictionStats
    ledger: EnergyBreakdown
    shutdowns: int
    disk_accesses: int
    #: Requests that waited for a spin-up, the seconds they waited, and
    #: how many of those waits hit an actively-working user (off-window
    #: below breakeven) — the paper's user-irritation argument.
    delayed_requests: int = 0
    delay_seconds: float = 0.0
    irritating_delays: int = 0


def run_global_execution(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    """Replay one execution's merged disk stream under ``spec``.

    ``filtered`` must be the cache-filtered view of ``execution``.  The
    spec's shared state (prediction table, learning tree) carries over
    between calls — that is how table reuse across executions works; the
    caller invokes ``spec.on_execution_end()`` after each execution.

    With ``multistate`` (the paper's §7 extension) the drive drops into
    its low-power idle state as soon as every live process predicts an
    eventual shutdown, then spins down when the combined decision fires —
    "the sliding wait-window can be optimized to put the disk into a
    lower power state immediately".
    """
    if spec.is_omniscient:
        return _run_omniscient(execution, filtered, spec, config, tracer=tracer)
    return _run_local_based(
        execution, filtered, spec, config, multistate=multistate, tracer=tracer
    )


def _run_omniscient(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    policy = spec.omniscient
    assert policy is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()
    traced = tracer is not None
    accesses = filtered.accesses
    columnar = filtered.columnar()
    times = columnar.times_list()
    durations = columnar.durations_list(config)
    serve = disk.serve
    record_gap = stats.record_gap
    shutdown_offset = policy.shutdown_offset
    schedule_shutdown = disk.schedule_shutdown
    busy_until = disk.busy_until

    def handle_gap(gap_length: float) -> None:
        offset = shutdown_offset(gap_length)
        if offset is not None and offset < gap_length - _EPS:
            schedule_shutdown(busy_until + offset)
            record_gap(
                gap_length, offset, PredictorSource.PRIMARY, breakeven
            )
            if traced:
                tracer.emit(
                    ShutdownScheduled(
                        time=busy_until + offset,
                        source=PredictorSource.PRIMARY.value,
                    )
                )
                _emit_fired(
                    tracer,
                    busy_until,
                    gap_length,
                    offset,
                    PredictorSource.PRIMARY,
                    breakeven,
                )
        else:
            record_gap(gap_length, None, None, breakeven)

    for index in range(len(times)):
        time = times[index]
        gap_length = time - busy_until
        if gap_length > _EPS:
            handle_gap(gap_length)
        serve(time, durations[index])
        busy_until = disk.busy_until
        if traced:
            access = accesses[index]
            tracer.emit(
                AccessServed(
                    time=access.time,
                    pid=access.pid,
                    pc=access.pc,
                    block_count=access.block_count,
                    busy_until=busy_until,
                )
            )
    trailing = end - busy_until
    if trailing > _EPS:
        handle_gap(trailing)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )


def _run_local_based(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    assert spec.local_factory is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk: SimulatedDisk
    if multistate:
        disk = MultiStateDisk(config.disk, start_time=start, tracer=tracer)
    else:
        disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()
    combiner = GlobalShutdownPredictor(
        spec.local_factory,
        wait_window=config.wait_window,
        breakeven=breakeven,
        tracer=tracer,
    )
    for pid in execution.initial_pids:
        combiner.process_started(start, pid)

    schedule = merged_schedule(execution, filtered)
    durations = filtered.columnar().durations_list(config)

    traced = tracer is not None
    serve = disk.serve
    schedule_shutdown = disk.schedule_shutdown
    record_gap = stats.record_gap
    on_access = combiner.on_access
    is_live = combiner.is_live
    process_started = combiner.process_started
    process_exited = combiner.process_exited
    decision_fn = combiner.decision

    # The current gap: starts at disk.busy_until after each access.
    # ``window_start`` is the start of the sub-interval during which the
    # current global decision has been stable (liveness changes reset it).
    # ``busy_until`` mirrors disk.busy_until (refreshed after each serve).
    window_start = start
    busy_until = disk.busy_until
    pending: Optional[tuple[float, PredictorSource]] = None
    low_power_entered = False

    def try_shutdown(limit: float) -> None:
        """Fire the global decision inside [window_start, limit) if ready."""
        nonlocal pending, low_power_entered
        if pending is not None or limit <= busy_until + _EPS:
            return
        decision = decision_fn()
        if decision is None:
            return
        if multistate and not low_power_entered:
            entry = max(window_start, busy_until)
            if entry < limit - _EPS:
                assert isinstance(disk, MultiStateDisk)
                disk.enter_low_power(entry)
                low_power_entered = True
        fire_at = max(window_start, decision.ready_time, busy_until)
        if fire_at < limit - _EPS:
            schedule_shutdown(fire_at)
            pending = (fire_at, decision.source)
            if traced:
                tracer.emit(
                    WaitWindowExpired(
                        time=fire_at, source=decision.source.value
                    )
                )
                tracer.emit(
                    ShutdownScheduled(
                        time=fire_at, source=decision.source.value
                    )
                )

    for time, rank, payload, index in schedule:
        if rank == 1:
            access = payload
            try_shutdown(time)
            gap_start = busy_until
            gap_length = time - gap_start
            if (
                traced
                and pending is None
                and gap_length > _EPS
                and decision_fn() is not None
            ):
                # A standing global decision existed in this gap but the
                # arrival beat the wait-window / ready time: cancelled.
                tracer.emit(
                    ShutdownCancelled(time=time, reason="wait-window")
                )
            serve(time, durations[index])
            busy_until = disk.busy_until
            if traced:
                tracer.emit(
                    AccessServed(
                        time=time,
                        pid=access.pid,
                        pc=access.pc,
                        block_count=access.block_count,
                        busy_until=busy_until,
                    )
                )
            if gap_length > _EPS:
                if pending is not None:
                    offset = pending[0] - gap_start
                    record_gap(gap_length, offset, pending[1], breakeven)
                    if traced:
                        _emit_fired(
                            tracer,
                            gap_start,
                            gap_length,
                            offset,
                            pending[1],
                            breakeven,
                        )
                else:
                    record_gap(gap_length, None, None, breakeven)
            if not is_live(access.pid):
                # A pid the trace never introduced (fork unobserved, or
                # absent from initial_pids): register it on the spot so
                # its accesses still feed predictor state instead of
                # silently dropping the update.
                if traced:
                    tracer.emit(
                        UnknownPidRegistered(time=time, pid=access.pid)
                    )
                process_started(time, access.pid)
            on_access(access, busy_until)
            pending = None
            low_power_entered = False
            window_start = busy_until
        elif rank == 0:
            try_shutdown(time)
            # The pid may already be live if an access preceded the fork
            # record (fork observed late) and registered it above.
            if not is_live(payload.pid):
                process_started(time, payload.pid)
            if time > window_start:
                window_start = time
        else:
            try_shutdown(time)
            process_exited(time, payload.pid)
            if time > window_start:
                window_start = time

    try_shutdown(end)
    trailing = end - busy_until
    gap_start = busy_until
    if trailing > _EPS:
        if pending is not None:
            record_gap(trailing, pending[0] - gap_start, pending[1], breakeven)
            if traced:
                _emit_fired(
                    tracer,
                    gap_start,
                    trailing,
                    pending[0] - gap_start,
                    pending[1],
                    breakeven,
                )
        else:
            record_gap(trailing, None, None, breakeven)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(filtered.accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )
