"""The trace-driven simulation engine (paper §6).

Two entry points:

* :func:`evaluate_local_stream` — drive one predictor over one process's
  own disk-access stream and score it (the *local* evaluation of
  Figure 6);
* :func:`run_global_execution` — replay one execution's merged disk
  stream against the system-wide predictor (Global Shutdown Predictor
  over per-process locals, or an omniscient Ideal/Base policy), driving
  the simulated disk for energy accounting (Figures 7–10).

Decision semantics: after each access a process's predictor leaves a
standing :class:`~repro.predictors.base.ShutdownIntent`; the disk is shut
down at the earliest instant all live processes' intents are ready,
provided no request arrives first.  A shutdown's hit/miss classification
is energy-principled (see :mod:`repro.sim.metrics`).

Hot-path structure: the engine consumes the columnar view of the
filtered stream (:mod:`repro.sim.columnar`) — per-access service
durations are evaluated vectorized once per (stream × service-time
configuration) and the merged event schedule is memoized per
(execution × filter result) — and the replay loops bind every method and
counter they touch to locals, with the tracer guard hoisted so untraced
runs never test per-event.  All of this is observationally invisible:
results are bit-identical to the row-oriented implementation (see
DESIGN.md, "columnar bit-identity contract").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.filter import DiskAccess, FilterResult
from repro.core.global_predictor import GlobalShutdownPredictor
from repro.disk.disk import SimulatedDisk
from repro.disk.multistate import MultiStateDisk
from repro.disk.energy import EnergyBreakdown
from repro.errors import SimulationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
    classify_gap,
)
from repro.predictors.registry import PredictorSpec
from repro.config import SimulationConfig
from repro.sim.metrics import PredictionStats
from repro.sim.tracing import (
    AccessServed,
    ShutdownCancelled,
    ShutdownFired,
    ShutdownScheduled,
    Tracer,
    UnknownPidRegistered,
    WaitWindowExpired,
)
from repro.traces.events import ExitEvent, ForkEvent
from repro.traces.trace import ExecutionLike
from repro.units import EPSILON

_EPS = EPSILON


def _emit_fired(
    tracer: Tracer,
    gap_start: float,
    gap_length: float,
    offset: float,
    source: PredictorSource,
    breakeven: float,
) -> None:
    """Emit a shutdown-fired event classified exactly like the stats."""
    tracer.emit(
        ShutdownFired(
            time=gap_start + offset,
            offset=offset,
            gap_length=gap_length,
            source=source.value,
            hit=gap_length - offset > breakeven + _EPS,
        )
    )


def _resolve_shutdown(
    intent: ShutdownIntent, gap_length: float
) -> tuple[Optional[float], Optional[PredictorSource]]:
    """Offset at which a standing intent fires within a gap, if it does."""
    if intent.delay is None or intent.delay >= gap_length - _EPS:
        return None, None
    return intent.delay, intent.source


def merged_schedule(
    execution: ExecutionLike, filtered: FilterResult
) -> list[tuple[float, int, object, int]]:
    """The global engine's replay schedule, memoized on ``filtered``.

    Liveness events merge with the filtered disk accesses as
    ``(time, rank, payload, access_index)`` entries; ranks make forks
    precede accesses which precede exits at identical times (ties keep
    stream order — the sort is stable).  ``access_index`` is the access's
    position in ``filtered.accesses`` (``-1`` for liveness events), which
    is how the replay loop finds its precomputed service duration.

    The schedule depends only on the (execution, filter result) pair —
    not on the predictor or the simulation configuration — so replaying
    the same execution under many predictors or sweep points reuses it.
    """
    memo = filtered._schedule
    if memo is not None and memo[0] is execution:
        return memo[1]
    entries: list[tuple[float, int, object, int]] = []
    for event in execution.liveness_events():
        if isinstance(event, ForkEvent):
            entries.append((event.time, 0, event, -1))
        elif isinstance(event, ExitEvent):
            entries.append((event.time, 2, event, -1))
    for index, access in enumerate(filtered.accesses):
        entries.append((access.time, 1, access, index))
    entries.sort(key=lambda item: (item[0], item[1]))
    filtered._schedule = (execution, entries)
    return entries


# ---------------------------------------------------------------------------
# Shared replay tape (the fused multi-predictor kernel's front end).
#
# Requests are serialized but never stretch the timeline (spin-up latency
# is energy-only — see repro.disk.disk), so the whole busy/gap structure
# of an execution — disk busy intervals, gap boundaries, per-process idle
# feedback, liveness, window starts, the busy-energy sum — is a function
# of the (execution, filter result, configuration) triple alone and is
# *identical under every predictor*.  ``build_replay_tape`` factors that
# predictor-independent skeleton out of the replay loop below into a flat
# step list that :mod:`repro.sim.fused` replays once per predictor
# variant, touching only the per-variant state (predictor instances,
# standing intents, the pending shutdown, stats and gap energy).  Every
# boundary predicate and every float expression matches the classic loop
# exactly, which is what makes fused results bit-identical.
# ---------------------------------------------------------------------------

#: Tape opcodes (first element of each step tuple).
TAPE_SIMPLE = 0  #: access with no actionable gap (back-to-back or <= EPS)
TAPE_GAP = 1  #: access ending a gap a shutdown could fire in
TAPE_FORK = 2  #: process fork (liveness + try-point)
TAPE_EXIT = 3  #: process exit (liveness + trailing feedback + try-point)


class ReplayTape:
    """Predictor-independent skeleton of one execution's replay.

    ``steps`` is a flat list of tuples, one per schedule event:

    * ``TAPE_SIMPLE``: ``(op, pid, access, feedback, busy_after,
      register, idle_full)`` — an access arriving while the disk is busy
      (or within EPSILON of it): no shutdown can fire, no gap is
      recorded; ``idle_full`` is the (possibly zero) idle energy of the
      sub-EPSILON resolved gap.
    * ``TAPE_GAP``: ``(op, time, can_fire, record, window_start,
      busy_until, gap_length, idle_full, long_period, gap_end,
      busy_after, register, pid, feedback, access, anchor_max)`` — an
      access ending a real gap.  ``can_fire`` is the engine's
      try-shutdown gate, ``record`` its stats gate (distinct float
      predicates, kept separately on purpose), ``idle_full`` the
      no-shutdown idle energy, ``anchor_max`` the latest live intent
      anchor (see below).
    * ``TAPE_FORK``: ``(op, time, can_fire, window_start, busy_until,
      pid, is_new, anchor_max)``.
    * ``TAPE_EXIT``: ``(op, time, can_fire, window_start, busy_until,
      pid, feedback, anchor_max)``.

    ``feedback`` entries are prebuilt (shared, immutable)
    :class:`~repro.predictors.base.IdleFeedback` objects — per-process
    idle periods are predictor-independent, so one object serves every
    variant.  ``anchor_max`` is the maximum, over live processes, of the
    time their standing intent is anchored to (slot creation time before
    the first access, last access completion after); for constant-delay
    predictors (TP) the global ready time is exactly ``anchor_max +
    delay``, which is what lets the fused kernel run timeout lanes
    without materializing per-process state (IEEE-754 addition is
    monotonic, so ``max(a_i) + d == max(a_i + d)`` bit-for-bit).
    """

    __slots__ = (
        "steps",
        "start",
        "end",
        "initial_pids",
        "busy_energy",
        "n_accesses",
        "end_can_fire",
        "end_record",
        "trailing",
        "final_window_start",
        "final_busy_until",
        "final_gap_end",
        "final_idle_full",
        "final_long",
        "final_anchor_max",
    )

    def __init__(self) -> None:
        self.steps: list[tuple] = []


def build_replay_tape(
    execution: ExecutionLike,
    filtered: FilterResult,
    config: SimulationConfig,
) -> ReplayTape:
    """Build the shared replay skeleton of one execution (see
    :class:`ReplayTape`).  One pass over the merged schedule, mirroring
    ``_run_local_based`` + :class:`~repro.disk.disk.SimulatedDisk`
    expression for expression."""
    schedule = merged_schedule(execution, filtered)
    durations = filtered.columnar().durations_list(config)
    params = config.disk
    busy_power = params.busy_power
    idle_power = params.idle_power
    breakeven = config.breakeven
    wait_window = config.wait_window
    start, end = execution.start_time, execution.end_time

    tape = ReplayTape()
    steps = tape.steps
    append = steps.append
    tape.start = start
    tape.end = end
    tape.n_accesses = len(filtered.accesses)

    busy_until = start
    window_start = start
    busy_energy = 0.0
    #: pid -> intent anchor: slot creation time, then last access
    #: completion (doubles as the per-process feedback gap start).
    anchors: dict[int, float] = {}
    initial_pids = tuple(execution.initial_pids)
    tape.initial_pids = initial_pids
    for pid in initial_pids:
        anchors[pid] = start

    LONG = IdleClass.LONG
    SHORT = IdleClass.SHORT
    SUB_WINDOW = IdleClass.SUB_WINDOW

    for time, rank, payload, index in schedule:
        if rank == 1:
            pid = payload.pid
            duration = durations[index]
            can_fire = time > busy_until + _EPS
            gap_length = time - busy_until
            record = gap_length > _EPS
            register = pid not in anchors
            if register:
                feedback = None
            else:
                anchor = anchors[pid]
                feedback_length = time - anchor
                if feedback_length > 1e-9:
                    if feedback_length > breakeven:
                        idle_class = LONG
                    elif feedback_length > wait_window:
                        idle_class = SHORT
                    else:
                        idle_class = SUB_WINDOW
                    feedback = IdleFeedback(
                        start=anchor, end=time, idle_class=idle_class
                    )
                else:
                    feedback = None
            if time < busy_until - _EPS:
                # Back-to-back: serialized behind the current request,
                # no gap resolution.
                busy_after = busy_until + duration
                if can_fire or record:  # pragma: no cover - contradiction
                    raise SimulationError("gap inside a busy interval")
                append(
                    (TAPE_SIMPLE, pid, payload, feedback, busy_after,
                     register, 0.0)
                )
            else:
                gap_end = time if time > busy_until else busy_until
                idle_full = idle_power * (gap_end - busy_until)
                busy_after = time + duration
                if can_fire or record:
                    anchor_max = (
                        max(anchors.values())
                        if (can_fire and anchors)
                        else None
                    )
                    append(
                        (TAPE_GAP, time, can_fire, record, window_start,
                         busy_until, gap_length, idle_full,
                         gap_end - busy_until > breakeven, gap_end,
                         busy_after, register, pid, feedback, payload,
                         anchor_max)
                    )
                else:
                    append(
                        (TAPE_SIMPLE, pid, payload, feedback, busy_after,
                         register, idle_full)
                    )
            anchors[pid] = busy_after
            busy_energy += busy_power * duration
            busy_until = busy_after
            window_start = busy_until
        elif rank == 0:
            pid = payload.pid
            can_fire = time > busy_until + _EPS
            is_new = pid not in anchors
            anchor_max = (
                max(anchors.values()) if (can_fire and anchors) else None
            )
            append(
                (TAPE_FORK, time, can_fire, window_start, busy_until, pid,
                 is_new, anchor_max)
            )
            if is_new:
                anchors[pid] = time
            if time > window_start:
                window_start = time
        else:
            pid = payload.pid
            anchor = anchors.get(pid)
            if anchor is None:
                raise SimulationError(f"exit of unknown pid {pid}")
            can_fire = time > busy_until + _EPS
            # The try-point precedes the exit: the decision still spans
            # the exiting process, so its anchor is part of the max.
            anchor_max = (
                max(anchors.values()) if (can_fire and anchors) else None
            )
            del anchors[pid]
            feedback_length = time - anchor
            if feedback_length > 1e-9:
                feedback = IdleFeedback(
                    start=anchor,
                    end=time,
                    idle_class=classify_gap(
                        feedback_length, wait_window, breakeven
                    ),
                )
            else:
                feedback = None
            append(
                (TAPE_EXIT, time, can_fire, window_start, busy_until, pid,
                 feedback, anchor_max)
            )
            if time > window_start:
                window_start = time

    tape.busy_energy = busy_energy
    tape.end_can_fire = end > busy_until + _EPS
    trailing = end - busy_until
    tape.end_record = trailing > _EPS
    tape.trailing = trailing
    tape.final_window_start = window_start
    tape.final_busy_until = busy_until
    gap_end = end if end > busy_until else busy_until
    tape.final_gap_end = gap_end
    tape.final_idle_full = idle_power * (gap_end - busy_until)
    tape.final_long = gap_end - busy_until > breakeven
    tape.final_anchor_max = (
        max(anchors.values()) if (tape.end_can_fire and anchors) else None
    )
    return tape


def evaluate_local_stream(
    accesses: Sequence[DiskAccess],
    predictor: LocalPredictor,
    config: SimulationConfig,
    *,
    start_time: float,
    end_time: float,
    tracer: Optional[Tracer] = None,
) -> PredictionStats:
    """Score ``predictor`` over one process's disk-access stream.

    The stream is the process's own accesses; gaps include the leading
    (process start → first access) and trailing (last access → process
    end) idle periods.  With a ``tracer`` the predictor's decision events
    (signature lookups, training) and every fired shutdown are emitted.
    """
    if end_time < start_time:
        raise SimulationError("stream ends before it starts")
    stats = PredictionStats()
    breakeven = config.breakeven
    wait_window = config.wait_window
    traced = tracer is not None
    if traced:
        predictor.bind_tracing(
            tracer, accesses[0].pid if accesses else 0
        )
    predictor.begin_execution(start_time)
    intent = predictor.initial_intent(start_time)
    busy_end = start_time
    # Hot loop: the service-duration formula and every callback are bound
    # to locals; the arithmetic matches config.access_duration exactly.
    service = config.service_time
    per_block = config.service_time_per_block
    record_gap = stats.record_gap
    on_access = predictor.on_access
    on_idle_end = predictor.on_idle_end
    for access in accesses:
        time = access.time
        if time > busy_end + _EPS:
            gap_length = time - busy_end
            delay = intent.delay
            if delay is None or delay >= gap_length - _EPS:
                record_gap(gap_length, None, None, breakeven)
            else:
                record_gap(gap_length, delay, intent.source, breakeven)
                if traced:
                    _emit_fired(
                        tracer, busy_end, gap_length, delay, intent.source,
                        breakeven,
                    )
            on_idle_end(
                IdleFeedback(
                    start=busy_end,
                    end=time,
                    idle_class=classify_gap(
                        gap_length, wait_window, breakeven
                    ),
                )
            )
        intent = on_access(access)
        if time > busy_end:
            busy_end = time
        busy_end += service + per_block * access.block_count
    if end_time > busy_end + _EPS:
        gap_length = end_time - busy_end
        offset, source = _resolve_shutdown(intent, gap_length)
        record_gap(gap_length, offset, source, breakeven)
        if traced and offset is not None:
            assert source is not None
            _emit_fired(
                tracer, busy_end, gap_length, offset, source, breakeven
            )
        # Trailing idle period trains too (the table is saved at exit).
        on_idle_end(
            IdleFeedback(
                start=busy_end,
                end=end_time,
                idle_class=classify_gap(
                    gap_length, wait_window, breakeven
                ),
            )
        )
    predictor.end_execution(end_time)
    return stats


@dataclass(slots=True)
class ExecutionRunResult:
    """Outcome of one execution under one predictor."""

    stats: PredictionStats
    ledger: EnergyBreakdown
    shutdowns: int
    disk_accesses: int
    #: Requests that waited for a spin-up, the seconds they waited, and
    #: how many of those waits hit an actively-working user (off-window
    #: below breakeven) — the paper's user-irritation argument.
    delayed_requests: int = 0
    delay_seconds: float = 0.0
    irritating_delays: int = 0


def run_global_execution(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    """Replay one execution's merged disk stream under ``spec``.

    ``filtered`` must be the cache-filtered view of ``execution``.  The
    spec's shared state (prediction table, learning tree) carries over
    between calls — that is how table reuse across executions works; the
    caller invokes ``spec.on_execution_end()`` after each execution.

    With ``multistate`` (the paper's §7 extension) the drive drops into
    its low-power idle state as soon as every live process predicts an
    eventual shutdown, then spins down when the combined decision fires —
    "the sliding wait-window can be optimized to put the disk into a
    lower power state immediately".
    """
    if spec.is_omniscient:
        return _run_omniscient(execution, filtered, spec, config, tracer=tracer)
    return _run_local_based(
        execution, filtered, spec, config, multistate=multistate, tracer=tracer
    )


def _run_omniscient(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    policy = spec.omniscient
    assert policy is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()
    traced = tracer is not None
    accesses = filtered.accesses
    columnar = filtered.columnar()
    times = columnar.times_list()
    durations = columnar.durations_list(config)
    serve = disk.serve
    record_gap = stats.record_gap
    shutdown_offset = policy.shutdown_offset
    schedule_shutdown = disk.schedule_shutdown
    busy_until = disk.busy_until

    def handle_gap(gap_length: float) -> None:
        offset = shutdown_offset(gap_length)
        if offset is not None and offset < gap_length - _EPS:
            schedule_shutdown(busy_until + offset)
            record_gap(
                gap_length, offset, PredictorSource.PRIMARY, breakeven
            )
            if traced:
                tracer.emit(
                    ShutdownScheduled(
                        time=busy_until + offset,
                        source=PredictorSource.PRIMARY.value,
                    )
                )
                _emit_fired(
                    tracer,
                    busy_until,
                    gap_length,
                    offset,
                    PredictorSource.PRIMARY,
                    breakeven,
                )
        else:
            record_gap(gap_length, None, None, breakeven)

    for index in range(len(times)):
        time = times[index]
        gap_length = time - busy_until
        if gap_length > _EPS:
            handle_gap(gap_length)
        serve(time, durations[index])
        busy_until = disk.busy_until
        if traced:
            access = accesses[index]
            tracer.emit(
                AccessServed(
                    time=access.time,
                    pid=access.pid,
                    pc=access.pc,
                    block_count=access.block_count,
                    busy_until=busy_until,
                )
            )
    trailing = end - busy_until
    if trailing > _EPS:
        handle_gap(trailing)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )


def _run_local_based(
    execution: ExecutionLike,
    filtered: FilterResult,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    multistate: bool = False,
    tracer: Optional[Tracer] = None,
) -> ExecutionRunResult:
    assert spec.local_factory is not None
    breakeven = config.breakeven
    start, end = execution.start_time, execution.end_time
    disk: SimulatedDisk
    if multistate:
        disk = MultiStateDisk(config.disk, start_time=start, tracer=tracer)
    else:
        disk = SimulatedDisk(config.disk, start_time=start, tracer=tracer)
    stats = PredictionStats()
    combiner = GlobalShutdownPredictor(
        spec.local_factory,
        wait_window=config.wait_window,
        breakeven=breakeven,
        tracer=tracer,
    )
    for pid in execution.initial_pids:
        combiner.process_started(start, pid)

    schedule = merged_schedule(execution, filtered)
    durations = filtered.columnar().durations_list(config)

    traced = tracer is not None
    serve = disk.serve
    schedule_shutdown = disk.schedule_shutdown
    record_gap = stats.record_gap
    on_access = combiner.on_access
    is_live = combiner.is_live
    process_started = combiner.process_started
    process_exited = combiner.process_exited
    decision_fn = combiner.decision

    # The current gap: starts at disk.busy_until after each access.
    # ``window_start`` is the start of the sub-interval during which the
    # current global decision has been stable (liveness changes reset it).
    # ``busy_until`` mirrors disk.busy_until (refreshed after each serve).
    window_start = start
    busy_until = disk.busy_until
    pending: Optional[tuple[float, PredictorSource]] = None
    low_power_entered = False

    def try_shutdown(limit: float) -> None:
        """Fire the global decision inside [window_start, limit) if ready."""
        nonlocal pending, low_power_entered
        if pending is not None or limit <= busy_until + _EPS:
            return
        decision = decision_fn()
        if decision is None:
            return
        if multistate and not low_power_entered:
            entry = max(window_start, busy_until)
            if entry < limit - _EPS:
                assert isinstance(disk, MultiStateDisk)
                disk.enter_low_power(entry)
                low_power_entered = True
        fire_at = max(window_start, decision.ready_time, busy_until)
        if fire_at < limit - _EPS:
            schedule_shutdown(fire_at)
            pending = (fire_at, decision.source)
            if traced:
                tracer.emit(
                    WaitWindowExpired(
                        time=fire_at, source=decision.source.value
                    )
                )
                tracer.emit(
                    ShutdownScheduled(
                        time=fire_at, source=decision.source.value
                    )
                )

    for time, rank, payload, index in schedule:
        if rank == 1:
            access = payload
            try_shutdown(time)
            gap_start = busy_until
            gap_length = time - gap_start
            if (
                traced
                and pending is None
                and gap_length > _EPS
                and decision_fn() is not None
            ):
                # A standing global decision existed in this gap but the
                # arrival beat the wait-window / ready time: cancelled.
                tracer.emit(
                    ShutdownCancelled(time=time, reason="wait-window")
                )
            serve(time, durations[index])
            busy_until = disk.busy_until
            if traced:
                tracer.emit(
                    AccessServed(
                        time=time,
                        pid=access.pid,
                        pc=access.pc,
                        block_count=access.block_count,
                        busy_until=busy_until,
                    )
                )
            if gap_length > _EPS:
                if pending is not None:
                    offset = pending[0] - gap_start
                    record_gap(gap_length, offset, pending[1], breakeven)
                    if traced:
                        _emit_fired(
                            tracer,
                            gap_start,
                            gap_length,
                            offset,
                            pending[1],
                            breakeven,
                        )
                else:
                    record_gap(gap_length, None, None, breakeven)
            if not is_live(access.pid):
                # A pid the trace never introduced (fork unobserved, or
                # absent from initial_pids): register it on the spot so
                # its accesses still feed predictor state instead of
                # silently dropping the update.
                if traced:
                    tracer.emit(
                        UnknownPidRegistered(time=time, pid=access.pid)
                    )
                process_started(time, access.pid)
            on_access(access, busy_until)
            pending = None
            low_power_entered = False
            window_start = busy_until
        elif rank == 0:
            try_shutdown(time)
            # The pid may already be live if an access preceded the fork
            # record (fork observed late) and registered it above.
            if not is_live(payload.pid):
                process_started(time, payload.pid)
            if time > window_start:
                window_start = time
        else:
            try_shutdown(time)
            process_exited(time, payload.pid)
            if time > window_start:
                window_start = time

    try_shutdown(end)
    trailing = end - busy_until
    gap_start = busy_until
    if trailing > _EPS:
        if pending is not None:
            record_gap(trailing, pending[0] - gap_start, pending[1], breakeven)
            if traced:
                _emit_fired(
                    tracer,
                    gap_start,
                    trailing,
                    pending[0] - gap_start,
                    pending[1],
                    breakeven,
                )
        else:
            record_gap(trailing, None, None, breakeven)
    disk.finalize(end)
    return ExecutionRunResult(
        stats=stats,
        ledger=disk.ledger,
        shutdowns=disk.shutdown_count,
        disk_accesses=len(filtered.accesses),
        delayed_requests=disk.delayed_requests,
        delay_seconds=disk.delay_seconds,
        irritating_delays=disk.irritating_delays,
    )
