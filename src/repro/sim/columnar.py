"""Columnar (structure-of-arrays) view of a filtered disk-access stream.

The simulation hot loops — gap extraction in the local evaluation, the
merged-stream replay of the global engine — consume the same handful of
per-access scalars (arrival time, pid, pc, fd, block count) over and over:
once per predictor, once per sweep point, once per figure.  Pulling those
scalars out of the row-oriented :class:`~repro.cache.filter.DiskAccess`
dataclasses on every pass costs an attribute lookup per field per access
per replay.

:class:`ColumnarAccesses` transposes the stream once into NumPy arrays
(built lazily, memoized on the owning
:class:`~repro.cache.filter.FilterResult`), from which the engine obtains:

* plain-Python lists of times and per-access service durations (the
  duration formula is evaluated vectorized, then materialized with
  ``.tolist()`` — bit-identical to evaluating
  :meth:`~repro.config.SimulationConfig.access_duration` per access,
  because both perform the same two IEEE-754 double operations per
  element);
* per-process index groupings for the local (Figure 6) evaluation;
* the raw arrays for vectorized analytics (gap statistics, reductions).

**Bit-identity contract:** every value handed back to the simulation is
numerically identical — same bits — to what the row-oriented code
computed.  Durations use only elementwise ``service_time +
service_time_per_block * block_count`` (no reassociation, no fused
multiply-add in NumPy's elementwise path for float64), and the arrays are
materialized back into Python floats before entering the sequential
simulation recurrences, whose evaluation order is unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cache.filter import DiskAccess
    from repro.config import SimulationConfig


class ColumnarAccesses:
    """NumPy columns of one execution's filtered disk-access stream."""

    __slots__ = (
        "times",
        "pids",
        "pcs",
        "fds",
        "block_counts",
        "_durations",
        "_per_process_indices",
    )

    def __init__(
        self,
        times: np.ndarray,
        pids: np.ndarray,
        pcs: np.ndarray,
        fds: np.ndarray,
        block_counts: np.ndarray,
    ) -> None:
        self.times = times
        self.pids = pids
        self.pcs = pcs
        self.fds = fds
        self.block_counts = block_counts
        #: (service_time, service_time_per_block) -> durations list memo.
        self._durations: dict[tuple[float, float], list[float]] = {}
        self._per_process_indices: Optional[dict[int, np.ndarray]] = None

    @classmethod
    def from_accesses(
        cls, accesses: Sequence["DiskAccess"]
    ) -> "ColumnarAccesses":
        """Transpose a row-oriented access stream (one pass per column)."""
        n = len(accesses)
        times = np.fromiter(
            (a.time for a in accesses), dtype=np.float64, count=n
        )
        pids = np.fromiter((a.pid for a in accesses), dtype=np.int64, count=n)
        pcs = np.fromiter((a.pc for a in accesses), dtype=np.int64, count=n)
        fds = np.fromiter((a.fd for a in accesses), dtype=np.int64, count=n)
        counts = np.fromiter(
            (a.block_count for a in accesses), dtype=np.int64, count=n
        )
        return cls(times, pids, pcs, fds, counts)

    @classmethod
    def from_arrays(
        cls,
        times: np.ndarray,
        pids: np.ndarray,
        pcs: np.ndarray,
        fds: np.ndarray,
        block_counts: np.ndarray,
    ) -> "ColumnarAccesses":
        """Wrap pre-built column arrays (e.g. slices of trace-store
        memmaps) without copying; dtypes are normalized to the canonical
        float64/int64 layout."""
        return cls(
            np.ascontiguousarray(times, dtype=np.float64),
            np.ascontiguousarray(pids, dtype=np.int64),
            np.ascontiguousarray(pcs, dtype=np.int64),
            np.ascontiguousarray(fds, dtype=np.int64),
            np.ascontiguousarray(block_counts, dtype=np.int64),
        )

    @classmethod
    def concat(
        cls, chunks: Sequence["ColumnarAccesses"]
    ) -> "ColumnarAccesses":
        """Assemble one view from per-chunk views, in order.

        Used to stitch chunk-windowed columns (the trace store's bounded
        read path) back into a single execution-wide view; concatenation
        preserves every element bitwise, so the result is
        indistinguishable from a single-pass transpose.
        """
        if not chunks:
            return cls.from_accesses([])
        if len(chunks) == 1:
            return chunks[0]
        return cls(
            np.concatenate([c.times for c in chunks]),
            np.concatenate([c.pids for c in chunks]),
            np.concatenate([c.pcs for c in chunks]),
            np.concatenate([c.fds for c in chunks]),
            np.concatenate([c.block_counts for c in chunks]),
        )

    def __len__(self) -> int:
        return len(self.times)

    def durations_list(self, config: "SimulationConfig") -> list[float]:
        """Per-access service durations as plain floats (memoized).

        Vectorized evaluation of
        :meth:`~repro.config.SimulationConfig.access_duration`; each
        element is bit-identical to the scalar formula.
        """
        key = (config.service_time, config.service_time_per_block)
        cached = self._durations.get(key)
        if cached is None:
            cached = (
                config.service_time
                + config.service_time_per_block * self.block_counts
            ).tolist()
            self._durations[key] = cached
        return cached

    def times_list(self) -> list[float]:
        """Arrival times as plain floats (fast sequential consumption)."""
        return self.times.tolist()

    def per_process_indices(self) -> dict[int, np.ndarray]:
        """``pid -> positions`` of each process's accesses, in stream order
        (memoized)."""
        if self._per_process_indices is None:
            order = np.argsort(self.pids, kind="stable")
            sorted_pids = self.pids[order]
            boundaries = np.nonzero(np.diff(sorted_pids))[0] + 1
            groups = np.split(order, boundaries)
            self._per_process_indices = {
                int(self.pids[group[0]]): np.sort(group)
                for group in groups
                if len(group)
            }
        return self._per_process_indices

    def gap_lengths(self, *, lead_in: float) -> np.ndarray:
        """Arrival-to-arrival gaps (vectorized analytics helper).

        ``lead_in`` is the stream start time; element ``i`` is the time
        from the previous arrival (or the stream start) to arrival ``i``.
        This ignores service time — it is an upper bound on idle time
        used by coarse analytics, not by the engine.
        """
        if not len(self.times):
            return np.empty(0, dtype=np.float64)
        previous = np.concatenate(([lead_in], self.times[:-1]))
        return self.times - previous
