"""Columnar (structure-of-arrays) view of a filtered disk-access stream.

The simulation hot loops — gap extraction in the local evaluation, the
merged-stream replay of the global engine — consume the same handful of
per-access scalars (arrival time, pid, pc, fd, block count) over and over:
once per predictor, once per sweep point, once per figure.  Pulling those
scalars out of the row-oriented :class:`~repro.cache.filter.DiskAccess`
dataclasses on every pass costs an attribute lookup per field per access
per replay.

:class:`ColumnarAccesses` transposes the stream once into NumPy arrays
(built lazily, memoized on the owning
:class:`~repro.cache.filter.FilterResult`), from which the engine obtains:

* plain-Python lists of times and per-access service durations (the
  duration formula is evaluated vectorized, then materialized with
  ``.tolist()`` — bit-identical to evaluating
  :meth:`~repro.config.SimulationConfig.access_duration` per access,
  because both perform the same two IEEE-754 double operations per
  element);
* per-process index groupings for the local (Figure 6) evaluation;
* the raw arrays for vectorized analytics (gap statistics, reductions).

**Bit-identity contract:** every value handed back to the simulation is
numerically identical — same bits — to what the row-oriented code
computed.  Durations use only elementwise ``service_time +
service_time_per_block * block_count`` (no reassociation, no fused
multiply-add in NumPy's elementwise path for float64), and the arrays are
materialized back into Python floats before entering the sequential
simulation recurrences, whose evaluation order is unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cache.filter import DiskAccess
    from repro.config import SimulationConfig
    from repro.sim.experiment import ApplicationResult


#: Replay-tape opcodes — the values of :class:`ColumnarTape`'s ``op``
#: column and the first element of every replay-view step.  Defined here
#: so the tape, its builders (:func:`repro.sim.engine.build_replay_tape`)
#: and its consumers (:mod:`repro.sim.fused`) share one source.
TAPE_SIMPLE = 0  #: access with no actionable gap (back-to-back or <= EPS)
TAPE_GAP = 1  #: access ending a gap a shutdown could fire in
TAPE_FORK = 2  #: process fork (liveness + try-point)
TAPE_EXIT = 3  #: process exit (liveness + trailing feedback + try-point)

#: Codes of the tape's ``fb_class`` column.  ``-1`` means "no feedback";
#: non-negative codes index :data:`~repro.predictors.base.IdleClass` in
#: (SUB_WINDOW, SHORT, LONG) order.
FB_SUB_WINDOW = 0
FB_SHORT = 1
FB_LONG = 2

#: The tape's per-step column arrays, in canonical order.
_TAPE_ARRAY_FIELDS = (
    "op",
    "times",
    "can_fire",
    "record",
    "window_start",
    "busy_until",
    "gap_length",
    "idle_full",
    "long_period",
    "gap_end",
    "busy_after",
    "register",
    "pids",
    "access_index",
    "anchor_max",
    "fb_start",
    "fb_end",
    "fb_class",
)

#: The tape's whole-execution scalar fields.
_TAPE_SCALAR_FIELDS = (
    "start",
    "end",
    "initial_pids",
    "busy_energy",
    "n_accesses",
    "end_can_fire",
    "end_record",
    "trailing",
    "final_window_start",
    "final_busy_until",
    "final_gap_end",
    "final_idle_full",
    "final_long",
    "final_anchor_max",
)


class ColumnarTape:
    """Predictor-independent replay skeleton as parallel NumPy columns.

    One row per merged-schedule step (accesses and liveness events,
    schedule order).  Column semantics:

    * ``op`` (u1) — :data:`TAPE_SIMPLE` / :data:`TAPE_GAP` /
      :data:`TAPE_FORK` / :data:`TAPE_EXIT`;
    * ``times`` (f8) — the step's event time;
    * ``can_fire`` / ``record`` (bool) — the engine's try-shutdown gate
      and its stats gate (distinct float predicates, kept separately on
      purpose; ``record`` is only meaningful on access steps);
    * ``window_start`` / ``busy_until`` (f8) — the decision window and
      disk-busy state entering the step;
    * ``gap_length`` / ``gap_end`` / ``idle_full`` / ``long_period`` —
      the resolved gap of access steps (``idle_full`` is the no-shutdown
      idle energy; zero on back-to-back accesses and liveness steps);
    * ``busy_after`` (f8) — disk-busy time after an access is served;
    * ``register`` (bool) — access by an unregistered pid (or fork
      ``is_new``);
    * ``pids`` (i8) / ``access_index`` (i8) — the step's process and its
      position in the filtered access stream (``-1`` for liveness);
    * ``anchor_max`` (f8) — the latest live intent anchor at the step's
      try-point, ``NaN`` encoding "no try-point / no live anchors" (the
      classic tape's ``None``);
    * ``fb_start`` / ``fb_end`` (f8) and ``fb_class`` (i1) — the
      per-process idle-feedback gap delivered at the step, ``fb_class``
      of ``-1`` meaning no feedback (codes index ``IdleClass`` in
      (SUB_WINDOW, SHORT, LONG) order).

    The whole-execution scalars (``start`` … ``final_anchor_max``) carry
    the trailing-gap state exactly like the historical tuple tape.

    Tapes are built by :func:`repro.sim.engine.build_replay_tape` and
    replayed by :mod:`repro.sim.fused` — the constant-intent and
    omniscient lanes read the columns directly as whole-tape array
    programs, while the generic per-process lane iterates
    :meth:`replay_views`.  Tapes pickle compactly (the memoized views
    and the bound access stream are dropped), which is what lets the
    artifact cache persist them per
    (execution fingerprint × configuration).
    """

    __slots__ = _TAPE_ARRAY_FIELDS + _TAPE_SCALAR_FIELDS + (
        "_accesses",
        "_views",
        "_gap_memo",
    )

    def __init__(self) -> None:
        self._accesses = None
        self._views = None
        self._gap_memo = None

    def __len__(self) -> int:
        return len(self.op)

    def __getstate__(self) -> dict:
        """Pickle the column arrays and scalars; memos are rebuilt."""
        state = {
            name: getattr(self, name) for name in _TAPE_ARRAY_FIELDS
        }
        state.update(
            {name: getattr(self, name) for name in _TAPE_SCALAR_FIELDS}
        )
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore columns and scalars; clear the transient memos."""
        for name in _TAPE_ARRAY_FIELDS + _TAPE_SCALAR_FIELDS:
            setattr(self, name, state[name])
        self._accesses = None
        self._views = None
        self._gap_memo = None

    def bind_accesses(self, accesses: Sequence["DiskAccess"]) -> None:
        """Attach the filtered access stream the tape was built from.

        The generic replay lane injects the actual
        :class:`~repro.cache.filter.DiskAccess` objects into its step
        views through the ``access_index`` column; they are *not* stored
        on the tape (they are already cached/pickled elsewhere), so a
        cache-restored tape must be re-bound before a generic lane runs.
        """
        if self._accesses is not accesses:
            self._accesses = accesses
            self._views = None

    def gap_columns(self) -> dict:
        """Gap-sliced column views shared by the vectorized lanes
        (memoized): the :data:`TAPE_GAP` positions, their per-gap
        scalars, and the full-length ``simple_idle`` contribution
        stream."""
        memo = self._gap_memo
        if memo is None:
            op = self.op
            gp = np.flatnonzero(op == TAPE_GAP)
            memo = {
                "gp": gp,
                "busy_until": self.busy_until[gp],
                "gap_end": self.gap_end[gp],
                "gap_length": self.gap_length[gp],
                "idle_full": self.idle_full[gp],
                "long": self.long_period[gp],
                "record": self.record[gp],
                "simple_idle": np.where(
                    op == TAPE_SIMPLE, self.idle_full, 0.0
                ),
            }
            self._gap_memo = memo
        return memo

    def replay_views(self) -> list:
        """Per-step tuples for the loop lanes (memoized).

        Runs of consecutive :data:`TAPE_SIMPLE` steps are grouped into a
        single ``(TAPE_SIMPLE, items)`` entry — ``items`` being ``(pid,
        access, feedback, busy_after, register, idle_full)`` tuples — so
        the loop lanes dispatch once per run instead of once per step.
        :data:`TAPE_GAP` / :data:`TAPE_FORK` / :data:`TAPE_EXIT` entries
        carry the historical tuple layout, with prebuilt (shared,
        immutable) :class:`~repro.predictors.base.IdleFeedback` objects
        and ``anchor_max`` decoded back to ``None``-or-float.
        """
        views = self._views
        if views is not None:
            return views
        accesses = self._accesses
        if accesses is None:
            raise ValueError(
                "tape has no bound access stream; call bind_accesses() "
                "before replaying a generic lane"
            )
        from repro.predictors.base import IdleClass, IdleFeedback

        classes = (IdleClass.SUB_WINDOW, IdleClass.SHORT, IdleClass.LONG)
        op_l = self.op.tolist()
        t_l = self.times.tolist()
        cf_l = self.can_fire.tolist()
        rec_l = self.record.tolist()
        ws_l = self.window_start.tolist()
        bu_l = self.busy_until.tolist()
        gl_l = self.gap_length.tolist()
        if_l = self.idle_full.tolist()
        lp_l = self.long_period.tolist()
        ge_l = self.gap_end.tolist()
        ba_l = self.busy_after.tolist()
        reg_l = self.register.tolist()
        pid_l = self.pids.tolist()
        ai_l = self.access_index.tolist()
        am_l = self.anchor_max.tolist()
        fs_l = self.fb_start.tolist()
        fe_l = self.fb_end.tolist()
        fc_l = self.fb_class.tolist()
        views = []
        append = views.append
        run: Optional[list] = None
        for i in range(len(op_l)):
            code = fc_l[i]
            feedback = (
                IdleFeedback(
                    start=fs_l[i], end=fe_l[i], idle_class=classes[code]
                )
                if code >= 0
                else None
            )
            op = op_l[i]
            if op == TAPE_SIMPLE:
                item = (
                    pid_l[i], accesses[ai_l[i]], feedback, ba_l[i],
                    reg_l[i], if_l[i],
                )
                if run is None:
                    run = [item]
                    append((TAPE_SIMPLE, run))
                else:
                    run.append(item)
                continue
            run = None
            am = am_l[i]
            if am != am:  # NaN encodes the classic tape's None
                am = None
            if op == TAPE_GAP:
                append(
                    (TAPE_GAP, t_l[i], cf_l[i], rec_l[i], ws_l[i],
                     bu_l[i], gl_l[i], if_l[i], lp_l[i], ge_l[i],
                     ba_l[i], reg_l[i], pid_l[i], feedback,
                     accesses[ai_l[i]], am)
                )
            elif op == TAPE_FORK:
                append(
                    (TAPE_FORK, t_l[i], cf_l[i], ws_l[i], bu_l[i],
                     pid_l[i], reg_l[i], am)
                )
            else:
                append(
                    (TAPE_EXIT, t_l[i], cf_l[i], ws_l[i], bu_l[i],
                     pid_l[i], feedback, am)
                )
        self._views = views
        return views


class ColumnarAccesses:
    """NumPy columns of one execution's filtered disk-access stream."""

    __slots__ = (
        "times",
        "pids",
        "pcs",
        "fds",
        "block_counts",
        "_durations",
        "_per_process_indices",
    )

    def __init__(
        self,
        times: np.ndarray,
        pids: np.ndarray,
        pcs: np.ndarray,
        fds: np.ndarray,
        block_counts: np.ndarray,
    ) -> None:
        self.times = times
        self.pids = pids
        self.pcs = pcs
        self.fds = fds
        self.block_counts = block_counts
        #: (service_time, service_time_per_block) -> durations list memo.
        self._durations: dict[tuple[float, float], list[float]] = {}
        self._per_process_indices: Optional[dict[int, np.ndarray]] = None

    @classmethod
    def from_accesses(
        cls, accesses: Sequence["DiskAccess"]
    ) -> "ColumnarAccesses":
        """Transpose a row-oriented access stream (one pass per column)."""
        n = len(accesses)
        times = np.fromiter(
            (a.time for a in accesses), dtype=np.float64, count=n
        )
        pids = np.fromiter((a.pid for a in accesses), dtype=np.int64, count=n)
        pcs = np.fromiter((a.pc for a in accesses), dtype=np.int64, count=n)
        fds = np.fromiter((a.fd for a in accesses), dtype=np.int64, count=n)
        counts = np.fromiter(
            (a.block_count for a in accesses), dtype=np.int64, count=n
        )
        return cls(times, pids, pcs, fds, counts)

    @classmethod
    def from_arrays(
        cls,
        times: np.ndarray,
        pids: np.ndarray,
        pcs: np.ndarray,
        fds: np.ndarray,
        block_counts: np.ndarray,
    ) -> "ColumnarAccesses":
        """Wrap pre-built column arrays (e.g. slices of trace-store
        memmaps) without copying; dtypes are normalized to the canonical
        float64/int64 layout."""
        return cls(
            np.ascontiguousarray(times, dtype=np.float64),
            np.ascontiguousarray(pids, dtype=np.int64),
            np.ascontiguousarray(pcs, dtype=np.int64),
            np.ascontiguousarray(fds, dtype=np.int64),
            np.ascontiguousarray(block_counts, dtype=np.int64),
        )

    @classmethod
    def concat(
        cls, chunks: Sequence["ColumnarAccesses"]
    ) -> "ColumnarAccesses":
        """Assemble one view from per-chunk views, in order.

        Used to stitch chunk-windowed columns (the trace store's bounded
        read path) back into a single execution-wide view; concatenation
        preserves every element bitwise, so the result is
        indistinguishable from a single-pass transpose.
        """
        if not chunks:
            return cls.from_accesses([])
        if len(chunks) == 1:
            return chunks[0]
        return cls(
            np.concatenate([c.times for c in chunks]),
            np.concatenate([c.pids for c in chunks]),
            np.concatenate([c.pcs for c in chunks]),
            np.concatenate([c.fds for c in chunks]),
            np.concatenate([c.block_counts for c in chunks]),
        )

    def __len__(self) -> int:
        return len(self.times)

    def durations_list(self, config: "SimulationConfig") -> list[float]:
        """Per-access service durations as plain floats (memoized).

        Vectorized evaluation of
        :meth:`~repro.config.SimulationConfig.access_duration`; each
        element is bit-identical to the scalar formula.
        """
        key = (config.service_time, config.service_time_per_block)
        cached = self._durations.get(key)
        if cached is None:
            cached = (
                config.service_time
                + config.service_time_per_block * self.block_counts
            ).tolist()
            self._durations[key] = cached
        return cached

    def times_list(self) -> list[float]:
        """Arrival times as plain floats (fast sequential consumption)."""
        return self.times.tolist()

    def per_process_indices(self) -> dict[int, np.ndarray]:
        """``pid -> positions`` of each process's accesses, in stream order
        (memoized)."""
        if self._per_process_indices is None:
            order = np.argsort(self.pids, kind="stable")
            sorted_pids = self.pids[order]
            boundaries = np.nonzero(np.diff(sorted_pids))[0] + 1
            groups = np.split(order, boundaries)
            self._per_process_indices = {
                int(self.pids[group[0]]): np.sort(group)
                for group in groups
                if len(group)
            }
        return self._per_process_indices

    def gap_lengths(self, *, lead_in: float) -> np.ndarray:
        """Arrival-to-arrival gaps (vectorized analytics helper).

        ``lead_in`` is the stream start time; element ``i`` is the time
        from the previous arrival (or the stream start) to arrival ``i``.
        This ignores service time — it is an upper bound on idle time
        used by coarse analytics, not by the engine.
        """
        if not len(self.times):
            return np.empty(0, dtype=np.float64)
        previous = np.concatenate(([lead_in], self.times[:-1]))
        return self.times - previous


#: Per-device float64 accumulator columns (energy buckets, idle clock,
#: inflicted latency) of :class:`DeviceStateColumns`.
DEVICE_FLOAT_FIELDS = (
    "busy",
    "idle_short",
    "idle_long",
    "power_cycle",
    "standby",
    "idle_seconds",
    "delay_seconds",
)

#: Per-device int64 counter columns of :class:`DeviceStateColumns`.
DEVICE_COUNT_FIELDS = (
    "gaps",
    "opportunities",
    "hits_primary",
    "hits_backup",
    "misses_primary",
    "misses_backup",
    "unsaved_in_opportunity",
    "shutdowns",
    "disk_accesses",
    "delayed_requests",
    "irritating_delays",
    "executions",
)


class DeviceStateColumns:
    """Columnar (structure-of-arrays) simulation state of a device fleet.

    The fleet engine (:mod:`repro.sim.fleet`) keeps one row per device:
    the energy ledger buckets, the idle clock, and the prediction /
    latency counters each live in one NumPy array over the whole
    population, so advancing N devices by one application's replay is a
    handful of vectorized scatter-adds instead of N Python object
    updates — and fleet-level reductions (total energy, slowdown
    percentiles) are single array operations.

    **Bit-identity contract:** a device row accumulates the *same
    sequence of IEEE-754 additions* a standalone
    :class:`~repro.sim.experiment.ApplicationResult` accumulates —
    :meth:`absorb` adds each replay aggregate elementwise, in replay
    order, into float64 slots starting from 0.0 — so
    :meth:`ledger_of` / :meth:`stats_of` reconstruct values bit-equal
    to an independent single-device run.
    """

    __slots__ = ("n_devices",) + DEVICE_FLOAT_FIELDS + DEVICE_COUNT_FIELDS

    def __init__(self, n_devices: int) -> None:
        if n_devices < 0:
            raise ValueError("device count must be non-negative")
        self.n_devices = n_devices
        for name in DEVICE_FLOAT_FIELDS:
            setattr(self, name, np.zeros(n_devices, dtype=np.float64))
        for name in DEVICE_COUNT_FIELDS:
            setattr(self, name, np.zeros(n_devices, dtype=np.int64))

    def __len__(self) -> int:
        return self.n_devices

    def absorb(
        self, indices: np.ndarray, result: "ApplicationResult"
    ) -> None:
        """Advance the devices at ``indices`` by one replayed trace
        history: scatter-add the run's aggregates into their rows.

        ``indices`` must not contain duplicates (each device absorbs a
        given replay exactly once); with that invariant the fancy-indexed
        ``+=`` performs one addition per row — the same addition the
        scalar accumulators perform.
        """
        stats = result.stats
        ledger = result.ledger
        self.busy[indices] += ledger.busy
        self.idle_short[indices] += ledger.idle_short
        self.idle_long[indices] += ledger.idle_long
        self.power_cycle[indices] += ledger.power_cycle
        self.standby[indices] += ledger.standby
        self.idle_seconds[indices] += stats.idle_seconds
        self.delay_seconds[indices] += result.delay_seconds
        self.gaps[indices] += stats.gaps
        self.opportunities[indices] += stats.opportunities
        self.hits_primary[indices] += stats.hits_primary
        self.hits_backup[indices] += stats.hits_backup
        self.misses_primary[indices] += stats.misses_primary
        self.misses_backup[indices] += stats.misses_backup
        self.unsaved_in_opportunity[indices] += stats.unsaved_in_opportunity
        self.shutdowns[indices] += result.shutdowns
        self.disk_accesses[indices] += result.total_disk_accesses
        self.delayed_requests[indices] += result.delayed_requests
        self.irritating_delays[indices] += result.irritating_delays
        self.executions[indices] += result.executions

    def ledger_of(self, device: int):
        """One device's energy ledger (bit-equal to a standalone run)."""
        from repro.disk.energy import EnergyBreakdown

        return EnergyBreakdown(
            busy=float(self.busy[device]),
            idle_short=float(self.idle_short[device]),
            idle_long=float(self.idle_long[device]),
            power_cycle=float(self.power_cycle[device]),
            standby=float(self.standby[device]),
        )

    def stats_of(self, device: int):
        """One device's prediction counters."""
        from repro.sim.metrics import PredictionStats

        return PredictionStats(
            gaps=int(self.gaps[device]),
            opportunities=int(self.opportunities[device]),
            hits_primary=int(self.hits_primary[device]),
            hits_backup=int(self.hits_backup[device]),
            misses_primary=int(self.misses_primary[device]),
            misses_backup=int(self.misses_backup[device]),
            unsaved_in_opportunity=int(
                self.unsaved_in_opportunity[device]
            ),
            idle_seconds=float(self.idle_seconds[device]),
        )

    def energy(self) -> np.ndarray:
        """Per-device total energy (joules), vectorized."""
        return (
            self.busy + self.idle_short + self.idle_long + self.power_cycle
        )

    def delay_per_access(self) -> np.ndarray:
        """Per-device mean inflicted spin-up delay per disk access.

        The fleet's slowdown metric: seconds of policy-inflicted latency
        per served request, 0.0 for devices that served no requests.
        """
        out = np.zeros(self.n_devices, dtype=np.float64)
        np.divide(
            self.delay_seconds,
            self.disk_accesses,
            out=out,
            where=self.disk_accesses > 0,
        )
        return out

    def aggregate_ledger(self):
        """The fleet-total energy ledger (sum over device rows)."""
        from repro.disk.energy import EnergyBreakdown

        return EnergyBreakdown(
            busy=float(self.busy.sum()),
            idle_short=float(self.idle_short.sum()),
            idle_long=float(self.idle_long.sum()),
            power_cycle=float(self.power_cycle.sum()),
            standby=float(self.standby.sum()),
        )

    def aggregate_stats(self):
        """The fleet-total prediction counters (sum over device rows)."""
        from repro.sim.metrics import PredictionStats

        return PredictionStats(
            gaps=int(self.gaps.sum()),
            opportunities=int(self.opportunities.sum()),
            hits_primary=int(self.hits_primary.sum()),
            hits_backup=int(self.hits_backup.sum()),
            misses_primary=int(self.misses_primary.sum()),
            misses_backup=int(self.misses_backup.sum()),
            unsaved_in_opportunity=int(
                self.unsaved_in_opportunity.sum()
            ),
            idle_seconds=float(self.idle_seconds.sum()),
        )
