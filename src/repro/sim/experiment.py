"""Experiment runner: (application × predictor) matrices with table reuse.

The paper's experiments replay each application's whole trace history —
dozens of executions — under one predictor, with the predictor's shared
state (PCAP table / LT tree) persisting across executions unless the
variant discards it.  :class:`ExperimentRunner` owns that loop, caches
the (deterministic, relatively expensive) cache-filtering step per
application, and aggregates per-execution results.

Suites may mix in-memory :class:`~repro.traces.trace.ApplicationTrace`
objects and store-backed :class:`~repro.traces.store.StoreBackedTrace`
objects (``streaming = True``).  For streaming traces the runner filters
and simulates one execution at a time (:meth:`ExperimentRunner.iter_filtered`)
instead of memoizing the whole application, so peak memory stays bounded
by one execution plus one store chunk; the produced results are
bit-identical to the in-memory path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.filter import FilterResult, filter_execution
from repro.disk.energy import EnergyBreakdown, sum_breakdowns
from repro.errors import SimulationError
from repro.predictors.registry import PredictorSpec, make_spec
from repro.config import SimulationConfig, resolve_fused
from repro.sim.engine import evaluate_local_stream, run_global_execution
from repro.sim.metrics import PredictionStats
from repro.sim.tracing import SimTraceEvent, TraceRecorder, Tracer
from repro.traces.trace import ApplicationTrace


@dataclass(slots=True)
class ApplicationResult:
    """Aggregate of one application's trace history under one predictor."""

    application: str
    predictor: str
    stats: PredictionStats
    ledger: EnergyBreakdown
    executions: int
    total_disk_accesses: int
    shutdowns: int
    #: Final size of the shared prediction structure, if the predictor
    #: has one (Table 3).
    table_size: Optional[int]
    #: Spin-up latency the policy inflicted (see ExecutionRunResult).
    delayed_requests: int = 0
    delay_seconds: float = 0.0
    irritating_delays: int = 0
    #: Structured-tracing output, populated only when the run was traced:
    #: per-kind event counters over the whole run, and the retained event
    #: stream (ring-buffer bounded; picklable, so parallel workers ship
    #: it back with the cell and the cell-ordered merge keeps streams
    #: identical to a serial run).
    trace_summary: Optional[dict[str, int]] = None
    trace_events: tuple[SimTraceEvent, ...] = ()

    @property
    def energy(self) -> float:
        """Total energy of the run in joules."""
        return self.ledger.total


class ExperimentRunner:
    """Runs predictors over a suite of application traces."""

    def __init__(
        self,
        suite: dict[str, ApplicationTrace],
        config: Optional[SimulationConfig] = None,
        *,
        tracing: bool = False,
        trace_capacity: Optional[int] = None,
        artifact_cache=None,
    ) -> None:
        self.suite = suite
        self.config = config or SimulationConfig()
        #: When set, every run records a structured event trace into a
        #: fresh :class:`TraceRecorder` (bounded by ``trace_capacity``)
        #: and attaches it to the :class:`ApplicationResult`.
        self.tracing = tracing
        self.trace_capacity = trace_capacity
        #: Optional :class:`~repro.sim.artifact_cache.ArtifactCache`
        #: persisting filter results on disk across processes and runs.
        self.artifact_cache = artifact_cache
        self._filtered: dict[str, list[FilterResult]] = {}
        #: application → content fingerprint, shared with clones (it
        #: depends only on the suite's trace events, never the config).
        self._fingerprints: dict[str, str] = {}

    @property
    def applications(self) -> list[str]:
        """Application names of the suite, in suite order."""
        return list(self.suite)

    def with_config(self, config: SimulationConfig) -> "ExperimentRunner":
        """A runner over the same suite under a different configuration.

        When the cache configuration is unchanged the (expensive)
        filtering results are shared; parameter sweeps over predictor
        knobs (wait window, timeout, history length) then cost no
        re-filtering.
        """
        clone = ExperimentRunner(
            self.suite,
            config,
            tracing=self.tracing,
            trace_capacity=self.trace_capacity,
            artifact_cache=self.artifact_cache,
        )
        if config.cache == self.config.cache:
            clone._filtered = self._filtered
        clone._fingerprints = self._fingerprints
        return clone

    def _make_tracer(
        self, tracer: Optional[Tracer]
    ) -> tuple[Optional[Tracer], Optional[TraceRecorder]]:
        """Resolve the effective tracer for one run.

        An explicit ``tracer`` wins; otherwise the runner-level
        ``tracing`` flag creates a per-run recorder.  Returns the tracer
        to emit into and the recorder whose output should be attached to
        the result (``None`` when the sink is caller-owned and opaque).
        """
        if tracer is not None:
            recorder = tracer if isinstance(tracer, TraceRecorder) else None
            return tracer, recorder
        if self.tracing:
            recorder = TraceRecorder(capacity=self.trace_capacity)
            return recorder, recorder
        return None, None

    def declare_fingerprints(self, fingerprints: dict[str, str]) -> None:
        """Pre-seed trace content fingerprints for artifact-cache keys.

        By default :meth:`filtered` fingerprints a trace by hashing all
        its events; callers that *know* the provenance of their suite
        (e.g. the deterministic generator — see
        :func:`repro.sim.artifact_cache.generated_suite_fingerprints`)
        can seed equivalent keys and skip the per-event hashing.
        """
        self._fingerprints.update(fingerprints)

    def fingerprint(self, application: str) -> str:
        """Content fingerprint of one application's trace (memoized).

        Pre-seeded fingerprints (:meth:`declare_fingerprints`) win; a
        trace that carries its own provenance digest (store-backed
        traces expose ``fingerprint``) is next; otherwise the trace's
        events are hashed once and remembered.  Artifact-cache keys and
        checkpoint cell keys (:func:`repro.sim.resilience.cell_key`) are
        both derived from this value.
        """
        fingerprint = self._fingerprints.get(application)
        if fingerprint is None:
            trace = self._trace(application)
            fingerprint = getattr(trace, "fingerprint", None)
            if fingerprint is None:
                from repro.sim.artifact_cache import trace_fingerprint

                fingerprint = trace_fingerprint(trace)
            self._fingerprints[application] = fingerprint
        return fingerprint

    def _filter_one(self, execution, application: str) -> FilterResult:
        """Filter one execution, honoring the attached artifact cache."""
        cache = self.artifact_cache
        if cache is None:
            return filter_execution(execution, self.config.cache)
        from repro.sim.artifact_cache import filter_key

        key = filter_key(
            self.fingerprint(application),
            execution.execution_index,
            self.config.cache,
        )
        hit, value = cache.get(key)
        if not hit:
            value = filter_execution(execution, self.config.cache)
            cache.put(key, value)
        return value

    def filtered(self, application: str) -> list[FilterResult]:
        """Cache-filtered executions of one application (memoized).

        With an artifact cache attached, each execution's filter result
        is additionally persisted on disk, keyed by the trace content
        fingerprint and the cache configuration — cold runs in a new
        process then deserialize instead of re-filtering.  Cached
        results are the pickles of exactly what ``filter_execution``
        builds, so downstream simulation is bit-identical either way.

        For streaming (store-backed) traces, prefer :meth:`iter_filtered`,
        which avoids holding every execution's result at once.
        """
        memo = self._filtered.get(application)
        if memo is not None:
            return memo
        trace = self._trace(application)
        results = [
            self._filter_one(execution, application) for execution in trace
        ]
        self._filtered[application] = results
        return results

    def iter_filtered(self, application: str):
        """Yield ``(execution, filter result)`` pairs one at a time.

        The memory-bounded front end of every run loop: for in-memory
        traces this walks the :meth:`filtered` memo (building it on first
        use, exactly as before); for streaming traces it filters each
        execution on the fly and *does not* retain the results, so peak
        memory is one execution plus one filter result regardless of
        trace size.
        """
        trace = self._trace(application)
        memo = self._filtered.get(application)
        if memo is None and getattr(trace, "streaming", False):
            for execution in trace:
                yield execution, self._filter_one(execution, application)
            return
        yield from zip(trace, self.filtered(application))

    def run_global(
        self,
        application: str,
        predictor: str | PredictorSpec,
        *,
        multistate: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> ApplicationResult:
        """Whole-trace global run (Figures 7–10, Table 3).

        ``multistate`` enables the §7 low-power-idle extension.
        ``tracer`` (or the runner-level ``tracing`` flag) records the
        structured decision timeline of the whole run.
        """
        trace = self._trace(application)
        spec = self._spec(predictor)
        tracer, recorder = self._make_tracer(tracer)
        stats = PredictionStats()
        ledgers: list[EnergyBreakdown] = []
        accesses = 0
        shutdowns = 0
        peak_table = 0
        delayed = 0
        delay_seconds = 0.0
        irritating = 0
        for execution, filtered in self.iter_filtered(application):
            result = run_global_execution(
                execution, filtered, spec, self.config,
                multistate=multistate, tracer=tracer,
            )
            stats.merge(result.stats)
            ledgers.append(result.ledger)
            accesses += result.disk_accesses
            shutdowns += result.shutdowns
            delayed += result.delayed_requests
            delay_seconds += result.delay_seconds
            irritating += result.irritating_delays
            if spec.table_size is not None:
                peak_table = max(peak_table, spec.table_size)
            spec.on_execution_end()
        return ApplicationResult(
            application=application,
            predictor=spec.name,
            stats=stats,
            ledger=sum_breakdowns(ledgers),
            executions=len(trace),
            total_disk_accesses=accesses,
            shutdowns=shutdowns,
            table_size=peak_table if spec.table_size is not None else None,
            delayed_requests=delayed,
            delay_seconds=delay_seconds,
            irritating_delays=irritating,
            trace_summary=recorder.counts() if recorder is not None else None,
            trace_events=recorder.events if recorder is not None else (),
        )

    def run_local(
        self,
        application: str,
        predictor: str | PredictorSpec,
        *,
        tracer: Optional[Tracer] = None,
    ) -> ApplicationResult:
        """Per-process local evaluation (Figure 6): every process's own
        access stream is scored independently; counters are summed over
        processes and normalized to the application's local idle periods."""
        trace = self._trace(application)
        spec = self._spec(predictor)
        if spec.is_omniscient:
            raise SimulationError(
                f"{spec.name} is an omniscient policy; local evaluation "
                "applies to online predictors only"
            )
        assert spec.local_factory is not None
        tracer, recorder = self._make_tracer(tracer)
        stats = PredictionStats()
        accesses = 0
        peak_table = 0
        for execution, filtered in self.iter_filtered(application):
            lifetimes = execution.lifetimes()
            per_process = filtered.per_process()
            for pid, (start, end) in sorted(lifetimes.items()):
                stream = per_process.get(pid, [])
                if not stream:
                    # A process that never touches the disk encounters no
                    # disk idle periods (its whole lifetime would
                    # otherwise count as one giant idle period).
                    continue
                predictor_instance = spec.local_factory(pid)
                stats.merge(
                    evaluate_local_stream(
                        stream,
                        predictor_instance,
                        self.config,
                        start_time=start,
                        end_time=end,
                        tracer=tracer,
                    )
                )
                accesses += len(stream)
            if spec.table_size is not None:
                peak_table = max(peak_table, spec.table_size)
            spec.on_execution_end()
        return ApplicationResult(
            application=application,
            predictor=spec.name,
            stats=stats,
            ledger=EnergyBreakdown(),
            executions=len(trace),
            total_disk_accesses=accesses,
            shutdowns=stats.shutdowns,
            table_size=peak_table if spec.table_size is not None else None,
            trace_summary=recorder.counts() if recorder is not None else None,
            trace_events=recorder.events if recorder is not None else (),
        )

    def run_suite(
        self,
        predictor: str | PredictorSpec,
        *,
        applications: Optional[Sequence[str]] = None,
        multistate: bool = False,
        jobs: Optional[int] = None,
        checkpoint=None,
        resilience=None,
    ) -> dict[str, ApplicationResult]:
        """One predictor's global run over many applications.

        ``jobs`` > 1 hands the (application) cells to the parallel
        execution layer (:mod:`repro.sim.parallel`); the merged mapping
        is identical to the serial one either way.

        ``checkpoint`` (a :class:`~repro.sim.resilience.CellCheckpoint`
        or a path) journals every completed cell to an append-only JSONL
        file and skips cells already recorded there, so an interrupted
        suite resumes instead of restarting; ``resilience`` (a
        :class:`~repro.sim.resilience.ResiliencePolicy`) adds per-cell
        retries and timeouts.  With either set, terminal cell failures
        raise :class:`~repro.errors.ExecutionError` *after* the
        completed cells were journalled — use
        :meth:`~repro.sim.parallel.ParallelExperimentRunner.run_suite_resilient`
        for a partial report instead of an exception.
        """
        apps = list(applications) if applications else self.applications
        resilient = checkpoint is not None or resilience is not None
        if resilient or (jobs is not None and jobs != 1):
            # Imported lazily: repro.sim.parallel imports this module.
            from repro.sim.parallel import ParallelExperimentRunner

            clone = ParallelExperimentRunner(
                self.suite,
                self.config,
                jobs=1 if jobs is None else jobs,
                tracing=self.tracing,
                trace_capacity=self.trace_capacity,
                artifact_cache=self.artifact_cache,
            )
            clone._filtered = self._filtered
            clone._fingerprints = self._fingerprints
            if isinstance(predictor, PredictorSpec):
                raise SimulationError(
                    "parallel or resilient run_suite needs a predictor "
                    "name (specs are stateful and cannot be shared "
                    "across workers)"
                )
            if resilient:
                from repro.sim.resilience import raise_on_failures

                report = clone.run_suite_resilient(
                    predictor,
                    applications=apps,
                    multistate=multistate,
                    policy=resilience,
                    checkpoint=checkpoint,
                )
                raise_on_failures(report.ledger, "suite run")
                return report.results
            return clone.run_suite(
                predictor, applications=apps, multistate=multistate
            )
        return {
            application: self.run_global(
                application, predictor, multistate=multistate
            )
            for application in apps
        }

    def run_matrix(
        self,
        predictors: Sequence[str],
        *,
        mode: str = "global",
        applications: Optional[Sequence[str]] = None,
        fused: Optional[bool] = None,
    ) -> dict[str, dict[str, ApplicationResult]]:
        """``{application: {predictor: result}}`` for a whole figure.

        ``fused`` (``None`` defers to ``REPRO_FUSED``) evaluates all
        global-mode predictors in one streaming pass per application
        (:mod:`repro.sim.fused`) with bit-identical results; local-mode
        and tracing runs always take the per-cell path.
        """
        if mode not in ("global", "local"):
            raise ValueError(f"unknown mode {mode!r}")
        apps = list(applications) if applications else self.applications
        if resolve_fused(fused) and mode == "global" and not self.tracing:
            from repro.sim.fused import run_fused_application

            names = list(predictors)
            return {
                application: dict(zip(names, run_fused_application(
                    self,
                    application,
                    [make_spec(name, self.config) for name in names],
                )))
                for application in apps
            }
        run = self.run_global if mode == "global" else self.run_local
        return {
            application: {name: run(application, name) for name in predictors}
            for application in apps
        }

    def _trace(self, application: str) -> ApplicationTrace:
        try:
            return self.suite[application]
        except KeyError:
            raise SimulationError(
                f"unknown application {application!r}; suite has "
                f"{sorted(self.suite)}"
            ) from None

    def _spec(self, predictor: str | PredictorSpec) -> PredictorSpec:
        if isinstance(predictor, PredictorSpec):
            return predictor
        return make_spec(predictor, self.config)
