"""Persistent, content-addressed artifact cache for deterministic stages.

Two stages of every experiment are deterministic pure functions of their
inputs and dominate cold-start wall clock: workload trace generation
(:func:`repro.workloads.build_application`) and page-cache filtering
(:func:`repro.cache.filter.filter_execution`).  This module caches both
on disk so repeated runs — locally, in CI, and across the fork pool's
worker processes — skip straight to the simulation:

* **Content addressing.**  Entries are keyed by a BLAKE2b digest over
  every input that determines the output: the application name and scale
  plus a schema version for generated traces; a fingerprint of the trace
  events plus the cache configuration plus a schema version for filtered
  results.  Changing any input (or bumping :data:`SCHEMA_VERSION` when
  the artifact layout changes) changes the key, so stale entries are
  never *read* — they are simply orphaned.
* **Atomic writes, lock-free reads.**  A store writes to a private
  temporary file in the cache directory and publishes it with
  :func:`os.replace`, which is atomic on POSIX — a reader sees either
  the complete entry or nothing.  Concurrent writers of the same key
  (parallel workers racing on a cold cache) each publish an identical
  artifact; last rename wins and no locking is needed.
* **Corruption recovery.**  A truncated or unreadable entry (killed
  writer that bypassed the temp-file protocol, disk corruption, a torn
  write) is treated as a miss: the entry is *quarantined* — renamed
  aside with a ``.corrupt`` suffix so the evidence survives for
  inspection (unlinked as a fallback) — and the caller recomputes and
  rewrites it.  The :mod:`repro.faults` sites ``cache.corrupt-read``
  and ``cache.torn-write`` exercise this path deliberately.

The cache is opt-in: pass ``--cache-dir`` on the CLI or set the
``REPRO_CACHE_DIR`` environment variable.  Cached artifacts are the
pickles of exactly the objects the uncached path builds, so simulation
results are bit-identical with the cache on or off.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro import faults
from repro.cache.page_cache import CacheConfig
from repro.traces.events import (
    AccessType,
    ExitEvent,
    ForkEvent,
    IOEvent,
    TraceEvent,
    event_tuple,
)
from repro.traces.trace import ApplicationTrace, ExecutionTrace

#: Bump whenever the pickled artifact layout (or the meaning of a key
#: component) changes; old entries are orphaned rather than misread.
SCHEMA_VERSION = 1

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Pickle protocol pinned for stable artifact bytes across interpreters.
_PICKLE_PROTOCOL = 4


@dataclass(slots=True)
class ArtifactCacheStats:
    """Counters of one :class:`ArtifactCache` instance (not persisted)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found on disk but unreadable (treated as misses).
    corrupt: int = 0
    #: Corrupt entries renamed aside (``.corrupt``) for inspection.
    quarantined: int = 0


class ArtifactCache:
    """Content-addressed pickle store with atomic writes.

    The two-level directory layout (``ab/abcdef….pkl``) keeps directory
    sizes bounded; keys are hex digests produced by the ``*_key``
    functions in this module.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = ArtifactCacheStats()

    def path_for(self, key: str) -> Path:
        """On-disk location of one entry (two-level fan-out by key)."""
        return self.root / key[:2] / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``<entry>.pkl.corrupt``).

        Renaming instead of unlinking keeps the evidence for post-mortem
        inspection while still clearing the key for the recompute; if
        the rename fails the entry is unlinked best-effort.
        """
        self.stats.corrupt += 1
        aside = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, aside)
            self.stats.quarantined += 1
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        Any failure to read or unpickle counts as a miss — never an
        exception to the caller; the offending entry is quarantined so
        the recompute can replace it.
        """
        path = self.path_for(key)
        faults.corrupt_cache_read(path)
        try:
            with open(path, "rb") as stream:
                value = pickle.load(stream)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.stats.misses += 1
            self._quarantine(path)
            return False, None
        self.stats.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Publish ``value`` under ``key`` atomically (rename into place)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                pickle.dump(value, stream, protocol=_PICKLE_PROTOCOL)
            faults.tear_cache_write(tmp_name)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, computing and storing on a miss."""
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    def get_trace(self, key: str) -> Optional[ApplicationTrace]:
        """A cached application trace, or ``None`` (see the trace codec)."""
        hit, payload = self.get(key)
        if not hit:
            return None
        try:
            return decode_trace(payload)
        except (TypeError, ValueError, KeyError, IndexError,
                AttributeError, StopIteration):
            # The entry unpickled but is not a valid trace payload:
            # treat like any other corruption.
            self.stats.hits -= 1
            self.stats.misses += 1
            self._quarantine(self.path_for(key))
            return None

    def put_trace(self, key: str, trace: ApplicationTrace) -> None:
        """Store an application trace in the columnar cache encoding."""
        self.put(key, encode_trace(trace))


# --------------------------------------------------------------------------
# Columnar trace codec.
#
# A full suite holds ~10^6 event objects; pickling the object graph costs
# several microseconds per event on load (per-object reduce machinery)
# which dominates warm starts.  Trace entries are therefore stored as flat
# per-field columns — pickled at C speed — plus a per-event type-code
# string, and events are rebuilt in one tight loop.  Reconstruction
# assigns slots directly (the values were validated when the trace was
# generated; a corrupted entry almost surely fails the unpickle itself and
# is handled as a miss).

_ACCESS_KIND_BY_VALUE = {kind.value: kind for kind in AccessType}


def _encode_execution(execution: ExecutionTrace) -> tuple:
    codes = bytearray()
    io_cols: tuple[list, ...] = ([], [], [], [], [], [], [], [])
    fork_cols: tuple[list, ...] = ([], [], [])
    exit_cols: tuple[list, ...] = ([], [])
    for event in execution.events:
        kind = type(event)
        if kind is IOEvent:
            codes.append(0)
            time, pid, pc, fd, acc, inode, bs, bc = io_cols
            time.append(event.time)
            pid.append(event.pid)
            pc.append(event.pc)
            fd.append(event.fd)
            acc.append(event.kind.value)
            inode.append(event.inode)
            bs.append(event.block_start)
            bc.append(event.block_count)
        elif kind is ForkEvent:
            codes.append(1)
            fork_cols[0].append(event.time)
            fork_cols[1].append(event.pid)
            fork_cols[2].append(event.parent_pid)
        else:
            codes.append(2)
            exit_cols[0].append(event.time)
            exit_cols[1].append(event.pid)
    return (
        execution.application,
        execution.execution_index,
        tuple(sorted(execution.initial_pids)),
        bytes(codes),
        io_cols,
        fork_cols,
        exit_cols,
    )


def _decode_execution(payload: tuple) -> ExecutionTrace:
    application, index, initial_pids, codes, io_cols, fork_cols, exit_cols = (
        payload
    )
    kinds = _ACCESS_KIND_BY_VALUE
    io_iter = zip(*io_cols)
    fork_iter = zip(*fork_cols)
    exit_iter = zip(*exit_cols)
    new = object.__new__
    put = object.__setattr__
    events: list[TraceEvent] = []
    append = events.append
    for code in codes:
        if code == 0:
            time, pid, pc, fd, acc, inode, bs, bc = next(io_iter)
            event = new(IOEvent)
            put(event, "time", time)
            put(event, "pid", pid)
            put(event, "pc", pc)
            put(event, "fd", fd)
            put(event, "kind", kinds[acc])
            put(event, "inode", inode)
            put(event, "block_start", bs)
            put(event, "block_count", bc)
        elif code == 1:
            time, pid, parent = next(fork_iter)
            event = new(ForkEvent)
            put(event, "time", time)
            put(event, "pid", pid)
            put(event, "parent_pid", parent)
        else:
            time, pid = next(exit_iter)
            event = new(ExitEvent)
            put(event, "time", time)
            put(event, "pid", pid)
        append(event)
    return ExecutionTrace(
        application=application,
        execution_index=index,
        events=events,
        initial_pids=frozenset(initial_pids),
    )


def encode_trace(trace: ApplicationTrace) -> tuple:
    """The compact cache payload of an application trace."""
    return (
        trace.application,
        tuple(_encode_execution(execution) for execution in trace),
    )


def decode_trace(payload: tuple) -> ApplicationTrace:
    """Rebuild an :class:`ApplicationTrace` from :func:`encode_trace`."""
    application, executions = payload
    return ApplicationTrace(
        application=application,
        executions=[_decode_execution(item) for item in executions],
    )


def _digest(*parts: object) -> str:
    """Hex BLAKE2b digest over the reprs of ``parts``.

    All key components are ints, floats, strings, or tuples thereof,
    whose reprs are deterministic across processes and platforms.
    """
    blob = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=20).hexdigest()


def trace_key(application: str, scale: float) -> str:
    """Cache key of one generated application trace."""
    return _digest("trace", SCHEMA_VERSION, application, scale)


#: Canonical event value tuples come from the trace layer so the trace
#: store's streaming fingerprint hashes the same field layout.
_event_tuple = event_tuple


def trace_fingerprint(trace: ApplicationTrace) -> str:
    """Digest of a trace's full event content.

    Filtered artifacts are keyed on this fingerprint (not on the trace's
    provenance), so regenerating a workload with different content —
    a generator change, a different scale, an imported trace — can never
    serve stale filtered results.
    """
    digest = hashlib.blake2b(digest_size=20)
    digest.update(
        f"{SCHEMA_VERSION}:{trace.application}:{len(trace)}".encode("utf-8")
    )
    for execution in trace:
        header = (
            execution.execution_index,
            tuple(sorted(execution.initial_pids)),
            len(execution.events),
        )
        payload = [_event_tuple(event) for event in execution.events]
        digest.update(pickle.dumps((header, payload), _PICKLE_PROTOCOL))
    return digest.hexdigest()


def filter_key(
    fingerprint: str, execution_index: int, cache_config: CacheConfig
) -> str:
    """Cache key of one execution's page-cache filtering result."""
    return _digest(
        "filtered",
        SCHEMA_VERSION,
        fingerprint,
        execution_index,
        cache_config.capacity_bytes,
        cache_config.block_size,
        cache_config.flush_interval,
    )


def tape_key(
    fingerprint: str, execution_index: int, config: "SimulationConfig"
) -> str:
    """Cache key of one execution's predictor-independent replay tape.

    Keyed on the trace fingerprint × execution × the *full* simulation
    configuration: the columnar tape bakes in gap boundaries, idle
    energies, feedback classes, and the busy-energy sum, which depend
    on the disk parameters, service times, cache geometry (through the
    filtered stream) and the breakeven/wait-window thresholds alike —
    ``repr(config)`` covers them all, like the variant-set digest.
    """
    return _digest(
        "tape", SCHEMA_VERSION, fingerprint, execution_index, repr(config)
    )


def variant_set_fingerprint(
    labels: tuple[str, ...] | list[str], config: "SimulationConfig"
) -> str:
    """Digest identifying a fused variant set under one configuration.

    Fused artifacts hold *every* lane's result, so their keys must
    change whenever the lane list (order included — lanes are positional)
    or the simulation configuration does.  Labels are the same
    predictor-identifying strings the classic per-cell path keys on
    (registry names, ``"TP@0.5"``-style sweep labels), which is what
    keeps classic and fused cache entries equally precise.
    """
    return _digest(
        "variant-set", SCHEMA_VERSION, tuple(labels), repr(config)
    )


def fused_key(
    fingerprint: str,
    config: "SimulationConfig",
    labels: tuple[str, ...] | list[str],
) -> str:
    """Cache key of one application's fused multi-variant pass."""
    return _digest(
        "fused",
        SCHEMA_VERSION,
        fingerprint,
        variant_set_fingerprint(labels, config),
    )


def fleet_fingerprint(
    device_fingerprints: tuple[str, ...] | list[str],
    labels: tuple[str, ...] | list[str],
    config: "SimulationConfig",
) -> str:
    """Digest identifying one fleet run.

    Built from the *ordered* per-device trace fingerprints crossed with
    the variant-set fingerprint: device order matters because the
    shared-table mode replays applications in first-seen device order
    (a reordered fleet evolves its shared tables differently), and the
    variant set pins down the predictor lanes exactly as fused keys do.
    """
    return _digest(
        "fleet",
        SCHEMA_VERSION,
        tuple(device_fingerprints),
        variant_set_fingerprint(labels, config),
    )


def fleet_key(
    fingerprint: str,
    tables: str,
) -> str:
    """Cache key of one fleet evaluation's shared replay artifact.

    ``fingerprint`` is :func:`fleet_fingerprint` (already covering the
    device population, lane list, and configuration); ``tables`` is the
    prediction-table mode, which changes the replay semantics without
    changing any input the fingerprint sees.
    """
    return _digest("fleet-run", SCHEMA_VERSION, fingerprint, tables)


def generated_suite_fingerprints(
    scale: float, applications: tuple[str, ...] | list[str]
) -> dict[str, str]:
    """Provenance fingerprints for a generator-built suite.

    Trace generation is a deterministic function of (application, scale,
    schema version) — the premise that makes caching the traces sound in
    the first place — so for generated suites the trace cache key can
    stand in for the (expensive, per-event) content fingerprint when
    keying filtered artifacts.  Pass the result to
    :meth:`~repro.sim.experiment.ExperimentRunner.declare_fingerprints`.
    Traces of any other provenance (imported, hand-built) must use
    :func:`trace_fingerprint`.
    """
    return {name: trace_key(name, scale) for name in applications}


def resolve_cache(
    cache_dir: Optional[str | os.PathLike[str]] = None,
) -> Optional[ArtifactCache]:
    """The artifact cache to use, or ``None`` when caching is off.

    An explicit ``cache_dir`` wins; otherwise the ``REPRO_CACHE_DIR``
    environment variable is consulted.  An empty value disables caching.
    """
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV_VAR) or None
    if cache_dir is None:
        return None
    return ArtifactCache(cache_dir)
