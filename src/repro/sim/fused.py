"""Fused single-pass multi-predictor simulation kernel.

The classic experiment decomposition runs one full trace replay per
(application × predictor variant) cell — O(variants × trace) work for
O(trace) information, since the paper's comparisons (Figs. 6–9,
Table 3) pit every predictor against the *same* idle-period stream.
This module evaluates all registered predictor specs in one streaming
pass per application:

1. :func:`repro.sim.engine.build_replay_tape` walks each execution's
   merged schedule **once**, producing the predictor-independent replay
   skeleton (gap boundaries, busy intervals, per-process idle feedback,
   liveness, try-points, the shared busy-energy sum) as a
   :class:`~repro.sim.columnar.ColumnarTape` of parallel NumPy columns.
   The tape exists because requests never stretch the timeline —
   spin-up latency is energy-only — so the busy/gap structure is
   identical under every predictor.  Tapes are cached in the artifact
   cache keyed on (execution fingerprint × configuration), so warm
   sweeps and fleets skip tape construction entirely.
2. A per-variant *lane* replays the tape with only the per-predictor
   state: predictor instances and standing intents, the pending
   shutdown, prediction stats, and gap energy.  Three lane kinds:

   * a **generic local lane** mirroring
     :class:`~repro.core.global_predictor.GlobalShutdownPredictor` +
     engine + disk accounting expression for expression; it iterates
     the tape's prebuilt per-step views, with runs of consecutive
     no-gap (``TAPE_SIMPLE``) steps grouped so the dispatch runs once
     per run;
   * a **constant-intent lane** for timeout predictors
     (``PredictorSpec.constant_intent_delay``), which needs no
     per-process state at all: the global ready time is
     ``anchor_max + delay`` (IEEE-754 addition is monotonic, so this is
     bit-identical to maximizing per-slot ready times).  This lane is a
     whole-tape **array program**: fired/hit/irritation classification
     are elementwise masks and the energy buckets are sequential
     (``np.add.accumulate``) reductions in the scalar loop's exact
     accumulation order;
   * an **omniscient lane** for Base/Ideal gap policies — also an
     array program whenever the policy vectorizes its per-gap decision
     (:meth:`~repro.predictors.base.OmniscientPolicy.shutdown_offsets`),
     falling back to the scalar loop lane otherwise.

   The scalar loop lanes survive alongside the array programs (the
   fused-equivalence tool byte-diffs the two per predictor).

**Bit-identity contract (DESIGN §10):** every lane reproduces the
classic path's results bit for bit — same boundary predicates, same
float expression shapes, same accumulation order.  The equivalence is
enforced by ``tests/test_fused.py`` and CI's ``fused-equivalence``
step.  Configurations the lanes do not model — structured tracing,
multistate disks — are rejected by :func:`fused_supported` and fall
back to the classic path.

Parallel decomposition changes from (application × variant) cells to
one fused cell per *application*; results merge through the same
deterministic cell-ordered fold, and the resilience executor
checkpoints fused cells under keys derived from the variant-set
fingerprint (:func:`repro.sim.artifact_cache.variant_set_fingerprint`),
so a changed variant list never resumes from stale entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.disk.energy import EnergyBreakdown, sum_breakdowns
from repro.errors import SimulationError
from repro.predictors.base import PredictorSource
from repro.predictors.registry import PredictorSpec
from repro.config import SimulationConfig
from repro.sim.columnar import (
    ColumnarTape,
    TAPE_FORK,
    TAPE_GAP,
    TAPE_SIMPLE,
)
from repro.sim.engine import ExecutionRunResult, build_replay_tape
from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.sim.metrics import PredictionStats
from repro.sim.parallel import ExperimentCell, ProgressHook, execute_cells
from repro.units import EPSILON

_EPS = EPSILON
_PRIMARY = PredictorSource.PRIMARY

#: Alias used throughout the lane signatures.
ReplayTape = ColumnarTape


@dataclass(slots=True)
class FusedCellOutcome:
    """One application's fused pass: per-variant results, in lane order.

    Picklable, so fused cells travel through the fork pool, the
    checkpoint journal, and the artifact cache exactly like classic
    :class:`~repro.sim.experiment.ApplicationResult` cells.
    """

    application: str
    results: list[ApplicationResult]


def fused_supported(
    runner: ExperimentRunner, *, multistate: bool = False
) -> bool:
    """Whether the fused kernel models this run.

    The lanes implement the untraced three-state path only; structured
    tracing and the §7 multistate extension take the classic per-cell
    path (callers fall back silently — results are identical either
    way, fused is purely an execution strategy).
    """
    return not multistate and not runner.tracing


#: Tape length below which the constant-intent/omniscient lanes take
#: the scalar loops even in auto mode: the array programs carry a fixed
#: per-replay NumPy dispatch cost, and on short executions the plain
#: loop finishes before that overhead is paid back.  Results are
#: bit-identical either way (DESIGN §10), so this is purely a
#: performance knob; 256 is the measured crossover of the constant
#: lane on this codebase's reference hardware.
VECTOR_MIN_STEPS = 256


def replay_execution(
    tape: ReplayTape,
    spec: PredictorSpec,
    config: SimulationConfig,
    *,
    vectorized: Optional[bool] = None,
) -> ExecutionRunResult:
    """Replay one execution's shared tape under one predictor spec.

    ``vectorized`` picks the implementation of the constant-intent and
    omniscient lanes: ``True`` forces the whole-tape array programs,
    ``False`` forces the scalar loops (the fused-equivalence tool
    byte-diffs the two), and ``None`` — the default — chooses by tape
    length (:data:`VECTOR_MIN_STEPS`).  The results are bit-identical
    in every case.
    """
    if vectorized is None:
        vectorized = len(tape) >= VECTOR_MIN_STEPS
    if spec.is_omniscient:
        if vectorized:
            result = _replay_omniscient_vector(tape, spec, config)
            if result is not None:
                return result
        return _replay_omniscient_loop(tape, spec, config)
    if spec.constant_intent_delay is not None:
        if vectorized:
            return _replay_constant_vector(
                tape, spec.constant_intent_delay, config
            )
        return _replay_constant_loop(
            tape, spec.constant_intent_delay, config
        )
    return _replay_local(tape, spec, config)


def _running_sum(values: np.ndarray) -> float:
    """Strict left-to-right float sum (``np.add.accumulate``).

    ``np.sum`` uses pairwise summation, which reassociates additions;
    the accumulate form reproduces the scalar loops' ``+=`` order bit
    for bit.  Zero-valued entries are exact no-ops for the non-negative
    accumulators the lanes run (adding ±0.0 never changes the bits of a
    non-negative float), so masked scatter streams stay bit-identical.
    """
    if values.size == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


def _vector_energy(
    tape: ReplayTape,
    gcols: dict,
    fired: np.ndarray,
    shutdown_at: np.ndarray,
    config: SimulationConfig,
) -> tuple[float, float, float, float, float, int, int, int]:
    """Gap-energy accounting shared by the vectorized lanes.

    ``fired`` marks the gaps whose pending shutdown fired;
    ``shutdown_at`` is the absolute fire time per gap (NaN where not
    fired — every NaN lane is masked before accumulation).  Returns
    ``(idle_short, idle_long, power_cycle, standby, delay_seconds,
    shutdown_count, delayed_requests, irritating)`` with each bucket
    accumulated in the scalar lanes' exact order: per gap, the pre-spin
    idle amount then the standby residence, interleaved with the
    ``TAPE_SIMPLE`` idle contributions between gaps.
    """
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_time = params.shutdown_time
    spinup_time = params.spinup_time
    breakeven = config.breakeven
    gp = gcols["gp"]
    g_bu = gcols["busy_until"]
    g_ge = gcols["gap_end"]
    g_if = gcols["idle_full"]
    g_long = gcols["long"]
    n = len(tape.op)
    with np.errstate(invalid="ignore"):
        amount = idle_power * (shutdown_at - g_bu)
        off_window = g_ge - shutdown_at
        residence = standby_power * np.maximum(
            0.0, off_window - transition_time
        )
        delay_term = spinup_time + np.maximum(
            0.0, (shutdown_at + shutdown_time) - g_ge
        )
        irritating = int(
            np.count_nonzero(fired & (off_window <= breakeven))
        )
    slot0 = np.where(fired, amount, g_if)
    slot1 = np.where(fired, residence, 0.0)
    short_sel = ~g_long
    # Short-idle bucket: every step contributes in tape order — SIMPLE
    # steps their idle_full, short gaps their (amount|idle_full, then
    # residence) pair — so interleave two slots per step and accumulate
    # the raveled stream left to right.
    stream = np.zeros((n, 2), dtype=np.float64)
    stream[:, 0] = gcols["simple_idle"]
    stream[gp, 0] = np.where(short_sel, slot0, 0.0)
    stream[gp, 1] = np.where(short_sel, slot1, 0.0)
    idle_short = _running_sum(stream.ravel())
    # Long-idle bucket: only gaps contribute, in gap order.
    lstream = np.zeros((len(gp), 2), dtype=np.float64)
    lstream[:, 0] = np.where(short_sel, 0.0, slot0)
    lstream[:, 1] = np.where(short_sel, 0.0, slot1)
    idle_long = _running_sum(lstream.ravel())
    power_cycle = _running_sum(np.where(fired, cycle_energy, 0.0))
    standby = _running_sum(np.where(fired, residence, 0.0))
    delay_seconds = _running_sum(np.where(fired, delay_term, 0.0))
    shutdowns = int(np.count_nonzero(fired))
    return (
        idle_short,
        idle_long,
        power_cycle,
        standby,
        delay_seconds,
        shutdowns,
        shutdowns,
        irritating,
    )


def _finish(
    tape: ReplayTape,
    config: SimulationConfig,
    stats: PredictionStats,
    energy: tuple[float, float, float, float],
    shutdown_count: int,
    delayed_requests: int,
    delay_seconds: float,
    irritating: int,
) -> ExecutionRunResult:
    idle_short, idle_long, power_cycle, standby = energy
    ledger = EnergyBreakdown(
        busy=tape.busy_energy,
        idle_short=idle_short,
        idle_long=idle_long,
        power_cycle=power_cycle,
        standby=standby,
    )
    return ExecutionRunResult(
        stats=stats,
        ledger=ledger,
        shutdowns=shutdown_count,
        disk_accesses=tape.n_accesses,
        delayed_requests=delayed_requests,
        delay_seconds=delay_seconds,
        irritating_delays=irritating,
    )


def _replay_local(
    tape: ReplayTape, spec: PredictorSpec, config: SimulationConfig
) -> ExecutionRunResult:
    """Generic lane: full per-process predictor state, matching
    GlobalShutdownPredictor + engine + SimulatedDisk bit for bit.

    Iterates the tape's prebuilt step views: runs of consecutive
    ``TAPE_SIMPLE`` steps arrive pre-grouped, so the opcode dispatch
    runs once per run instead of once per access.
    """
    factory = spec.local_factory
    assert factory is not None
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_time = params.shutdown_time
    spinup_time = params.spinup_time
    breakeven = config.breakeven
    start = tape.start

    #: pid -> [ready_time, source, on_access, on_idle_end]; insertion
    #: and deletion order mirror the classic slot dict, so the decision
    #: scan tie-breaks identically.
    slots: dict[int, list] = {}
    for pid in tape.initial_pids:
        predictor = factory(pid)
        intent = predictor.initial_intent(start)
        delay = intent.delay
        slots[pid] = [
            None if delay is None else start + delay,
            intent.source,
            predictor.on_access,
            predictor.on_idle_end,
        ]

    pending_at: Optional[float] = None
    pending_source = _PRIMARY
    gaps = opportunities = 0
    hits_primary = hits_backup = misses_primary = misses_backup = 0
    unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    for step in tape.replay_views():
        op = step[0]
        if op == TAPE_SIMPLE:
            for pid, access, feedback, busy_after, register, idle_full in (
                step[1]
            ):
                if register:
                    predictor = factory(pid)
                    intent = predictor.initial_intent(access.time)
                    delay = intent.delay
                    slot = [
                        None if delay is None else access.time + delay,
                        intent.source,
                        predictor.on_access,
                        predictor.on_idle_end,
                    ]
                    slots[pid] = slot
                else:
                    slot = slots[pid]
                if feedback is not None:
                    slot[3](feedback)
                intent = slot[2](access)
                delay = intent.delay
                slot[0] = None if delay is None else busy_after + delay
                slot[1] = intent.source
                idle_short += idle_full
        elif op == TAPE_GAP:
            (_, time, can_fire, record, window_start, busy_until,
             gap_length, idle_full, long_period, gap_end, busy_after,
             register, pid, feedback, access, _anchor_max) = step
            if can_fire and pending_at is None:
                # try_shutdown: the decision scan, inlined.
                blocked = False
                latest: Optional[float] = None
                source = _PRIMARY
                for slot in slots.values():
                    ready = slot[0]
                    if ready is None:
                        blocked = True
                        break
                    if latest is None or ready > latest:
                        latest = ready
                        source = slot[1]
                if not blocked:
                    if latest is None:
                        # No live processes: ready time is -inf,
                        # clamped to max(window_start, busy_until).
                        fire_at = (
                            window_start
                            if window_start > busy_until
                            else busy_until
                        )
                    else:
                        fire_at = max(window_start, latest, busy_until)
                    if fire_at < time - _EPS:
                        pending_at = fire_at
                        pending_source = source
            if pending_at is None:
                if long_period:
                    idle_long += idle_full
                else:
                    idle_short += idle_full
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    if gap_length > breakeven:
                        opportunities += 1
            else:
                shutdown_at = pending_at
                amount = idle_power * (shutdown_at - busy_until)
                if long_period:
                    idle_long += amount
                else:
                    idle_short += amount
                power_cycle += cycle_energy
                off_window = gap_end - shutdown_at
                residence = standby_power * max(
                    0.0, off_window - transition_time
                )
                standby += residence
                if long_period:
                    idle_long += residence
                else:
                    idle_short += residence
                shutdown_count += 1
                delayed_requests += 1
                delay_seconds += spinup_time + max(
                    0.0, (shutdown_at + shutdown_time) - gap_end
                )
                if off_window <= breakeven:
                    irritating += 1
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    opportunity = gap_length > breakeven
                    if opportunity:
                        opportunities += 1
                    if gap_length - (shutdown_at - busy_until) > (
                        breakeven + _EPS
                    ):
                        if pending_source is _PRIMARY:
                            hits_primary += 1
                        else:
                            hits_backup += 1
                    else:
                        if pending_source is _PRIMARY:
                            misses_primary += 1
                        else:
                            misses_backup += 1
                        if opportunity:
                            unsaved += 1
            if register:
                predictor = factory(pid)
                intent = predictor.initial_intent(time)
                delay = intent.delay
                slot = [
                    None if delay is None else time + delay,
                    intent.source,
                    predictor.on_access,
                    predictor.on_idle_end,
                ]
                slots[pid] = slot
            else:
                slot = slots[pid]
            if feedback is not None:
                slot[3](feedback)
            intent = slot[2](access)
            delay = intent.delay
            slot[0] = None if delay is None else busy_after + delay
            slot[1] = intent.source
            pending_at = None
        elif op == TAPE_FORK:
            _, time, can_fire, window_start, busy_until, pid, is_new, _am = (
                step
            )
            if can_fire and pending_at is None:
                blocked = False
                latest = None
                source = _PRIMARY
                for slot in slots.values():
                    ready = slot[0]
                    if ready is None:
                        blocked = True
                        break
                    if latest is None or ready > latest:
                        latest = ready
                        source = slot[1]
                if not blocked:
                    if latest is None:
                        fire_at = (
                            window_start
                            if window_start > busy_until
                            else busy_until
                        )
                    else:
                        fire_at = max(window_start, latest, busy_until)
                    if fire_at < time - _EPS:
                        pending_at = fire_at
                        pending_source = source
            if is_new:
                predictor = factory(pid)
                intent = predictor.initial_intent(time)
                delay = intent.delay
                slots[pid] = [
                    None if delay is None else time + delay,
                    intent.source,
                    predictor.on_access,
                    predictor.on_idle_end,
                ]
        else:  # TAPE_EXIT
            _, time, can_fire, window_start, busy_until, pid, feedback, _am = (
                step
            )
            if can_fire and pending_at is None:
                blocked = False
                latest = None
                source = _PRIMARY
                for slot in slots.values():
                    ready = slot[0]
                    if ready is None:
                        blocked = True
                        break
                    if latest is None or ready > latest:
                        latest = ready
                        source = slot[1]
                if not blocked:
                    if latest is None:
                        fire_at = (
                            window_start
                            if window_start > busy_until
                            else busy_until
                        )
                    else:
                        fire_at = max(window_start, latest, busy_until)
                    if fire_at < time - _EPS:
                        pending_at = fire_at
                        pending_source = source
            slot = slots.pop(pid)
            if feedback is not None:
                slot[3](feedback)

    # Trailing gap: final try-point, stats, then the finalize ledger.
    if tape.end_can_fire and pending_at is None:
        window_start = tape.final_window_start
        busy_until = tape.final_busy_until
        end = tape.end
        blocked = False
        latest = None
        source = _PRIMARY
        for slot in slots.values():
            ready = slot[0]
            if ready is None:
                blocked = True
                break
            if latest is None or ready > latest:
                latest = ready
                source = slot[1]
        if not blocked:
            if latest is None:
                fire_at = (
                    window_start if window_start > busy_until else busy_until
                )
            else:
                fire_at = max(window_start, latest, busy_until)
            if fire_at < end - _EPS:
                pending_at = fire_at
                pending_source = source
    busy_until = tape.final_busy_until
    if tape.end_record:
        gaps += 1
        idle_seconds += tape.trailing
        opportunity = tape.trailing > breakeven
        if opportunity:
            opportunities += 1
        if pending_at is not None:
            offset = pending_at - busy_until
            if tape.trailing - offset > breakeven + _EPS:
                if pending_source is _PRIMARY:
                    hits_primary += 1
                else:
                    hits_backup += 1
            else:
                if pending_source is _PRIMARY:
                    misses_primary += 1
                else:
                    misses_backup += 1
                if opportunity:
                    unsaved += 1
    if pending_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        shutdown_at = pending_at
        amount = idle_power * (shutdown_at - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - shutdown_at
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1
        # Trailing gap: no request follows, nobody waits for a spin-up.

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits_primary,
        hits_backup=hits_backup,
        misses_primary=misses_primary,
        misses_backup=misses_backup,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def _replay_constant_vector(
    tape: ReplayTape, delay: float, config: SimulationConfig
) -> ExecutionRunResult:
    """Constant-intent (timeout) lane as a whole-tape array program.

    Every live process's standing intent is ``delay`` after its anchor
    (creation, then last access completion) with PRIMARY attribution, so
    the global decision is always ``anchor_max + delay`` — precomputed
    on the tape — and nothing a process does can block the shutdown.
    With no per-step state left, the lane reduces to: compute every
    try-point's ``fire_at`` elementwise, resolve each gap's pending
    shutdown as the *first* firing try-point since the previous gap
    (``np.minimum.reduceat`` over try-point positions), then run the
    shared masked-reduction energy accounting.  Bit-identical to
    :func:`_replay_constant_loop` — every expression keeps the scalar
    shape (``max(a, b, c)`` is chained ``np.maximum``, which is
    associativity-exact for binary max).
    """
    breakeven = config.breakeven

    pending_at: Optional[float] = None
    gaps = opportunities = 0
    hits = misses = unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    n = len(tape.op)
    if n:
        gcols = tape.gap_columns()
        gp = gcols["gp"]
        ws = tape.window_start
        bu = tape.busy_until
        am = tape.anchor_max
        with np.errstate(invalid="ignore"):
            base = np.where(ws > bu, ws, bu)
            cand = np.maximum(np.maximum(ws, am + delay), bu)
            fire_at = np.where(np.isnan(am), base, cand)
            fired_try = tape.can_fire & (fire_at < tape.times - _EPS)
        pos = np.where(fired_try, np.arange(n, dtype=np.int64), n)
        if len(gp):
            limit = int(gp[-1]) + 1
            starts = np.empty(len(gp), dtype=np.int64)
            starts[0] = 0
            starts[1:] = gp[:-1] + 1
            first = np.minimum.reduceat(pos[:limit], starts)
            has_pending = first < n
            with np.errstate(invalid="ignore"):
                shutdown_at = np.where(
                    has_pending, fire_at[np.minimum(first, n - 1)], np.nan
                )
            (
                idle_short, idle_long, power_cycle, standby,
                delay_seconds, shutdown_count, delayed_requests,
                irritating,
            ) = _vector_energy(tape, gcols, has_pending, shutdown_at, config)
            g_gl = gcols["gap_length"]
            g_bu = gcols["busy_until"]
            g_rec = gcols["record"]
            gaps = int(np.count_nonzero(g_rec))
            idle_seconds = _running_sum(np.where(g_rec, g_gl, 0.0))
            opp = g_rec & (g_gl > breakeven)
            opportunities = int(np.count_nonzero(opp))
            with np.errstate(invalid="ignore"):
                hit = g_gl - (shutdown_at - g_bu) > breakeven + _EPS
            hit_mask = g_rec & has_pending & hit
            miss_mask = g_rec & has_pending & ~hit
            hits = int(np.count_nonzero(hit_mask))
            misses = int(np.count_nonzero(miss_mask))
            unsaved = int(np.count_nonzero(miss_mask & opp))
            tail = pos[limit:]
        else:
            idle_short = _running_sum(gcols["simple_idle"])
            tail = pos
        tfirst = int(tail.min()) if len(tail) else n
        if tfirst < n:
            pending_at = float(fire_at[tfirst])

    # Trailing gap: final try-point, stats, then the finalize ledger —
    # the scalar epilogue verbatim.
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    if tape.end_can_fire and pending_at is None:
        window_start = tape.final_window_start
        busy_until = tape.final_busy_until
        anchor_max = tape.final_anchor_max
        if anchor_max is None:
            fire_at_end = (
                window_start if window_start > busy_until else busy_until
            )
        else:
            fire_at_end = max(window_start, anchor_max + delay, busy_until)
        if fire_at_end < tape.end - _EPS:
            pending_at = fire_at_end
    busy_until = tape.final_busy_until
    if tape.end_record:
        gaps += 1
        idle_seconds += tape.trailing
        opportunity = tape.trailing > breakeven
        if opportunity:
            opportunities += 1
        if pending_at is not None:
            if tape.trailing - (pending_at - busy_until) > breakeven + _EPS:
                hits += 1
            else:
                misses += 1
                if opportunity:
                    unsaved += 1
    if pending_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        shutdown_at_end = pending_at
        amount = idle_power * (shutdown_at_end - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - shutdown_at_end
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits,
        misses_primary=misses,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def _replay_constant_loop(
    tape: ReplayTape, delay: float, config: SimulationConfig
) -> ExecutionRunResult:
    """Constant-intent lane, scalar loop form (the vector lane's oracle).

    Same decision rule as :func:`_replay_constant_vector`, replayed
    step by step over the tape views.
    """
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_time = params.shutdown_time
    spinup_time = params.spinup_time
    breakeven = config.breakeven

    pending_at: Optional[float] = None
    gaps = opportunities = 0
    hits = misses = unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    for step in tape.replay_views():
        op = step[0]
        if op == TAPE_SIMPLE:
            for item in step[1]:
                idle_short += item[5]
        elif op == TAPE_GAP:
            (_, time, can_fire, record, window_start, busy_until,
             gap_length, idle_full, long_period, gap_end, _busy_after,
             _register, _pid, _feedback, _access, anchor_max) = step
            if can_fire and pending_at is None:
                if anchor_max is None:
                    fire_at = (
                        window_start
                        if window_start > busy_until
                        else busy_until
                    )
                else:
                    fire_at = max(
                        window_start, anchor_max + delay, busy_until
                    )
                if fire_at < time - _EPS:
                    pending_at = fire_at
            if pending_at is None:
                if long_period:
                    idle_long += idle_full
                else:
                    idle_short += idle_full
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    if gap_length > breakeven:
                        opportunities += 1
            else:
                shutdown_at = pending_at
                amount = idle_power * (shutdown_at - busy_until)
                if long_period:
                    idle_long += amount
                else:
                    idle_short += amount
                power_cycle += cycle_energy
                off_window = gap_end - shutdown_at
                residence = standby_power * max(
                    0.0, off_window - transition_time
                )
                standby += residence
                if long_period:
                    idle_long += residence
                else:
                    idle_short += residence
                shutdown_count += 1
                delayed_requests += 1
                delay_seconds += spinup_time + max(
                    0.0, (shutdown_at + shutdown_time) - gap_end
                )
                if off_window <= breakeven:
                    irritating += 1
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    opportunity = gap_length > breakeven
                    if opportunity:
                        opportunities += 1
                    if gap_length - (shutdown_at - busy_until) > (
                        breakeven + _EPS
                    ):
                        hits += 1
                    else:
                        misses += 1
                        if opportunity:
                            unsaved += 1
                pending_at = None
        elif op == TAPE_FORK:
            _, time, can_fire, window_start, busy_until, _p, _n, anchor_max = (
                step
            )
            if can_fire and pending_at is None:
                if anchor_max is None:
                    fire_at = (
                        window_start
                        if window_start > busy_until
                        else busy_until
                    )
                else:
                    fire_at = max(
                        window_start, anchor_max + delay, busy_until
                    )
                if fire_at < time - _EPS:
                    pending_at = fire_at
        else:  # TAPE_EXIT
            _, time, can_fire, window_start, busy_until, _p, _f, anchor_max = (
                step
            )
            if can_fire and pending_at is None:
                if anchor_max is None:
                    fire_at = (
                        window_start
                        if window_start > busy_until
                        else busy_until
                    )
                else:
                    fire_at = max(
                        window_start, anchor_max + delay, busy_until
                    )
                if fire_at < time - _EPS:
                    pending_at = fire_at

    if tape.end_can_fire and pending_at is None:
        window_start = tape.final_window_start
        busy_until = tape.final_busy_until
        anchor_max = tape.final_anchor_max
        if anchor_max is None:
            fire_at = window_start if window_start > busy_until else busy_until
        else:
            fire_at = max(window_start, anchor_max + delay, busy_until)
        if fire_at < tape.end - _EPS:
            pending_at = fire_at
    busy_until = tape.final_busy_until
    if tape.end_record:
        gaps += 1
        idle_seconds += tape.trailing
        opportunity = tape.trailing > breakeven
        if opportunity:
            opportunities += 1
        if pending_at is not None:
            if tape.trailing - (pending_at - busy_until) > breakeven + _EPS:
                hits += 1
            else:
                misses += 1
                if opportunity:
                    unsaved += 1
    if pending_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        shutdown_at = pending_at
        amount = idle_power * (shutdown_at - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - shutdown_at
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits,
        misses_primary=misses,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def _replay_omniscient_vector(
    tape: ReplayTape, spec: PredictorSpec, config: SimulationConfig
) -> Optional[ExecutionRunResult]:
    """Omniscient lane (Base / Ideal) as a whole-tape array program.

    The policy sees gaps in isolation, so the whole lane is one
    vectorized decision over the gap columns
    (:meth:`~repro.predictors.base.OmniscientPolicy.shutdown_offsets`,
    NaN encoding the scalar hook's ``None``) plus the shared energy
    reductions.  Returns ``None`` when the policy has no vectorized
    form — the caller falls back to :func:`_replay_omniscient_loop`.
    The hit/miss classification uses the offset directly
    (``gap_length - offset``), matching the scalar lane — *not*
    ``gap_length - (shutdown_at - busy_until)``, which is a different
    float expression.
    """
    policy = spec.omniscient
    assert policy is not None
    offsets_fn = getattr(policy, "shutdown_offsets", None)
    if offsets_fn is None:
        return None
    breakeven = config.breakeven

    gaps = opportunities = hits = misses = unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    n = len(tape.op)
    if n:
        gcols = tape.gap_columns()
        gp = gcols["gp"]
        if len(gp):
            g_gl = gcols["gap_length"]
            g_rec = gcols["record"]
            offs = offsets_fn(g_gl)
            if offs is None:
                return None
            offs = np.asarray(offs, dtype=np.float64)
            with np.errstate(invalid="ignore"):
                fired = g_rec & ~np.isnan(offs) & (offs < g_gl - _EPS)
                shutdown_at = np.where(
                    fired, gcols["busy_until"] + offs, np.nan
                )
            (
                idle_short, idle_long, power_cycle, standby,
                delay_seconds, shutdown_count, delayed_requests,
                irritating,
            ) = _vector_energy(tape, gcols, fired, shutdown_at, config)
            gaps = int(np.count_nonzero(g_rec))
            idle_seconds = _running_sum(np.where(g_rec, g_gl, 0.0))
            opp = g_rec & (g_gl > breakeven)
            opportunities = int(np.count_nonzero(opp))
            with np.errstate(invalid="ignore"):
                hit = g_gl - offs > breakeven + _EPS
            hit_mask = fired & hit
            miss_mask = fired & ~hit
            hits = int(np.count_nonzero(hit_mask))
            misses = int(np.count_nonzero(miss_mask))
            unsaved = int(np.count_nonzero(miss_mask & opp))
        else:
            idle_short = _running_sum(gcols["simple_idle"])

    # Trailing gap — the scalar epilogue verbatim (per-gap policy call).
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_offset = policy.shutdown_offset
    end_shutdown_at = None
    if tape.end_record:
        trailing = tape.trailing
        offset = shutdown_offset(trailing)
        gaps += 1
        idle_seconds += trailing
        opportunity = trailing > breakeven
        if opportunity:
            opportunities += 1
        if offset is not None and offset < trailing - _EPS:
            end_shutdown_at = tape.final_busy_until + offset
            if trailing - offset > breakeven + _EPS:
                hits += 1
            else:
                misses += 1
                if opportunity:
                    unsaved += 1
    if end_shutdown_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        busy_until = tape.final_busy_until
        amount = idle_power * (end_shutdown_at - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - end_shutdown_at
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits,
        misses_primary=misses,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def _replay_omniscient_loop(
    tape: ReplayTape, spec: PredictorSpec, config: SimulationConfig
) -> ExecutionRunResult:
    """Omniscient lane, scalar loop form (vector-lane oracle and the
    fallback for policies without :meth:`shutdown_offsets`)."""
    policy = spec.omniscient
    assert policy is not None
    shutdown_offset = policy.shutdown_offset
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_time = params.shutdown_time
    spinup_time = params.spinup_time
    breakeven = config.breakeven

    gaps = opportunities = hits = misses = unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    for step in tape.replay_views():
        op = step[0]
        if op == TAPE_SIMPLE:
            for item in step[1]:
                idle_short += item[5]
        elif op == TAPE_GAP:
            gap_length = step[6]
            record = step[3]
            idle_full = step[7]
            long_period = step[8]
            offset = shutdown_offset(gap_length) if record else None
            if offset is not None and offset < gap_length - _EPS:
                busy_until = step[5]
                gap_end = step[9]
                shutdown_at = busy_until + offset
                amount = idle_power * (shutdown_at - busy_until)
                if long_period:
                    idle_long += amount
                else:
                    idle_short += amount
                power_cycle += cycle_energy
                off_window = gap_end - shutdown_at
                residence = standby_power * max(
                    0.0, off_window - transition_time
                )
                standby += residence
                if long_period:
                    idle_long += residence
                else:
                    idle_short += residence
                shutdown_count += 1
                delayed_requests += 1
                delay_seconds += spinup_time + max(
                    0.0, (shutdown_at + shutdown_time) - gap_end
                )
                if off_window <= breakeven:
                    irritating += 1
                gaps += 1
                idle_seconds += gap_length
                opportunity = gap_length > breakeven
                if opportunity:
                    opportunities += 1
                if gap_length - offset > breakeven + _EPS:
                    hits += 1
                else:
                    misses += 1
                    if opportunity:
                        unsaved += 1
            else:
                if long_period:
                    idle_long += idle_full
                else:
                    idle_short += idle_full
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    if gap_length > breakeven:
                        opportunities += 1
        # Forks and exits are invisible to omniscient policies.

    shutdown_at = None
    if tape.end_record:
        trailing = tape.trailing
        offset = shutdown_offset(trailing)
        gaps += 1
        idle_seconds += trailing
        opportunity = trailing > breakeven
        if opportunity:
            opportunities += 1
        if offset is not None and offset < trailing - _EPS:
            shutdown_at = tape.final_busy_until + offset
            if trailing - offset > breakeven + _EPS:
                hits += 1
            else:
                misses += 1
                if opportunity:
                    unsaved += 1
    if shutdown_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        busy_until = tape.final_busy_until
        amount = idle_power * (shutdown_at - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - shutdown_at
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits,
        misses_primary=misses,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def run_fused_application(
    runner: ExperimentRunner,
    application: str,
    specs: Sequence[PredictorSpec],
    *,
    use_cache: bool = True,
) -> list[ApplicationResult]:
    """All ``specs`` over one application's trace history in one pass.

    Streams executions through
    :meth:`~repro.sim.experiment.ExperimentRunner.iter_filtered` (so
    store-backed traces stay memory-bounded), builds each execution's
    tape once, and advances every lane over it.  With an artifact cache
    attached to the runner, built tapes are persisted under
    :func:`~repro.sim.artifact_cache.tape_key` (trace fingerprint ×
    execution position × configuration), so warm sweeps and fleets skip
    tape construction entirely.  Per variant, the sequence of factory
    calls, feedback deliveries, and ``on_execution_end`` hooks is
    exactly the classic
    :meth:`~repro.sim.experiment.ExperimentRunner.run_global` sequence,
    so shared-table predictors (PCAP, LT) evolve identically.
    """
    from repro.sim.artifact_cache import tape_key

    if not fused_supported(runner):
        raise SimulationError(
            "fused execution does not support structured tracing; "
            "use the classic per-cell path"
        )
    config = runner.config
    cache = runner.artifact_cache if use_cache else None
    app_fingerprint = (
        runner.fingerprint(application) if cache is not None else None
    )
    count = len(specs)
    stats = [PredictionStats() for _ in range(count)]
    ledgers: list[list[EnergyBreakdown]] = [[] for _ in range(count)]
    accesses = [0] * count
    shutdowns = [0] * count
    peak_table = [0] * count
    delayed = [0] * count
    delay_seconds = [0.0] * count
    irritating = [0] * count
    executions = 0
    for execution, filtered in runner.iter_filtered(application):
        key = (
            tape_key(app_fingerprint, executions, config)
            if cache is not None
            else None
        )
        executions += 1
        tape = None
        if key is not None:
            hit, value = cache.get(key)
            if hit and isinstance(value, ColumnarTape):
                tape = value
                tape.bind_accesses(filtered.accesses)
        if tape is None:
            tape = build_replay_tape(execution, filtered, config)
            if key is not None:
                cache.put(key, tape)
        for lane, spec in enumerate(specs):
            result = replay_execution(tape, spec, config)
            stats[lane].merge(result.stats)
            ledgers[lane].append(result.ledger)
            accesses[lane] += result.disk_accesses
            shutdowns[lane] += result.shutdowns
            delayed[lane] += result.delayed_requests
            delay_seconds[lane] += result.delay_seconds
            irritating[lane] += result.irritating_delays
            if spec.table_size is not None:
                peak_table[lane] = max(peak_table[lane], spec.table_size)
            spec.on_execution_end()
    return [
        ApplicationResult(
            application=application,
            predictor=spec.name,
            stats=stats[lane],
            ledger=sum_breakdowns(ledgers[lane]),
            executions=executions,
            total_disk_accesses=accesses[lane],
            shutdowns=shutdowns[lane],
            table_size=(
                peak_table[lane] if spec.table_size is not None else None
            ),
            delayed_requests=delayed[lane],
            delay_seconds=delay_seconds[lane],
            irritating_delays=irritating[lane],
        )
        for lane, spec in enumerate(specs)
    ]


def run_fused_cells(
    runner: ExperimentRunner,
    applications: Sequence[str],
    labels: Sequence[str],
    make_specs: Callable[[], list[PredictorSpec]],
    *,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    policy=None,
    checkpoint=None,
    use_cache: bool = True,
):
    """Fan one fused cell per application across the execution layer.

    ``labels`` name the variant lanes (they parameterize the artifact
    cache and checkpoint keys, so they must identify the variants the
    way classic cell labels do); ``make_specs`` builds one fresh spec
    per label — called inside each cell, because specs are stateful.
    ``use_cache=False`` bypasses the artifact cache (for variant sets
    built by opaque callables, whose labels do not pin down semantics).

    Returns ``(outcomes, ledger)`` where ``outcomes`` maps application
    → :class:`FusedCellOutcome` and ``ledger`` is the resilient
    executor's :class:`~repro.sim.resilience.RunLedger` (``None`` on
    the plain path).  With ``policy``/``checkpoint``, failed cells are
    missing from ``outcomes`` — callers inspect the ledger.
    """
    from repro.sim.artifact_cache import fused_key

    label_tuple = tuple(labels)
    config = runner.config
    cache = runner.artifact_cache if use_cache else None
    lane_label = f"fused[{len(label_tuple)}]"
    apps = list(applications)
    cells = [
        ExperimentCell(index=index, application=app, predictor=lane_label)
        for index, app in enumerate(apps)
    ]

    def run_cell(cell: ExperimentCell) -> FusedCellOutcome:
        application = cell.application
        key = None
        if cache is not None:
            key = fused_key(
                runner.fingerprint(application), config, label_tuple
            )
            hit, value = cache.get(key)
            if hit and isinstance(value, FusedCellOutcome):
                return value
        specs = make_specs()
        outcome = FusedCellOutcome(
            application=application,
            results=run_fused_application(
                runner, application, specs, use_cache=use_cache
            ),
        )
        if key is not None:
            cache.put(key, outcome)
        return outcome

    # Warm the filter memo in the parent (forked workers inherit it
    # copy-on-write); streaming traces stay lazy, as in prewarm().
    for app in apps:
        if not getattr(runner.suite[app], "streaming", False):
            runner.filtered(app)

    if policy is not None or checkpoint is not None:
        from repro.sim.artifact_cache import variant_set_fingerprint
        from repro.sim.resilience import cell_key, run_cells

        keys = None
        provenance = None
        if checkpoint is not None:
            fingerprint = variant_set_fingerprint(label_tuple, config)
            keys = [
                cell_key(
                    runner.fingerprint(app), f"fused:{fingerprint}", config
                )
                for app in apps
            ]
            # Fused cells span the whole variant set, so a journal is
            # only resumable by a run over the identical lane list.
            provenance = {
                "fused": True,
                "mode": "global",
                "multistate": False,
                "variant_set": fingerprint,
            }
        ledger = run_cells(
            cells,
            run_cell,
            jobs=jobs,
            policy=policy,
            progress=progress,
            checkpoint=checkpoint,
            cell_keys=keys,
            provenance=provenance,
        )
        results = ledger.results
    else:
        ledger = None
        results = execute_cells(cells, run_cell, jobs=jobs, progress=progress)
    outcomes = {item.cell.application: item.result for item in results}
    return outcomes, ledger
